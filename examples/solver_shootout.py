"""Solver shootout: every IK method in the repository on one workload.

Compares iterations, computation load, success rate and wall time for
JT-Serial (classic gain), the Buss-step transpose, the SVD pseudoinverse,
DLS, SDLS, CCD and Quick-IK on the paper's 25-DOF evaluation arm.

Run:  python examples/solver_shootout.py [dof] [targets]
"""

import sys

import numpy as np

from repro import paper_chain
from repro.core.result import SolverConfig
from repro.evaluation.tables import TableResult
from repro.solvers import (
    CyclicCoordinateDescentSolver,
    DampedLeastSquaresSolver,
    JacobianTransposeSolver,
    PseudoinverseSolver,
    QuickIKSolver,
    SelectivelyDampedSolver,
)


def main(dof: int = 25, n_targets: int = 15) -> None:
    chain = paper_chain(dof)
    config = SolverConfig(max_iterations=10_000)
    rng = np.random.default_rng(7)
    targets = [chain.end_position(chain.random_configuration(rng)) for _ in range(n_targets)]

    contenders = [
        ("JT-Serial (classic gain)", JacobianTransposeSolver(chain, config)),
        ("JT (Buss alpha)", JacobianTransposeSolver(chain, config, alpha_mode="buss")),
        ("J-1-SVD (pseudoinverse)", PseudoinverseSolver(chain, config, error_clamp=None)),
        ("DLS (lambda=0.1)", DampedLeastSquaresSolver(chain, config)),
        ("SDLS (Buss & Kim)", SelectivelyDampedSolver(chain, config)),
        ("CCD", CyclicCoordinateDescentSolver(chain, config)),
        ("Quick-IK (64 spec)", QuickIKSolver(chain, 64, config=config)),
    ]

    rows = []
    for label, solver in contenders:
        results = [solver.solve(t, rng=np.random.default_rng(11)) for t in targets]
        iterations = np.array([r.iterations for r in results])
        rows.append(
            [
                label,
                float(iterations.mean()),
                float(np.median(iterations)),
                float(np.mean([r.work for r in results])),
                float(np.mean([r.converged for r in results])),
                float(np.mean([r.wall_time for r in results]) * 1e3),
            ]
        )

    table = TableResult(
        title=f"Solver shootout on {chain.name} ({n_targets} targets)",
        headers=["solver", "mean iters", "median iters", "mean load",
                 "success", "wall ms"],
        rows=rows,
        notes=[
            "load = speculations x iterations (Figure 5b metric)",
            "wall ms is this Python substrate, not the paper's platforms",
        ],
    )
    print(table.to_ascii())


if __name__ == "__main__":
    dof = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    n_targets = int(sys.argv[2]) if len(sys.argv) > 2 else 15
    main(dof, n_targets)
