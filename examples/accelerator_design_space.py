"""IKAcc design-space exploration: SSUs, speculations, pipelining.

Sweeps the accelerator configuration around the paper's design point
(32 SSUs, 64 speculations, pipelined SPU, 1 GHz) and reports per-iteration
latency, silicon area, leakage, and solves-per-joule on the 100-DOF
workload — the analysis behind "64 speculations / 32 SSUs may be a great
choice".

Run:  python examples/accelerator_design_space.py
"""

import numpy as np

from repro import paper_chain
from repro.evaluation.tables import TableResult
from repro.ikacc import IKAccConfig, IKAccPowerModel, IKAccSimulator


def sweep_rows(chain, targets):
    rows = []
    for n_ssus in (8, 16, 32, 64):
        for pipelined in (True, False):
            config = IKAccConfig(n_ssus=n_ssus, spu_pipelined=pipelined)
            sim = IKAccSimulator(chain, config=config)
            power = IKAccPowerModel(config)
            runs = [sim.solve(t, rng=np.random.default_rng(5)) for t in targets]
            mean_ms = float(np.mean([r.seconds for r in runs])) * 1e3
            mean_mj = float(np.mean([r.energy_j for r in runs])) * 1e3
            rows.append(
                [
                    n_ssus,
                    "yes" if pipelined else "no",
                    config.waves_per_iteration,
                    sim.seconds_per_full_iteration() * 1e6,
                    power.area_mm2(),
                    mean_ms,
                    mean_mj,
                    1.0 / (mean_mj * 1e-3),
                ]
            )
    return rows


def main() -> None:
    chain = paper_chain(100)
    rng = np.random.default_rng(1)
    targets = [chain.end_position(chain.random_configuration(rng)) for _ in range(5)]

    table = TableResult(
        title="IKAcc design space (100 DOF, 64 speculations, 5 targets)",
        headers=[
            "SSUs",
            "SPU pipelined",
            "waves",
            "us/iter",
            "area mm^2",
            "ms/solve",
            "mJ/solve",
            "solves/J",
        ],
        rows=sweep_rows(chain, targets),
        notes=["the paper's design point is 32 SSUs with the pipelined SPU"],
    )
    print(table.to_ascii())

    # Highlight the latency/area trade-off at the design point.
    print("\nobservations:")
    print("  - doubling SSUs 32 -> 64 halves the wave count but nearly")
    print("    doubles area: the paper's 32-SSU point balances both.")
    print("  - disabling the SPU pipeline (Figure 3a flow) inflates the")
    print("    serial block and hurts every configuration.")


if __name__ == "__main__":
    main()
