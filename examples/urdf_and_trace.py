"""Load a robot from URDF, solve IK on it, and trace IKAcc's pipeline.

Demonstrates two extensions beyond the paper:

* the URDF front end (arbitrary joint origins/axes via the generic chain),
  here a 12-DOF gantry-mounted snake defined inline;
* the cycle-level execution trace: where one Quick-IK iteration spends its
  time inside the accelerator (SPU serial block vs SSU waves vs selector).

Run:  python examples/urdf_and_trace.py
"""

import numpy as np

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.ikacc import IKAccSimulator, render_gantt, trace_iteration
from repro.kinematics import load_urdf


def build_urdf() -> str:
    """A gantry rail (prismatic) carrying a 10-joint snake arm."""
    lines = ['<robot name="gantry-snake">', '  <link name="world"/>',
             '  <link name="cart"/>']
    lines.append(
        '  <joint name="rail" type="prismatic">'
        '<origin xyz="0 0 0.5"/><parent link="world"/><child link="cart"/>'
        '<axis xyz="1 0 0"/><limit lower="-0.5" upper="0.5"/></joint>'
    )
    previous = "cart"
    for i in range(10):
        link = f"seg{i}"
        axis = "0 0 1" if i % 2 == 0 else "0 1 0"
        lines.append(f'  <link name="{link}"/>')
        lines.append(
            f'  <joint name="bend{i}" type="revolute">'
            f'<origin xyz="0.09 0 0"/><parent link="{previous}"/>'
            f'<child link="{link}"/><axis xyz="{axis}"/>'
            f'<limit lower="-2.5" upper="2.5"/></joint>'
        )
        previous = link
    lines.append("</robot>")
    return "\n".join(lines)


def main() -> None:
    chain = load_urdf(build_urdf())
    print(f"loaded {chain.name!r}: {chain.dof} DOF "
          f"({chain.n_structural_joints} joints incl. fixed)\n")

    rng = np.random.default_rng(11)
    target = chain.end_position(chain.random_configuration(rng))
    solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=5000))
    result = solver.solve(target, rng=rng)
    print("software:", result.summary())

    sim = IKAccSimulator(chain)
    run = sim.solve(target, rng=np.random.default_rng(12))
    print("hardware:", run.summary(), "\n")

    print(render_gantt(trace_iteration(sim)))
    trace = trace_iteration(sim)
    spu_share = trace.utilisation("SPU")
    print(f"\nthe serial block takes {spu_share:.0%} of an iteration at "
          f"{chain.dof} DOF — the share the Figure-3 pipeline keeps small")


if __name__ == "__main__":
    main()
