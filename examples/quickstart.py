"""Quickstart: solve inverse kinematics for a 100-DOF manipulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import api, paper_chain, telemetry


def main() -> None:
    # The paper's headline scenario: a 100-DOF manipulator.
    chain = paper_chain(100)
    print(f"manipulator: {chain.name} ({chain.dof} DOF, "
          f"reach ~{chain.total_reach():.2f} m)")

    # Pick a guaranteed-reachable target (FK of a random configuration).
    rng = np.random.default_rng(42)
    target = chain.end_position(chain.random_configuration(rng))
    print(f"target position: {np.round(target, 4)}")

    # Quick-IK with the paper's operating point: 64 speculations per
    # iteration, 1e-2 m accuracy, 10k iteration cap.  api.solve picks
    # Quick-IK ("JT-Speculation") by default; a tracer shows where the
    # time goes.
    tracer = telemetry.SummaryTracer()
    result = api.solve(chain, target, speculations=64, rng=rng, tracer=tracer)

    print(result.summary())
    reached = chain.end_position(result.q)
    print(f"reached position: {np.round(reached, 4)}")
    print(f"final error: {np.linalg.norm(target - reached) * 1000:.2f} mm")
    print(f"computation load (speculations x iterations): {result.work}")

    counters = tracer.summary().counters
    print(f"telemetry: {counters['fk_evaluations']} FK evals, "
          f"{counters['jacobian_builds']} Jacobian builds")
    for phase, seconds in tracer.phase_seconds.items():
        print(f"  phase {phase:<10s} {seconds * 1000:8.2f} ms")


if __name__ == "__main__":
    main()
