"""Real-time trajectory tracking with a 100-DOF snake arm.

The motivating scenario of the paper's introduction: a controller must solve
IK at every waypoint of a Cartesian path, in real time, for a hyper-redundant
manipulator.  This example tracks a circular path two ways —

* **cold**: every waypoint solved from a random restart (the paper's
  benchmark setting), and
* **warm**: each waypoint warm-started from the previous solution (how a
  controller actually runs),

then prices the warm run on the three platforms (Atom / TX1 / IKAcc) to show
which ones meet a 100 Hz control budget.

Run:  python examples/high_dof_snake.py
"""

import numpy as np

from repro import QuickIKSolver, hyper_redundant_chain
from repro.core.result import SolverConfig
from repro.platforms import AtomModel, IKAccPlatform, TX1Model


def circular_path(center, radius, n_points):
    """Waypoints on a vertical circle around ``center``."""
    angles = np.linspace(0.0, 2.0 * np.pi, n_points, endpoint=False)
    return np.stack(
        [
            center + radius * np.array([np.cos(a), np.sin(a), 0.3 * np.sin(2 * a)])
            for a in angles
        ]
    )


def main() -> None:
    chain = hyper_redundant_chain(100, total_reach=1.2)
    solver = QuickIKSolver(chain, speculations=64, config=SolverConfig())
    rng = np.random.default_rng(0)

    # Anchor the path around a comfortably reachable point.
    q_home = 0.25 * chain.random_configuration(rng)
    center = chain.end_position(q_home)
    waypoints = circular_path(center, radius=0.15, n_points=24)
    print(f"tracking a {len(waypoints)}-waypoint circle of radius 0.15 m "
          f"around {np.round(center, 3)} with a 100-DOF snake arm\n")

    # Cold restarts (the paper's per-target setting).
    cold_iters = []
    for waypoint in waypoints:
        result = solver.solve(waypoint, rng=rng)
        cold_iters.append(result.iterations)

    # Warm starts (controller-style).
    q = q_home.copy()
    warm_iters = []
    max_error_mm = 0.0
    for waypoint in waypoints:
        result = solver.solve(waypoint, q0=q)
        if not result.converged:
            raise RuntimeError("warm-started solve failed; path too aggressive")
        warm_iters.append(result.iterations)
        max_error_mm = max(max_error_mm, result.error * 1000)
        q = result.q

    print(f"cold restarts: {np.mean(cold_iters):6.1f} iterations/waypoint (mean)")
    print(f"warm starts:   {np.mean(warm_iters):6.1f} iterations/waypoint (mean), "
          f"worst error {max_error_mm:.2f} mm")
    print(f"warm-start advantage: {np.mean(cold_iters) / np.mean(warm_iters):.1f}x\n")

    # Price the warm run per waypoint on each platform (Table 2 machinery).
    budget_ms = 10.0  # 100 Hz control loop
    print(f"per-waypoint solve time vs a {budget_ms:.0f} ms (100 Hz) budget:")
    mean_warm = float(np.mean(warm_iters))
    for platform in (AtomModel(), TX1Model(), IKAccPlatform()):
        estimate = platform.estimate("JT-Speculation", chain.dof, mean_warm, 64)
        verdict = "OK" if estimate.milliseconds <= budget_ms else "TOO SLOW"
        print(f"  {platform.name:6s} {estimate.milliseconds:10.3f} ms   [{verdict}]")


if __name__ == "__main__":
    main()
