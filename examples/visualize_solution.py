"""Visualise IK solutions and convergence as SVG (no plotting deps needed).

Produces three files in the working directory:

* ``ik_solution.svg``       — the 25-DOF arm's start pose, solved pose and target
* ``ik_trajectory.svg``     — warm-started tracking of a straight-line path
* ``ik_convergence.svg``    — error-vs-iteration curves for three solvers

Run:  python examples/visualize_solution.py
"""

import numpy as np

from repro import (
    JacobianTransposeSolver,
    PseudoinverseSolver,
    QuickIKSolver,
    TrajectoryFollower,
    paper_chain,
)
from repro.control import interpolate_line
from repro.core.result import SolverConfig
from repro.kinematics.viz import render_chain_svg, render_history_svg, save_svg


def main() -> None:
    chain = paper_chain(25)
    rng = np.random.default_rng(6)
    config = SolverConfig(max_iterations=10_000)

    # 1. One solve: start pose vs solution vs target.
    q_start = chain.random_configuration(rng)
    target = chain.end_position(chain.random_configuration(rng))
    result = QuickIKSolver(chain, config=config).solve(target, q0=q_start)
    svg = render_chain_svg(
        chain, [q_start, result.q], targets=np.array([target]), plane="xy"
    )
    save_svg(svg, "ik_solution.svg")
    print(f"ik_solution.svg      {result.summary()}")

    # 2. A tracked straight line (every 25th pose drawn).
    follower = TrajectoryFollower(
        QuickIKSolver(chain, config=config), max_segment=0.02
    )
    goal = chain.end_position(chain.random_configuration(rng))
    waypoints = interpolate_line(chain.end_position(result.q), goal, steps=12)
    report = follower.follow(waypoints, q_start=result.q)
    poses = report.joint_path[:: max(1, len(report.joint_path) // 6)]
    svg = render_chain_svg(chain, poses, targets=report.waypoints, plane="xy")
    save_svg(svg, "ik_trajectory.svg")
    print(
        f"ik_trajectory.svg    {len(report.results)} waypoints, "
        f"{report.mean_iterations:.1f} iterations/waypoint, "
        f"solved={report.solved}"
    )

    # 3. Convergence curves for three solvers from the same restart.
    histories = {}
    for solver in (
        QuickIKSolver(chain, config=config),
        JacobianTransposeSolver(chain, config=config),
        PseudoinverseSolver(chain, config=config, error_clamp=None),
    ):
        histories[solver.name] = solver.solve(target, q0=q_start).error_history
    svg = render_history_svg(histories, tolerance=config.tolerance)
    save_svg(svg, "ik_convergence.svg")
    print("ik_convergence.svg   " + ", ".join(
        f"{k}: {len(v)} points" for k, v in histories.items()
    ))


if __name__ == "__main__":
    main()
