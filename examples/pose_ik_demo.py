"""Full-pose IK with the Quick-IK extension on a 7-DOF arm.

The paper tracks only end-effector position; this demo uses the 6-DOF
extension (:class:`repro.solvers.PoseQuickIKSolver`) to hit position *and*
orientation targets with an iiwa-like redundant arm — e.g. keeping a tool
axis aligned while moving between poses.

Run:  python examples/pose_ik_demo.py
"""

import numpy as np

from repro import seven_dof_arm
from repro.core.result import SolverConfig
from repro.kinematics.transforms import orientation_error, rotation_to_rpy
from repro.solvers import PoseQuickIKSolver


def describe(pose) -> str:
    position = np.round(pose[:3, 3], 3)
    rpy = np.round(np.degrees(rotation_to_rpy(pose[:3, :3])), 1)
    return f"p={position} rpy={rpy} deg"


def main() -> None:
    chain = seven_dof_arm()
    solver = PoseQuickIKSolver(
        chain,
        speculations=64,
        orientation_weight=0.5,
        config=SolverConfig(tolerance=1e-2, max_iterations=5000),
    )
    rng = np.random.default_rng(4)

    print(f"arm: {chain.name} ({chain.dof} DOF)\n")
    solved = 0
    for i in range(5):
        target_pose = chain.fk(chain.random_configuration(rng))
        result = solver.solve(target_pose, rng=rng)
        reached = chain.fk(result.q)
        pos_err_mm = np.linalg.norm(reached[:3, 3] - target_pose[:3, 3]) * 1000
        ori_err_deg = np.degrees(
            np.linalg.norm(orientation_error(reached[:3, :3], target_pose[:3, :3]))
        )
        status = "ok " if result.converged else "FAIL"
        solved += result.converged
        print(f"[{status}] target {i}: {describe(target_pose)}")
        print(
            f"       {result.iterations:4d} iterations, "
            f"position error {pos_err_mm:6.2f} mm, "
            f"orientation error {ori_err_deg:5.2f} deg"
        )
    print(f"\nsolved {solved}/5 full-pose targets")


if __name__ == "__main__":
    main()
