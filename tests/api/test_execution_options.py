"""API tier for the unified execution policy objects.

Pins the contracts the redesign promised:

* :class:`KernelSpec` coercion (``"mode"``, ``"mode:dtype"``, numpy dtypes)
  and chain application;
* :class:`ExecutionOptions` validation and the ``from_legacy`` bridge —
  legacy keywords still work, warn exactly once per (site, keyword), and
  conflict loudly with an explicit ``options=``;
* the options object actually reaches the execution layers (registry,
  serving config, api entry points) rather than being decorative.
"""

import warnings

import numpy as np
import pytest

from repro import api
from repro.core.result import SolverConfig
from repro.execution import (
    KERNEL_DTYPES,
    ON_ERROR_MODES,
    ExecutionOptions,
    KernelSpec,
    reset_legacy_warnings,
    resolve_kernel_dtype,
)
from repro.kinematics.robots import paper_chain
from repro.serving.server import ServerConfig
from repro.solvers.registry import make_batch_solver

SEED = 20170619


@pytest.fixture(autouse=True)
def _fresh_warning_ledger():
    reset_legacy_warnings()
    yield
    reset_legacy_warnings()


# ----------------------------------------------------------------------
# KernelSpec
# ----------------------------------------------------------------------


class TestKernelSpec:
    def test_coerce_accepts_mode_name(self):
        spec = KernelSpec.coerce("vectorized")
        assert spec == KernelSpec(name="vectorized")
        assert spec.dtype is None and spec.chunk is None

    def test_coerce_accepts_mode_dtype_shorthand(self):
        spec = KernelSpec.coerce("vectorized:float32")
        assert spec.name == "vectorized"
        assert spec.dtype == "float32"

    def test_coerce_passes_through_spec_and_none(self):
        spec = KernelSpec(name="scalar")
        assert KernelSpec.coerce(spec) is spec
        assert KernelSpec.coerce(None) is None

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError, match="KernelSpec"):
            KernelSpec.coerce(42)

    def test_unknown_mode_and_dtype_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="cuda")
        with pytest.raises(ValueError, match="float16"):
            KernelSpec(dtype="float16")
        with pytest.raises(ValueError, match="chunk"):
            KernelSpec(chunk=0)

    def test_numpy_dtypes_canonicalised(self):
        assert KernelSpec(dtype=np.float32).dtype == "float32"
        assert resolve_kernel_dtype(np.dtype("float64")) == "float64"
        assert resolve_kernel_dtype(None) is None

    def test_apply_rematerialises_chain(self):
        chain = paper_chain(12)
        applied = KernelSpec(name="vectorized", dtype="float32").apply(chain)
        assert applied.kernel == "vectorized"
        assert applied.dtype == np.float32
        # All-None spec is the identity.
        assert KernelSpec().apply(chain) is chain

    def test_label(self):
        assert KernelSpec(name="vectorized", dtype="float32").label == (
            "vectorized/float32"
        )

    def test_hashable_for_coalescing_keys(self):
        a = KernelSpec(name="vectorized", dtype="float32")
        b = KernelSpec(name="vectorized", dtype=np.float32)
        assert hash(a) == hash(b) and a == b


# ----------------------------------------------------------------------
# ExecutionOptions construction / validation
# ----------------------------------------------------------------------


class TestExecutionOptions:
    def test_defaults_are_historical_behaviour(self):
        opts = ExecutionOptions()
        assert opts.kernel is None
        assert opts.workers is None
        assert opts.on_error == "raise"
        assert opts.compaction is None
        assert not opts.needs_sharding

    def test_kernel_string_coerced(self):
        opts = ExecutionOptions(kernel="vectorized:float32")
        assert isinstance(opts.kernel, KernelSpec)
        assert opts.kernel.dtype == "float32"

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionOptions(workers=0)
        with pytest.raises(ValueError, match="timeout"):
            ExecutionOptions(timeout=0)
        with pytest.raises(ValueError, match="on_error"):
            ExecutionOptions(on_error="retry")
        assert set(ON_ERROR_MODES) == {"raise", "skip", "fallback"}
        assert set(KERNEL_DTYPES) == {"float64", "float32"}

    def test_needs_sharding_dispatch(self):
        assert ExecutionOptions(workers=2).needs_sharding
        assert ExecutionOptions(on_error="skip").needs_sharding
        assert ExecutionOptions(resilience=True).needs_sharding
        assert not ExecutionOptions(kernel="vectorized").needs_sharding

    def test_resolved_resilience_expands_shorthand(self):
        from repro.resilience import ResilienceConfig

        assert ExecutionOptions().resolved_resilience() is None
        assert isinstance(
            ExecutionOptions(resilience=True).resolved_resilience(),
            ResilienceConfig,
        )
        cfg = ResilienceConfig()
        assert ExecutionOptions(resilience=cfg).resolved_resilience() is cfg

    def test_merged_overrides(self):
        base = ExecutionOptions(workers=2)
        merged = base.merged(on_error="skip")
        assert merged.workers == 2 and merged.on_error == "skip"
        assert base.on_error == "raise"  # frozen original untouched


# ----------------------------------------------------------------------
# from_legacy bridge
# ----------------------------------------------------------------------


class TestFromLegacy:
    def test_options_passthrough(self):
        opts = ExecutionOptions(workers=3)
        assert ExecutionOptions.from_legacy(opts, "site") is opts

    def test_options_plus_legacy_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            ExecutionOptions.from_legacy(
                ExecutionOptions(), "site", workers=2
            )

    def test_legacy_kwargs_build_options_and_warn_once(self):
        with pytest.warns(DeprecationWarning, match="'workers'"):
            opts = ExecutionOptions.from_legacy(
                None, "api.solve_batch", workers=2
            )
        assert opts.workers == 2
        # Second use of the same (site, kwarg): silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ExecutionOptions.from_legacy(None, "api.solve_batch", workers=4)
        # A different site still warns.
        with pytest.warns(DeprecationWarning, match="api.serve"):
            ExecutionOptions.from_legacy(None, "api.serve", workers=2)

    def test_no_legacy_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = ExecutionOptions.from_legacy(None, "site")
        assert opts == ExecutionOptions()

    def test_warn_false_suppresses(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = ExecutionOptions.from_legacy(
                None, "site", kernel="vectorized", warn=False
            )
        assert opts.kernel == KernelSpec(name="vectorized")


# ----------------------------------------------------------------------
# The options object reaches the execution layers
# ----------------------------------------------------------------------


class TestWiring:
    def _targets(self, chain, n=3):
        rng = np.random.default_rng(SEED)
        return np.stack([
            chain.end_position(chain.random_configuration(rng))
            for _ in range(n)
        ])

    def test_options_kernel_matches_legacy_kernel(self):
        chain = paper_chain(12)
        targets = self._targets(chain)
        via_options = api.solve_batch(
            chain,
            targets,
            seed=SEED,
            options=ExecutionOptions(kernel="vectorized"),
        )
        with pytest.warns(DeprecationWarning):
            via_legacy = api.solve_batch(
                chain, targets, seed=SEED, kernel="vectorized"
            )
        for a, b in zip(via_options, via_legacy):
            assert np.array_equal(a.q, b.q)
            assert a.iterations == b.iterations

    def test_options_compaction_reaches_engine(self):
        chain = paper_chain(12)
        solver = make_batch_solver(
            "JT-Speculation",
            chain,
            options=ExecutionOptions(compaction=False),
        )
        assert solver.compaction is False

    def test_kernel_configured_twice_is_an_error(self):
        chain = paper_chain(12)
        with pytest.raises(ValueError, match="kernel"):
            make_batch_solver(
                "JT-Speculation",
                chain,
                config=SolverConfig(kernel=KernelSpec(name="scalar")),
                options=ExecutionOptions(kernel="vectorized"),
            )

    def test_server_config_normalises_legacy_fields(self):
        # Legacy dataclass fields fold into the typed policy silently (they
        # are still first-class fields, not deprecated kwargs).
        cfg = ServerConfig(workers=2, on_error="skip")
        assert cfg.options.workers == 2
        assert cfg.options.on_error == "skip"

    def test_server_config_rejects_both_forms(self):
        with pytest.raises(ValueError, match="not both"):
            ServerConfig(workers=2, options=ExecutionOptions(workers=2))

    def test_server_config_accepts_options_directly(self):
        opts = ExecutionOptions(
            kernel=KernelSpec(name="vectorized", dtype="float32"),
            compaction=True,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = ServerConfig(options=opts)
        assert cfg.options is opts

    def test_public_reexports(self):
        import repro

        assert repro.ExecutionOptions is ExecutionOptions
        assert repro.KernelSpec is KernelSpec
        from repro.parallel.pool import ON_ERROR_MODES as pool_modes

        assert pool_modes is ON_ERROR_MODES
