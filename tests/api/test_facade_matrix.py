"""Facade matrix: ``solve_batch`` across workers × kernel × on_error.

Within a fixed kernel mode, every (workers, on_error) combination must be
**bit-identical** to that kernel's serial baseline — process sharding and
the failure-policy routing may not perturb numerics at all.  Across kernel
modes the discrete outcome (iterations / converged / status / FK count)
must match exactly and q agrees at the documented 1e-9 kernel-conformance
bound (the vectorized einsum formulation reassociates float ops, so
bit-equality is not the contract there; see ``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.kinematics.robots import named_robot

ROBOT = "dadu-12dof"
SOLVERS = ["JT-Speculation", "JT-DLS"]
WORKERS = [1, 2]
KERNELS = ["scalar", "vectorized"]
ON_ERROR = ["raise", "skip", "fallback"]
SEED = 11
MAX_ITERATIONS = 150
N_TARGETS = 4


@pytest.fixture(scope="module")
def targets():
    chain = named_robot(ROBOT)
    rng = np.random.default_rng(5)
    return np.stack([
        chain.end_position(chain.random_configuration(rng))
        for _ in range(N_TARGETS)
    ])


@pytest.fixture(scope="module")
def baselines(targets):
    """Serial (workers unset, on_error="raise") batch per solver × kernel."""
    return {
        (solver, kernel): api.solve_batch(
            ROBOT, targets, solver, seed=SEED,
            max_iterations=MAX_ITERATIONS, kernel=kernel,
        )
        for solver in SOLVERS
        for kernel in KERNELS
    }


def _assert_bit_identical(batch, baseline):
    assert len(batch) == len(baseline)
    for got, want in zip(batch, baseline):
        np.testing.assert_array_equal(got.q, want.q)
        assert got.iterations == want.iterations
        assert got.error == want.error
        assert got.converged == want.converged
        assert got.status == want.status
        assert got.fk_evaluations == want.fk_evaluations


@pytest.mark.parametrize("on_error", ON_ERROR)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_matrix_bit_identical_to_serial_baseline(
    solver, workers, kernel, on_error, targets, baselines
):
    batch = api.solve_batch(
        ROBOT, targets, solver, seed=SEED, max_iterations=MAX_ITERATIONS,
        workers=workers, kernel=kernel, on_error=on_error,
    )
    _assert_bit_identical(batch, baselines[(solver, kernel)])
    # A healthy batch reports no failures regardless of policy.
    if on_error != "raise":
        assert not batch.failures.records


@pytest.mark.parametrize("solver", SOLVERS)
def test_kernels_agree_on_discrete_outcome(solver, baselines):
    scalar = baselines[(solver, "scalar")]
    vectorized = baselines[(solver, "vectorized")]
    for a, b in zip(scalar, vectorized):
        assert a.iterations == b.iterations
        assert a.converged == b.converged
        assert a.status == b.status
        assert a.fk_evaluations == b.fk_evaluations
        np.testing.assert_allclose(a.q, b.q, atol=1e-9, rtol=0.0)
        assert a.error == pytest.approx(b.error, abs=1e-9)


@pytest.mark.parametrize("solver", SOLVERS)
def test_per_row_q0_matches_scalar_loop(solver, targets):
    # The (M, dof) q0 form every batch path accepts (added for the serving
    # layer) must reproduce the per-target scalar solves exactly.
    chain = named_robot(ROBOT)
    q0 = np.stack([
        chain.random_configuration(np.random.default_rng(SEED + i))
        for i in range(len(targets))
    ])
    batch = api.solve_batch(
        ROBOT, targets, solver, q0=q0, max_iterations=MAX_ITERATIONS,
        on_error="skip",
    )
    for i, got in enumerate(batch):
        want = api.solve(
            ROBOT, targets[i], solver, q0=q0[i],
            max_iterations=MAX_ITERATIONS,
        )
        assert got.iterations == want.iterations
        assert got.status == want.status
        if solver == "JT-DLS":
            np.testing.assert_array_equal(got.q, want.q)
        else:
            np.testing.assert_allclose(got.q, want.q, atol=1e-9, rtol=0.0)


def test_per_row_q0_shape_validated(targets):
    with pytest.raises(ValueError, match="q0"):
        api.solve_batch(
            ROBOT, targets, "JT-DLS",
            q0=np.zeros((len(targets) + 1, 12)), on_error="skip",
        )
