"""The ``repro.api`` facade: one-call solve/solve_batch over the registries."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import api
from repro.core.result import BatchResult, IKResult, SolverConfig
from repro.kinematics import paper_chain
from repro.solvers import BATCH_REGISTRY, SOLVER_REGISTRY
from repro.telemetry import SummaryTracer


def _easy_target(chain, seed=4):
    rng = np.random.default_rng(seed)
    return chain.end_position(chain.random_configuration(rng))


class TestSolve:
    def test_default_solver_on_named_robot(self):
        result = api.solve("dadu-12dof", _easy_target(paper_chain(12)), seed=0)
        assert isinstance(result, IKResult)
        assert result.converged
        assert result.solver == "JT-Speculation"

    def test_accepts_chain_instance(self):
        chain = paper_chain(12)
        result = api.solve(chain, _easy_target(chain), seed=0)
        assert result.dof == 12

    def test_every_registry_name_works(self):
        chain = paper_chain(12)
        target = _easy_target(chain)
        for name in SOLVER_REGISTRY:
            result = api.solve(chain, target, solver=name, seed=11)
            assert result.converged, f"{name} failed"
            assert result.solver == name

    def test_solver_options_forwarded(self):
        chain = paper_chain(12)
        result = api.solve(chain, _easy_target(chain), seed=0, speculations=16)
        assert result.speculations == 16

    def test_unknown_option_names_solver(self):
        with pytest.raises(TypeError, match="JT-Speculation.*speculation"):
            api.solve("dadu-12dof", [0.3, 0.2, 0.4], speculation=16)

    def test_unknown_solver(self):
        with pytest.raises(KeyError, match="JT-Quantum"):
            api.solve("dadu-12dof", [0.3, 0.2, 0.4], solver="JT-Quantum")

    def test_unknown_robot_type(self):
        with pytest.raises(TypeError):
            api.solve(42, [0.3, 0.2, 0.4])

    def test_tolerance_and_cap(self):
        chain = paper_chain(12)
        result = api.solve(
            chain, _easy_target(chain), seed=0, tolerance=0.05, max_iterations=7
        )
        assert result.iterations <= 7

    def test_config_conflicts_rejected(self):
        with pytest.raises(ValueError):
            api.solve(
                "dadu-12dof", [0.3, 0.2, 0.4],
                config=SolverConfig(), tolerance=0.1,
            )
        with pytest.raises(ValueError):
            api.solve(
                "dadu-12dof", [0.3, 0.2, 0.4],
                rng=np.random.default_rng(0), seed=1,
            )

    def test_restarts_wrapper(self):
        chain = paper_chain(12)
        result = api.solve(
            chain, _easy_target(chain), seed=0, restarts=3, max_iterations=2000
        )
        assert result.solver.endswith("+restarts")

    def test_tracer_threaded_through(self):
        tracer = SummaryTracer()
        chain = paper_chain(12)
        result = api.solve(chain, _easy_target(chain), seed=0, tracer=tracer)
        assert tracer.summary().solves == 1
        assert tracer.counters["fk_evaluations"] == result.fk_evaluations

    def test_reexported_from_package_root(self):
        assert repro.solve is api.solve
        assert repro.solve_batch is api.solve_batch


class TestSolveBatch:
    def _targets(self, chain, n=4, seed=9):
        rng = np.random.default_rng(seed)
        return np.stack(
            [chain.end_position(chain.random_configuration(rng)) for _ in range(n)]
        )

    def test_lockstep_engine_selected(self):
        chain = paper_chain(12)
        batch = api.solve_batch(chain, self._targets(chain), seed=0)
        assert isinstance(batch, BatchResult)
        assert batch.solver == "JT-Speculation-batched"
        assert len(batch) == 4
        assert batch.convergence_rate == 1.0

    def test_every_batch_registry_name_works(self):
        chain = paper_chain(12)
        targets = self._targets(chain, n=2)
        for name in BATCH_REGISTRY:
            batch = api.solve_batch(chain, targets, solver=name, seed=0)
            assert isinstance(batch, BatchResult)
            assert all(r.converged for r in batch), f"{name} failed"

    def test_scalar_fallback_for_other_solvers(self):
        chain = paper_chain(12)
        targets = self._targets(chain, n=2)
        batch = api.solve_batch(chain, targets, solver="JT-DLS", seed=0)
        assert isinstance(batch, BatchResult)
        assert batch.solver == "JT-DLS"
        assert all(r.converged for r in batch)

    def test_batch_result_is_sequence_compatible(self):
        chain = paper_chain(12)
        batch = api.solve_batch(chain, self._targets(chain), seed=0)
        assert batch[0].converged
        assert [r.solver for r in batch]  # iterable
        assert len(list(reversed(batch))) == len(batch)
        assert batch.total_fk_evaluations == sum(r.fk_evaluations for r in batch)

    def test_unknown_batch_option_names_solver(self):
        with pytest.raises(TypeError, match="JT-Speculation.*chunks"):
            api.solve_batch("dadu-12dof", np.zeros((1, 3)), chunks=4)

    def test_batch_telemetry(self):
        tracer = SummaryTracer()
        chain = paper_chain(12)
        batch = api.solve_batch(
            chain, self._targets(chain), seed=0, tracer=tracer
        )
        assert tracer.counters["fk_evaluations"] == batch.total_fk_evaluations
