"""Null-tracer overhead guard: instrumentation must cost nothing when off.

Compares the instrumented driver (``tracer=None`` resolves to the null
tracer) against a faithful replica of the pre-telemetry seed loop on the
25-DOF headline path.  The acceptance bound is <5% slowdown; the solve is
deterministic (fixed ``q0``/target), so both sides execute the identical
numeric trajectory and the only difference is the telemetry guard checks.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.alpha import buss_alpha
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics import paper_chain

#: Acceptance bound from the telemetry design: null path within 5% of seed.
MAX_OVERHEAD = 1.05

#: Timing samples per side; the minimum is compared (robust to scheduler
#: noise — the true cost is the fastest observed run).
SAMPLES = 5


def _seed_loop(solver: QuickIKSolver, target: np.ndarray, q0: np.ndarray) -> int:
    """The seed repository's driver + Quick-IK step, uninstrumented."""
    chain = solver.chain
    config = solver.config
    q = q0.copy()
    position = chain.end_position(q)
    error = float(np.linalg.norm(target - position))
    iterations = 0
    while error >= config.tolerance and iterations < config.max_iterations:
        error_vec = target - position
        jacobian = chain.jacobian_position(q)
        dq_base = jacobian.T @ error_vec
        alpha_base = buss_alpha(error_vec, jacobian @ dq_base)
        alphas = solver.schedule(alpha_base, solver.speculations)
        candidates = q[None, :] + alphas[:, None] * dq_base[None, :]
        positions = chain.end_positions_batch(candidates)
        errors = np.linalg.norm(target[None, :] - positions, axis=1)
        below = np.flatnonzero(errors < config.tolerance)
        early = bool(below.size)
        chosen = int(below[0]) if early else int(np.argmin(errors))
        q = candidates[chosen]
        position = positions[chosen]
        error = float(errors[chosen])
        iterations += 1
        if early:
            break
    return iterations


@pytest.mark.slow
def test_null_tracer_overhead_within_noise():
    chain = paper_chain(25)
    config = SolverConfig(record_history=False)
    solver = QuickIKSolver(chain, speculations=64, config=config)
    rng = np.random.default_rng(7)
    q0 = chain.random_configuration(rng)
    target = chain.end_position(chain.random_configuration(rng))

    # Both sides must walk the identical trajectory.
    instrumented = solver.solve(target, q0=q0)
    assert instrumented.converged
    assert _seed_loop(solver, target, q0) == instrumented.iterations

    # Warm-up, then interleave samples so drift hits both sides equally.
    solver.solve(target, q0=q0)
    _seed_loop(solver, target, q0)
    seed_times, null_times = [], []
    for _ in range(SAMPLES):
        start = time.perf_counter()
        _seed_loop(solver, target, q0)
        seed_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        solver.solve(target, q0=q0)
        null_times.append(time.perf_counter() - start)

    ratio = min(null_times) / min(seed_times)
    assert ratio < MAX_OVERHEAD, (
        f"null-tracer path is {ratio:.3f}x the seed loop "
        f"(bound {MAX_OVERHEAD}); seed={min(seed_times):.4f}s "
        f"null={min(null_times):.4f}s"
    )
