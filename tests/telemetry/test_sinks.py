"""JSONL round-trip, metrics aggregation and the multi-sink fan-out."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.ikacc import IKAccSimulator, trace_from_telemetry
from repro.kinematics import paper_chain, planar_chain
from repro.telemetry import (
    JsonlTracer,
    MetricsRegistry,
    MultiTracer,
    SummaryTracer,
    TelemetrySummary,
    merge_summaries,
    percentile,
    read_jsonl_trace,
)


@pytest.fixture
def two_link():
    return planar_chain(2, total_reach=1.0)


class TestJsonlRoundTrip:
    def test_round_trip(self, two_link, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            result = QuickIKSolver(two_link, speculations=4).solve(
                np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]),
                tracer=tracer,
            )
        events = read_jsonl_trace(path)
        assert len(events) == result.iterations + 2
        assert events[0]["event"] == "solve_start"
        assert events[0]["dof"] == 2
        assert events[0]["target"] == [0.6, 0.3, 0.0]
        assert events[-1]["event"] == "solve_end"
        # The final line is self-contained: counters ride along.
        assert events[-1]["counters"]["fk_evaluations"] == result.fk_evaluations
        # Every line is independently parseable JSON (no numpy leakage).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_borrowed_stream_left_open(self, two_link, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            tracer = JsonlTracer(fh)
            QuickIKSolver(two_link, speculations=4).solve(
                np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]),
                tracer=tracer,
            )
            tracer.close()
            assert not fh.closed
        assert read_jsonl_trace(path)

    def test_ikacc_trace_reconstruction(self, tmp_path):
        """A JSONL trace of an IKAcc solve rebuilds a Gantt timeline."""
        path = tmp_path / "ikacc.jsonl"
        chain = paper_chain(12)
        sim = IKAccSimulator(chain)
        with JsonlTracer(path) as tracer:
            run = sim.solve(
                np.array([0.3, 0.2, 0.4]),
                rng=np.random.default_rng(5),
                tracer=tracer,
            )
        assert run.converged
        events = read_jsonl_trace(path)
        assert any(e["event"] == "speculation_wave" for e in events)
        timeline = trace_from_telemetry(events, iteration=1)
        assert timeline.dof == 12
        assert "SPU" in timeline.unit_names()
        assert "SSU array" in timeline.unit_names()
        assert timeline.total_cycles > 0


class TestMetricsRegistry:
    def test_percentiles_and_rates(self, two_link):
        registry = MetricsRegistry()
        solver = QuickIKSolver(two_link, speculations=4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            target = two_link.end_position(two_link.random_configuration(rng))
            registry.record_result(solver.solve(target, rng=rng))
        report = registry.report()
        stats = report["solvers"]["JT-Speculation"]
        assert stats["solves"] == 10
        assert 0.0 <= stats["convergence_rate"] <= 1.0
        latency = stats["latency_s"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["mean"] > 0.0

    def test_as_tracer_sink(self, two_link):
        registry = MetricsRegistry()
        QuickIKSolver(two_link, speculations=4).solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]),
            tracer=registry,
        )
        report = registry.report()
        assert report["solvers"]["JT-Speculation"]["solves"] == 1
        assert report["counters"]["fk_evaluations"] > 0

    def test_to_json_writes_file(self, two_link, tmp_path):
        registry = MetricsRegistry()
        QuickIKSolver(two_link, speculations=4).solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]),
            tracer=registry,
        )
        path = tmp_path / "metrics.json"
        text = registry.to_json(path)
        assert json.loads(path.read_text()) == json.loads(text)

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))


class TestMultiTracer:
    def test_fan_out(self, two_link, tmp_path):
        summary = SummaryTracer()
        registry = MetricsRegistry()
        with JsonlTracer(tmp_path / "t.jsonl") as jsonl:
            fan = MultiTracer(summary, jsonl, registry)
            QuickIKSolver(two_link, speculations=4).solve(
                np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=fan
            )
        assert summary.summary().solves == 1
        assert registry.report()["solvers"]["JT-Speculation"]["solves"] == 1
        assert read_jsonl_trace(tmp_path / "t.jsonl")

    def test_empty_multi_tracer_is_disabled(self):
        assert not MultiTracer().enabled


class TestMergePaths:
    """The sharded-execution merge path: summaries and registries fold."""

    def _summary(self, solves, fk):
        return TelemetrySummary(
            solves=solves, iterations=solves * 3, waves=0,
            counters={"fk_evaluations": fk},
            phase_seconds={"jacobian": 0.5}, events=solves * 5,
        )

    def test_merge_summaries_adds_everything(self):
        merged = merge_summaries([self._summary(1, 10), self._summary(2, 32)])
        assert merged.solves == 3
        assert merged.iterations == 9
        assert merged.events == 15
        assert merged.counters == {"fk_evaluations": 42}
        assert merged.phase_seconds == {"jacobian": 1.0}

    def test_merge_accepts_worker_dicts(self):
        """Workers ship summaries as plain dicts across the process pipe."""
        merged = TelemetrySummary.merge(
            [self._summary(1, 10).to_dict(), self._summary(1, 5).to_dict()]
        )
        assert merged.solves == 2
        assert merged.counters == {"fk_evaluations": 15}

    def test_merge_empty_is_zero(self):
        merged = merge_summaries([])
        assert merged.solves == 0 and merged.counters == {}

    def test_from_dict_round_trips(self):
        summary = self._summary(4, 99)
        assert TelemetrySummary.from_dict(summary.to_dict()) == summary

    def test_metrics_registry_merge(self, two_link):
        target = np.array([0.6, 0.3, 0.0])
        a, b = MetricsRegistry(), MetricsRegistry()
        QuickIKSolver(two_link, speculations=4).solve(
            target, q0=np.array([0.1, 0.1]), tracer=a
        )
        QuickIKSolver(two_link, speculations=4).solve(
            target, q0=np.array([0.2, 0.2]), tracer=b
        )
        merged = a.merge(b)
        assert merged is a
        entry = a.report()["solvers"]["JT-Speculation"]
        assert entry["solves"] == 2
        assert a.report()["counters"]["fk_evaluations"] > 0

    def test_metrics_registry_merge_disjoint_solvers(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.solve_end("A", converged=True, wall_time=0.1)
        b.solve_end("B", converged=False, wall_time=0.2)
        b.count("fk_evaluations", 7)
        a.merge(b)
        report = a.report()
        assert set(report["solvers"]) == {"A", "B"}
        assert report["counters"]["fk_evaluations"] == 7
