"""Event ordering and counter correctness for instrumented solves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics import paper_chain, planar_chain
from repro.solvers import (
    BatchedQuickIK,
    JacobianTransposeSolver,
    RandomRestartSolver,
)
from repro.telemetry import (
    NULL_TRACER,
    SummaryTracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


@pytest.fixture
def two_link():
    """Two-link planar arm: the scripted solve of the telemetry spec."""
    return planar_chain(2, total_reach=1.0)


class TestEventStream:
    def test_event_ordering(self, two_link):
        tracer = SummaryTracer()
        solver = QuickIKSolver(two_link, speculations=4)
        result = solver.solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=tracer
        )
        assert result.converged
        kinds = [e["event"] for e in tracer.events]
        assert kinds[0] == "solve_start"
        assert kinds[-1] == "solve_end"
        assert set(kinds[1:-1]) == {"iteration"}
        # Iteration indices are 1..N in order, one event per outer iteration.
        indices = [e["index"] for e in tracer.events_of("iteration")]
        assert indices == list(range(1, result.iterations + 1))
        # Event timestamps are monotone.
        stamps = [e["t"] for e in tracer.events]
        assert stamps == sorted(stamps)

    def test_exact_fk_counts_quick_ik(self, two_link):
        """Quick-IK with Max=4: 1 seed FK + exactly 4 FK per iteration."""
        tracer = SummaryTracer()
        solver = QuickIKSolver(two_link, speculations=4)
        result = solver.solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=tracer
        )
        expected_fk = 1 + 4 * result.iterations
        assert result.fk_evaluations == expected_fk
        assert tracer.counters["fk_evaluations"] == expected_fk
        assert tracer.counters["jacobian_builds"] == result.iterations
        assert tracer.counters["candidate_evaluations"] == 4 * result.iterations
        # Per-iteration events carry the per-step FK cost.
        per_step = [e["fk_evaluations"] for e in tracer.events_of("iteration")]
        assert per_step == [4] * result.iterations

    def test_exact_fk_counts_jt_serial(self, two_link):
        """JT-Serial: 1 seed FK + exactly 1 driver FK per iteration."""
        tracer = SummaryTracer()
        solver = JacobianTransposeSolver(
            two_link, config=SolverConfig(max_iterations=5000)
        )
        result = solver.solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=tracer
        )
        assert result.converged
        assert tracer.counters["fk_evaluations"] == 1 + result.iterations
        assert tracer.counters["fk_evaluations"] == result.fk_evaluations
        assert tracer.counters["candidate_evaluations"] == result.iterations

    def test_solve_end_matches_result(self, two_link):
        tracer = SummaryTracer()
        solver = QuickIKSolver(two_link, speculations=4)
        result = solver.solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=tracer
        )
        (end,) = tracer.events_of("solve_end")
        assert end["solver"] == result.solver
        assert end["converged"] == result.converged
        assert end["iterations"] == result.iterations
        assert end["error"] == pytest.approx(result.error)
        assert end["fk_evaluations"] == result.fk_evaluations

    def test_phase_timers_populated(self, two_link):
        tracer = SummaryTracer()
        QuickIKSolver(two_link, speculations=4).solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=tracer
        )
        for phase in ("jacobian", "alpha", "fk_sweep", "selection"):
            assert tracer.phase_seconds[phase] >= 0.0

    def test_untraced_solve_emits_nothing(self, two_link):
        """No tracer, no global tracer: results identical, stream empty."""
        tracer = SummaryTracer()
        solver = QuickIKSolver(two_link, speculations=4)
        traced = solver.solve(
            np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]), tracer=tracer
        )
        plain = solver.solve(np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1]))
        assert plain.iterations == traced.iterations
        assert np.allclose(plain.q, traced.q)


class TestBatchTelemetry:
    def test_lockstep_counters_match_results(self, two_link):
        tracer = SummaryTracer()
        rng = np.random.default_rng(3)
        chain = paper_chain(12)
        targets = np.stack(
            [
                chain.end_position(chain.random_configuration(rng))
                for _ in range(5)
            ]
        )
        batch = BatchedQuickIK(chain, speculations=8).solve_batch(
            targets, rng=rng, tracer=tracer
        )
        assert tracer.counters["fk_evaluations"] == batch.total_fk_evaluations
        starts = tracer.events_of("solve_start")
        assert len(starts) == 1 and starts[0]["batch"] == 5
        assert batch.telemetry is not None
        assert batch.telemetry["counters"]["fk_evaluations"] == (
            batch.total_fk_evaluations
        )

    def test_restart_counter(self, two_link):
        tracer = SummaryTracer()
        inner = QuickIKSolver(
            two_link, speculations=4, config=SolverConfig(max_iterations=1)
        )
        # Unreachable target: every attempt fails, all restarts are spent.
        RandomRestartSolver(inner, max_restarts=4).solve(
            np.array([5.0, 0.0, 0.0]),
            rng=np.random.default_rng(0),
            tracer=tracer,
        )
        assert tracer.counters["restarts"] == 3
        assert len(tracer.events_of("solve_start")) == 4


class TestGlobalTracer:
    def test_use_tracer_scopes_installation(self, two_link):
        tracer = SummaryTracer()
        assert get_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert get_tracer() is tracer
            QuickIKSolver(two_link, speculations=4).solve(
                np.array([0.6, 0.3, 0.0]), q0=np.array([0.1, 0.1])
            )
        assert get_tracer() is NULL_TRACER
        assert tracer.summary().solves == 1

    def test_set_tracer_returns_previous(self):
        tracer = SummaryTracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
