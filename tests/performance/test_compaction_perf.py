"""Perf gate for active-set compaction (``-m slow``).

The whole point of compaction is that late-iteration cost tracks the
*survivor* count, not the original batch size: once most problems have
retired, the dense sweep should touch only the rows still alive.  This
gate pins that scaling property two ways:

* directly — one ``_advance_dense`` step over an 8-row survivor block must
  cost well under the same step over the full 64-row block;
* end to end — a batch where most problems start at their solution (so
  they retire before the first sweep) must solve much faster than the same
  batch started cold.

Timing-sensitive, so excluded from tier 1 (the ``slow`` marker); thresholds
are loose (2x where the work ratio is 8x) to absorb shared-runner noise.
"""

import time

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.execution import KernelSpec
from repro.kinematics.robots import paper_chain
from repro.solvers.batched import BatchedQuickIK
from repro.telemetry.tracer import NullTracer

SEED = 20170407
DOF = 50
BATCH = 64
SURVIVORS = 8


def _chain():
    return KernelSpec(name="vectorized", dtype="float64").apply(
        paper_chain(DOF)
    )


def _targets(chain, n):
    base = paper_chain(DOF)
    rng = np.random.default_rng((SEED, DOF))
    return np.stack([
        base.end_position(base.random_configuration(rng)) for _ in range(n)
    ])


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
def test_dense_step_cost_tracks_survivor_count():
    chain = _chain()
    engine = BatchedQuickIK(
        chain, config=SolverConfig(tolerance=1e-2), speculations=32
    )
    targets = _targets(chain, BATCH)
    rng = np.random.default_rng(SEED + 1)
    qs = engine._initial_configurations(BATCH, None, rng)
    positions = chain.end_positions_batch(qs)
    tracer = NullTracer()

    def step(rows):
        engine._advance_dense(
            qs[:rows].copy(),
            positions[:rows].copy(),
            targets[:rows],
            tracer,
        )

    full = _best_of(lambda: step(BATCH))
    small = _best_of(lambda: step(SURVIVORS))
    # 8x fewer rows; demand only 2x cheaper to stay robust under noise.
    assert small * 2.0 <= full, (
        f"dense step over {SURVIVORS} rows took {small * 1e3:.2f}ms vs "
        f"{full * 1e3:.2f}ms over {BATCH} — compacted cost is not "
        "tracking the survivor count"
    )


@pytest.mark.slow
def test_mostly_retired_batch_solves_faster_than_cold_batch():
    chain = _chain()
    base = paper_chain(DOF)
    rng = np.random.default_rng((SEED, DOF))
    solved_q = np.stack([
        base.random_configuration(rng) for _ in range(BATCH)
    ])
    targets = np.stack([base.end_position(q) for q in solved_q])

    engine = BatchedQuickIK(
        chain,
        config=SolverConfig(tolerance=1e-2, max_iterations=60),
        speculations=32,
    )

    # Warm batch: all but SURVIVORS rows start at their exact solution, so
    # they retire at active-set init and the sweep only ever sees the tail.
    q0_warm = solved_q.copy()
    cold_rows = slice(0, SURVIVORS)
    q0_warm[cold_rows] = 0.0

    def run(q0):
        engine.solve_batch(
            targets, q0=q0, rng=np.random.default_rng(SEED + 1)
        )

    warm = _best_of(lambda: run(q0_warm), repeats=3)
    cold = _best_of(lambda: run(np.zeros_like(solved_q)), repeats=3)
    assert warm * 2.0 <= cold, (
        f"batch with {SURVIVORS}/{BATCH} live rows took {warm * 1e3:.1f}ms "
        f"vs {cold * 1e3:.1f}ms cold — compaction is not shrinking the "
        "late-iteration working set"
    )
