"""Perf gate for the micro-batching serving layer (``-m slow``).

Drives :func:`repro.serving.run_serve_bench` open-loop at an offered rate
well above the single-solve service rate, so requests pile up and the
scheduler *must* coalesce — the acceptance gate for the serving PR is
``mean_occupancy > 1`` under concurrent load, plus sane latency accounting.

Timing-sensitive, so excluded from tier 1 (the ``slow`` marker); the
nightly CI job runs the full 50-DOF ``serve-bench`` and uploads the fresh
``BENCH_serving_nightly.json`` next to the committed ``BENCH_serving.json``.
"""

from __future__ import annotations

import math

import pytest

from repro.serving import run_serve_bench

pytestmark = pytest.mark.slow

#: Offered load (req/s) far above the ~13 req/s serial 25-DOF service rate.
OFFERED_RATE_HZ = 400.0


@pytest.fixture(scope="module")
def payload():
    return run_serve_bench(
        robot="dadu-25dof",
        requests=80,
        rate_hz=OFFERED_RATE_HZ,
        max_batch_size=16,
        max_wait_ms=4.0,
        kernel="vectorized",
        seed=7,
    )


def test_overloaded_stream_coalesces(payload):
    serving = payload["serving"]
    assert serving["mean_occupancy"] > 1.0, (
        "no coalescing under a 400 req/s offered load — the micro-batcher "
        "is flushing singletons"
    )
    assert serving["occupancy_peak"] >= 2
    assert serving["batches"] < payload["completed"]


def test_every_request_served_and_solved(payload):
    assert payload["completed"] == payload["requests"]
    assert payload["rejections"] == {}
    # The stock tolerance on in-workspace targets converges essentially
    # always; anything below 90% signals a broken serving data path.
    assert payload["convergence_rate"] >= 0.9


def test_latency_accounting_is_sane(payload):
    latency = payload["latency_s"]
    assert 0.0 < latency["p50"] <= latency["p90"] <= latency["p99"]
    assert latency["p99"] <= latency["max"]
    assert math.isfinite(latency["mean"])
    # End-to-end latency includes coalescing, so it can't beat the
    # configured max_wait floor by orders of magnitude nor exceed the
    # whole-run makespan.
    assert latency["max"] <= payload["makespan_s"]


def test_throughput_reported(payload):
    assert payload["throughput_rps"] > 1.0
    assert payload["makespan_s"] > 0.0


def test_payload_schema_for_dashboards(payload):
    assert payload["benchmark"] == "serving"
    assert {"robot", "dof", "solver", "config", "serving",
            "latency_s", "statuses", "notes"} <= set(payload)
    assert {"mean_occupancy", "queue_depth_peak",
            "cache_hit_rate"} <= set(payload["serving"])
