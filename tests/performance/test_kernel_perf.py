"""Perf-regression gate for the vectorized kernel layer (``-m slow``).

Runs the fixed microbenchmark workload of ``benchmarks/bench_kernels.py``
under both kernel modes and asserts the vectorized path has not regressed:

* the headline lock-step candidate sweep (all ``B x Max`` speculative
  evaluations of one 50-DOF iteration in one stacked call) must keep a
  clear speedup over the scalar oracle — the committed baseline
  ``BENCH_kernels.json`` records ~2-3x, the gate demands >= 1.5x to absorb
  shared-runner noise;
* no section may be slower than scalar beyond tolerance (1.5x) — catching
  a dispatch-overhead regression even where the win is only parity;
* accuracy rides along: every section's recorded deviation from the
  scalar oracle stays within the 1e-12 conformance bound.

Timing-sensitive, so excluded from tier 1 (the ``slow`` marker); the
nightly CI job runs it and uploads the fresh JSON next to the committed
baseline.
"""

import json
from pathlib import Path

import pytest

from benchmarks.bench_kernels import run_kernel_bench

#: Gate on the headline sweep: well under the measured ~2-3x, well over 1x.
MIN_HEADLINE_SPEEDUP = 1.5

#: No section may be slower than the scalar oracle beyond this factor.
MAX_SLOWDOWN = 1.5

BASELINE = Path(__file__).resolve().parents[2] / "BENCH_kernels.json"


@pytest.fixture(scope="module")
def payload():
    return run_kernel_bench(dof=50, speculations=32, batch=64, repeats=5)


@pytest.mark.slow
def test_headline_speculative_sweep_keeps_speedup(payload):
    headline = payload["headline_speedup"]
    assert headline >= MIN_HEADLINE_SPEEDUP, (
        f"lock-step candidate sweep at {headline:.2f}x "
        f"(gate {MIN_HEADLINE_SPEEDUP}x; committed baseline records "
        f"{json.loads(BASELINE.read_text())['headline_speedup']:.2f}x)"
        if BASELINE.exists()
        else f"lock-step candidate sweep at {headline:.2f}x"
    )


@pytest.mark.slow
def test_no_section_slower_than_scalar_beyond_tolerance(payload):
    slow_sections = {
        name: section["speedup"]
        for name, section in payload["sections"].items()
        if section["speedup"] < 1.0 / MAX_SLOWDOWN
    }
    assert not slow_sections, (
        f"vectorized kernels regressed past {MAX_SLOWDOWN}x slowdown: "
        f"{slow_sections}"
    )


@pytest.mark.slow
def test_accuracy_rides_along(payload):
    for name, section in payload["sections"].items():
        assert section["max_abs_deviation"] <= 1e-12, (
            f"{name} deviates {section['max_abs_deviation']:.2e} from the "
            "scalar oracle (conformance bound 1e-12)"
        )


@pytest.mark.slow
def test_committed_baseline_is_fresh_and_passing():
    """The repo's ``BENCH_kernels.json`` must exist and itself meet the
    acceptance bar (>= 2x on the headline sweep), so the committed record
    never contradicts the gate."""
    assert BASELINE.exists(), "run benchmarks/bench_kernels.py to seed it"
    recorded = json.loads(BASELINE.read_text())
    assert recorded["benchmark"] == "kernel-speedup"
    assert recorded["headline_speedup"] >= 2.0
    for name, section in recorded["sections"].items():
        assert section["max_abs_deviation"] <= 1e-12, name
