"""Tests for the Quick-IK solver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.quick_ik import DEFAULT_SPECULATIONS, QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain, planar_chain
from repro.solvers.jacobian_transpose import JacobianTransposeSolver


@pytest.fixture
def chain():
    return paper_chain(12)


@pytest.fixture
def targets(chain, rng):
    return [chain.end_position(chain.random_configuration(rng)) for _ in range(8)]


class TestConstruction:
    def test_paper_default_speculations(self, chain):
        assert QuickIKSolver(chain).speculations == DEFAULT_SPECULATIONS == 64

    def test_invalid_speculations(self, chain):
        with pytest.raises(ValueError):
            QuickIKSolver(chain, speculations=0)

    def test_schedule_by_name_or_callable(self, chain):
        by_name = QuickIKSolver(chain, schedule="geometric")
        by_fn = QuickIKSolver(chain, schedule=lambda base, n: np.array([base]))
        assert by_name.schedule is not None
        assert by_fn.schedule(1.0, 5).shape == (1,)

    def test_unknown_schedule_name(self, chain):
        with pytest.raises(KeyError):
            QuickIKSolver(chain, schedule="bogus")


class TestConvergence:
    def test_solves_reachable_targets(self, chain, targets, fast_config):
        solver = QuickIKSolver(chain, config=fast_config)
        rng = np.random.default_rng(7)
        for target in targets:
            result = solver.solve(target, rng=rng)
            assert result.converged
            assert result.error < fast_config.tolerance
            assert np.allclose(
                chain.end_position(result.q), target, atol=fast_config.tolerance
            )

    def test_high_dof_chain(self, fast_config, rng):
        chain = paper_chain(50)
        target = chain.end_position(chain.random_configuration(rng))
        result = QuickIKSolver(chain, config=fast_config).solve(target, rng=rng)
        assert result.converged

    def test_planar_target_in_plane(self, fast_config, rng):
        chain = planar_chain(5)
        target = chain.end_position(chain.random_configuration(rng))
        result = QuickIKSolver(chain, config=fast_config).solve(target, rng=rng)
        assert result.converged

    def test_speculations_one_equals_buss_jt(self, chain, targets):
        """Max = 1 degenerates to the serial Buss-alpha transpose method."""
        config = SolverConfig(max_iterations=500)
        qik = QuickIKSolver(chain, speculations=1, config=config)
        jt = JacobianTransposeSolver(chain, config=config, alpha_mode="buss")
        for target in targets[:4]:
            q0 = np.full(chain.dof, 0.3)
            a = qik.solve(target, q0=q0)
            b = jt.solve(target, q0=q0)
            assert a.iterations == b.iterations
            assert np.allclose(a.q, b.q, atol=1e-10)


class TestInstrumentation:
    def test_fk_evaluations_counted(self, chain, targets):
        solver = QuickIKSolver(chain, speculations=16, config=SolverConfig())
        result = solver.solve(targets[0], rng=np.random.default_rng(0))
        # 1 initial + 16 per iteration (steps report their own positions).
        assert result.fk_evaluations == 1 + 16 * result.iterations

    def test_work_metric(self, chain, targets):
        solver = QuickIKSolver(chain, speculations=32)
        result = solver.solve(targets[0], rng=np.random.default_rng(0))
        assert result.work == 32 * result.iterations

    def test_track_chosen_records_winners(self, chain, targets):
        solver = QuickIKSolver(chain, speculations=16, track_chosen=True)
        result = solver.solve(targets[0], rng=np.random.default_rng(0))
        assert len(solver.chosen_history) == result.iterations
        assert all(0 <= k < 16 for k in solver.chosen_history)

    def test_error_history_monotone_nonincreasing(self, chain, targets):
        """Greedy argmin over candidates that include doing-almost-nothing
        (alpha_base/Max) should essentially never increase the error."""
        solver = QuickIKSolver(chain, speculations=64)
        result = solver.solve(targets[0], rng=np.random.default_rng(0))
        diffs = np.diff(result.error_history)
        assert np.all(diffs <= 1e-9)


class TestGreedyDominance:
    def test_per_iteration_error_not_worse_than_buss_step(self, chain, targets):
        """One Quick-IK iteration is at least as good as one Buss JT step,
        because k = Max reproduces exactly that step (DESIGN.md §7)."""
        config = SolverConfig(max_iterations=1, record_history=True)
        rng_seed = 3
        for target in targets:
            q0 = chain.random_configuration(np.random.default_rng(rng_seed))
            qik = QuickIKSolver(chain, speculations=64, config=config)
            jt = JacobianTransposeSolver(chain, config=config, alpha_mode="buss")
            error_qik = qik.solve(target, q0=q0).error
            error_jt = jt.solve(target, q0=q0).error
            assert error_qik <= error_jt + 1e-12


class TestEarlyExit:
    def test_early_exit_returns_first_hit_below_threshold(self, chain, rng):
        """Lines 12-13: the first candidate under the threshold wins, even if
        a later candidate has lower error."""
        config = SolverConfig(tolerance=1e300, max_iterations=5)
        solver = QuickIKSolver(chain, speculations=8, config=config, track_chosen=True)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        outcome = solver._step(q, position, target)
        # With an absurd tolerance every candidate qualifies; the chosen one
        # must be k = 1 (index 0), not the argmin.
        assert outcome.early_exit
        assert solver.chosen_history == [0]
        assert outcome.fk_evaluations == 8

    def test_respect_limits_keeps_candidates_legal(self, rng):
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=50, respect_limits=True)
        solver = QuickIKSolver(chain, config=config)
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert chain.within_limits(result.q, tol=1e-9)
