"""Tests for the hybrid (step-size + direction) speculative solver."""

import numpy as np
import pytest

from repro.core.hybrid import HybridSpeculativeSolver
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import hyper_redundant_chain, paper_chain
from repro.workloads.targets import extended_pose_targets


class TestConstruction:
    def test_budget_split(self):
        solver = HybridSpeculativeSolver(
            paper_chain(12), speculations=64, dls_fraction=0.25
        )
        assert solver.n_dls == 16
        assert solver.n_jt == 48
        assert solver.dampings.shape == (16,)

    def test_zero_dls_fraction_allowed(self):
        solver = HybridSpeculativeSolver(paper_chain(12), dls_fraction=0.0)
        assert solver.n_dls == 0

    def test_invalid_params(self):
        chain = paper_chain(12)
        with pytest.raises(ValueError):
            HybridSpeculativeSolver(chain, speculations=1)
        with pytest.raises(ValueError):
            HybridSpeculativeSolver(chain, dls_fraction=1.0)
        with pytest.raises(ValueError):
            HybridSpeculativeSolver(chain, damping_range=(1.0, 0.1))
        with pytest.raises(ValueError):
            HybridSpeculativeSolver(chain, damping_range=(0.0, 1.0))


class TestBehaviour:
    def test_converges_on_easy_targets(self, rng):
        chain = paper_chain(12)
        solver = HybridSpeculativeSolver(
            chain, config=SolverConfig(max_iterations=2000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_fk_budget_respected(self, rng):
        chain = paper_chain(12)
        solver = HybridSpeculativeSolver(chain, speculations=32)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        outcome = solver._step(q, position, target)
        assert outcome.fk_evaluations == 32

    def test_zero_dls_matches_quick_ik_step(self, rng):
        """With no DLS candidates the hybrid degenerates to Quick-IK."""
        chain = paper_chain(12)
        hybrid = HybridSpeculativeSolver(chain, speculations=16, dls_fraction=0.0)
        plain = QuickIKSolver(chain, speculations=16)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        a = hybrid._step(q, position, target)
        b = plain._step(q, position, target)
        assert np.allclose(a.q, b.q, atol=1e-12)

    def test_dominates_quick_ik_near_boundary(self):
        """The headline of the extension: near-extension targets that stall
        Quick-IK are easy once DLS directions join the candidate set."""
        chain = hyper_redundant_chain(25)
        rng = np.random.default_rng(2)
        targets = extended_pose_targets(chain, 5, rng, range_fraction=0.25)
        config = SolverConfig(max_iterations=4000, record_history=False)
        plain = QuickIKSolver(chain, 64, config=config)
        hybrid = HybridSpeculativeSolver(chain, 64, config=config)
        plain_iters = sum(
            plain.solve(t, rng=np.random.default_rng(9)).iterations for t in targets
        )
        hybrid_iters = sum(
            hybrid.solve(t, rng=np.random.default_rng(9)).iterations for t in targets
        )
        assert hybrid_iters < 0.2 * plain_iters

    def test_error_history_monotone(self, rng):
        chain = paper_chain(25)
        solver = HybridSpeculativeSolver(
            chain, config=SolverConfig(max_iterations=1000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert np.all(np.diff(result.error_history) <= 1e-9)
