"""Tests for result/config dataclasses."""

import numpy as np
import pytest

from repro.core.result import IKResult, SolverConfig, StepOutcome


class TestSolverConfig:
    def test_paper_defaults(self):
        config = SolverConfig()
        assert config.tolerance == 1e-2
        assert config.max_iterations == 10_000
        assert config.record_history
        assert not config.respect_limits

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            SolverConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            SolverConfig(tolerance=-1.0)

    def test_invalid_max_iterations(self):
        with pytest.raises(ValueError):
            SolverConfig(max_iterations=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SolverConfig().tolerance = 0.5


class TestIKResult:
    def _result(self, **kwargs):
        defaults = dict(
            q=np.zeros(4),
            converged=True,
            iterations=10,
            error=5e-3,
            target=np.zeros(3),
            solver="JT-Speculation",
            dof=4,
            speculations=64,
            fk_evaluations=641,
        )
        defaults.update(kwargs)
        return IKResult(**defaults)

    def test_work_is_speculations_times_iterations(self):
        assert self._result().work == 640

    def test_work_serial_method(self):
        assert self._result(speculations=1, iterations=100).work == 100

    def test_summary_mentions_status(self):
        assert "converged" in self._result().summary()
        assert "FAILED" in self._result(converged=False).summary()

    def test_summary_mentions_solver_and_dof(self):
        text = self._result().summary()
        assert "JT-Speculation" in text
        assert "4 DOF" in text

    def test_default_history_empty(self):
        assert self._result().error_history.size == 0


class TestStepOutcome:
    def test_defaults(self):
        outcome = StepOutcome(q=np.zeros(3))
        assert outcome.position is None
        assert outcome.error is None
        assert outcome.fk_evaluations == 0
        assert not outcome.early_exit
