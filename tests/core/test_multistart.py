"""Tests for speculative restarts (parallel seeding)."""

import numpy as np
import pytest

from repro.core.multistart import SpeculativeRestartSolver, best_seed
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain


class TestBestSeed:
    def test_returns_closest_candidate(self, rng):
        chain = paper_chain(12)
        target = chain.end_position(chain.random_configuration(rng))
        seed = best_seed(chain, target, 64, np.random.default_rng(1))
        # Must beat the average random configuration by construction.
        seed_error = np.linalg.norm(chain.end_position(seed) - target)
        random_errors = [
            np.linalg.norm(chain.end_position(chain.random_configuration(rng)) - target)
            for _ in range(20)
        ]
        assert seed_error <= np.mean(random_errors)

    def test_single_candidate(self, rng):
        chain = paper_chain(12)
        target = chain.end_position(chain.random_configuration(rng))
        seed = best_seed(chain, target, 1, np.random.default_rng(2))
        assert seed.shape == (12,)

    def test_invalid_count(self, rng):
        chain = paper_chain(12)
        with pytest.raises(ValueError):
            best_seed(chain, np.zeros(3), 0, rng)

    def test_deterministic_with_rng(self, rng):
        chain = paper_chain(12)
        target = chain.end_position(chain.random_configuration(rng))
        a = best_seed(chain, target, 16, np.random.default_rng(3))
        b = best_seed(chain, target, 16, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestSpeculativeRestartSolver:
    def test_reduces_mean_iterations(self, rng):
        """Seeding from the best of 64 restarts should not be worse on
        average than one random restart."""
        chain = paper_chain(25)
        config = SolverConfig(max_iterations=3000, record_history=False)
        plain = QuickIKSolver(chain, config=config)
        seeded = SpeculativeRestartSolver(
            QuickIKSolver(chain, config=config), seed_candidates=64
        )
        targets = [
            chain.end_position(chain.random_configuration(rng)) for _ in range(10)
        ]
        plain_iters = sum(
            plain.solve(t, rng=np.random.default_rng(i)).iterations
            for i, t in enumerate(targets)
        )
        seeded_iters = sum(
            seeded.solve(t, rng=np.random.default_rng(i)).iterations
            for i, t in enumerate(targets)
        )
        assert seeded_iters <= plain_iters

    def test_seeding_cost_charged(self, rng):
        chain = paper_chain(12)
        seeded = SpeculativeRestartSolver(QuickIKSolver(chain), seed_candidates=32)
        target = chain.end_position(chain.random_configuration(rng))
        result = seeded.solve(target, rng=rng)
        # 1 initial + 64/iter + the 32 seeding evaluations.
        assert result.fk_evaluations == 1 + 64 * result.iterations + 32

    def test_explicit_q0_skips_seeding(self, rng):
        chain = paper_chain(12)
        seeded = SpeculativeRestartSolver(QuickIKSolver(chain), seed_candidates=32)
        q0 = chain.random_configuration(rng)
        result = seeded.solve(chain.end_position(q0), q0=q0)
        assert result.iterations == 0
        assert result.fk_evaluations == 1  # no seeding charge

    def test_name_and_chain(self):
        chain = paper_chain(12)
        seeded = SpeculativeRestartSolver(QuickIKSolver(chain))
        assert seeded.name == "JT-Speculation+seeded"
        assert seeded.chain is chain

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            SpeculativeRestartSolver(QuickIKSolver(paper_chain(12)), seed_candidates=0)
