"""Tests for the Buss step size (Eq. 8) and speculation schedules (Eq. 9)."""

import numpy as np
import pytest

from repro.core.alpha import (
    FALLBACK_ALPHA,
    SCHEDULE_NAMES,
    buss_alpha,
    extended_schedule,
    geometric_schedule,
    get_schedule,
    linear_schedule,
    single_schedule,
)


class TestBussAlpha:
    def test_matches_equation_8(self, rng):
        error = rng.normal(size=3)
        jjte = error + 0.1 * rng.normal(size=3)
        expected = float(error @ jjte) / float(jjte @ jjte)
        if expected > 0:
            assert np.isclose(buss_alpha(error, jjte), expected)

    def test_identity_case_gives_one(self):
        error = np.array([0.3, -0.2, 0.5])
        assert np.isclose(buss_alpha(error, error), 1.0)

    def test_zero_denominator_falls_back(self):
        assert buss_alpha(np.array([1.0, 0, 0]), np.zeros(3)) == FALLBACK_ALPHA

    def test_negative_alpha_falls_back(self):
        error = np.array([1.0, 0.0, 0.0])
        jjte = np.array([-1.0, 0.0, 0.0])  # e . JJ^T e < 0
        assert buss_alpha(error, jjte) == FALLBACK_ALPHA

    def test_linearised_optimality(self, rng):
        """Eq. 8 minimises ||e - alpha JJ^T e|| over alpha (the linearised
        post-step error)."""
        error = rng.normal(size=3)
        jjte = rng.normal(size=3)
        if float(error @ jjte) <= 0:
            jjte = -jjte
        alpha = buss_alpha(error, jjte)
        best = np.linalg.norm(error - alpha * jjte)
        for perturbed in (alpha * 0.9, alpha * 1.1):
            assert best <= np.linalg.norm(error - perturbed * jjte) + 1e-12


class TestLinearSchedule:
    def test_matches_equation_9(self):
        alphas = linear_schedule(2.0, 4)
        assert np.allclose(alphas, [0.5, 1.0, 1.5, 2.0])

    def test_last_candidate_is_alpha_base(self):
        assert linear_schedule(0.37, 64)[-1] == pytest.approx(0.37)

    def test_smallest_is_base_over_max(self):
        assert linear_schedule(1.0, 64)[0] == pytest.approx(1.0 / 64)

    def test_count_one_gives_base(self):
        assert np.allclose(linear_schedule(0.5, 1), [0.5])

    def test_monotone_increasing(self):
        alphas = linear_schedule(1.0, 32)
        assert np.all(np.diff(alphas) > 0)

    def test_nested_grids(self):
        """Eq. 9 with Max=16 is a subset of Max=64 (k/16 = 4k/64)."""
        small = linear_schedule(1.0, 16)
        large = linear_schedule(1.0, 64)
        assert np.allclose(small, large[3::4])

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            linear_schedule(1.0, 0)


class TestOtherSchedules:
    def test_geometric_tops_out_at_base(self):
        alphas = geometric_schedule(2.0, 8)
        assert alphas[-1] == pytest.approx(2.0)
        assert np.all(np.diff(alphas) > 0)

    def test_geometric_ratio_spacing(self):
        alphas = geometric_schedule(1.0, 5, ratio=0.5)
        assert np.allclose(alphas[:-1] / alphas[1:], 0.5)

    def test_geometric_invalid_ratio(self):
        with pytest.raises(ValueError):
            geometric_schedule(1.0, 4, ratio=1.5)

    def test_extended_reaches_twice_base(self):
        alphas = extended_schedule(1.0, 10)
        assert alphas[-1] == pytest.approx(2.0)

    def test_single_ignores_count(self):
        assert np.allclose(single_schedule(0.7, 64), [0.7])

    def test_all_schedules_positive_for_positive_base(self):
        for name in SCHEDULE_NAMES:
            alphas = get_schedule(name)(0.5, 16)
            assert np.all(alphas > 0)


class TestRegistry:
    def test_get_schedule_known(self):
        assert get_schedule("linear") is linear_schedule

    def test_get_schedule_unknown(self):
        with pytest.raises(KeyError):
            get_schedule("fibonacci")

    def test_names_sorted_and_complete(self):
        assert "linear" in SCHEDULE_NAMES
        assert tuple(sorted(SCHEDULE_NAMES)) == SCHEDULE_NAMES
