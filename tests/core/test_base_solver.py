"""Tests for the shared iterative driver loop."""

import numpy as np
import pytest

from repro.core.base import IterativeIKSolver
from repro.core.result import SolverConfig, StepOutcome
from repro.kinematics.robots import planar_chain


class NullSolver(IterativeIKSolver):
    """Solver that never moves — for exercising the driver's bookkeeping."""

    name = "null"

    def _step(self, q, position, target):
        return StepOutcome(q=q)


class TeleportSolver(IterativeIKSolver):
    """Solver that jumps straight to a stored answer on iteration 1."""

    name = "teleport"

    def __init__(self, chain, answer, config=None):
        super().__init__(chain, config)
        self.answer = answer

    def _step(self, q, position, target):
        return StepOutcome(q=self.answer.copy())


class TestDriverLoop:
    def test_zero_iterations_when_starting_at_target(self, planar3):
        q0 = np.array([0.1, 0.2, -0.3])
        target = planar3.end_position(q0)
        result = NullSolver(planar3).solve(target, q0=q0)
        assert result.converged
        assert result.iterations == 0
        assert result.fk_evaluations == 1

    def test_max_iterations_respected(self, planar3):
        config = SolverConfig(max_iterations=17)
        result = NullSolver(planar3, config).solve(
            np.array([0.9, 0.0, 0.0]), q0=np.zeros(3) + 0.5
        )
        assert not result.converged
        assert result.iterations == 17

    def test_history_recorded(self, planar3):
        config = SolverConfig(max_iterations=5)
        result = NullSolver(planar3, config).solve(
            np.array([0.9, 0.0, 0.0]), q0=np.full(3, 0.5)
        )
        assert result.error_history.shape == (6,)  # initial + 5 iterations
        assert np.all(result.error_history == result.error_history[0])

    def test_history_disabled(self, planar3):
        config = SolverConfig(max_iterations=5, record_history=False)
        result = NullSolver(planar3, config).solve(
            np.array([0.9, 0.0, 0.0]), q0=np.full(3, 0.5)
        )
        assert result.error_history.size == 0

    def test_teleport_converges_in_one_iteration(self, planar3):
        answer = np.array([0.3, -0.4, 0.2])
        target = planar3.end_position(answer)
        solver = TeleportSolver(planar3, answer)
        result = solver.solve(target, q0=np.array([1.0, 1.0, 1.0]))
        assert result.converged
        assert result.iterations == 1
        assert np.allclose(result.q, answer)

    def test_driver_counts_fk_when_step_does_not_report(self, planar3):
        answer = np.array([0.3, -0.4, 0.2])
        solver = TeleportSolver(planar3, answer, SolverConfig(max_iterations=3))
        result = solver.solve(planar3.end_position(answer), q0=np.ones(3))
        # initial FK + one per iteration (steps don't report positions).
        assert result.fk_evaluations == 1 + result.iterations

    def test_bad_target_shape_rejected(self, planar3):
        with pytest.raises(ValueError):
            NullSolver(planar3).solve(np.zeros(2))

    def test_bad_q0_shape_rejected(self, planar3):
        with pytest.raises(ValueError):
            NullSolver(planar3).solve(np.zeros(3), q0=np.zeros(5))

    def test_random_start_uses_rng_deterministically(self, planar3):
        target = np.array([0.9, 0.0, 0.0])
        solver = NullSolver(planar3, SolverConfig(max_iterations=1))
        a = solver.solve(target, rng=np.random.default_rng(5))
        b = solver.solve(target, rng=np.random.default_rng(5))
        assert np.allclose(a.q, b.q)

    def test_result_metadata(self, planar3):
        result = NullSolver(planar3, SolverConfig(max_iterations=1)).solve(
            np.array([0.9, 0.0, 0.0]), q0=np.full(3, 0.5)
        )
        assert result.solver == "null"
        assert result.dof == 3
        assert result.speculations == 1
        assert result.wall_time > 0.0

    def test_respect_limits_clamps_each_step(self):
        chain = planar_chain(2)

        class Escaper(IterativeIKSolver):
            name = "escaper"

            def _step(self, q, position, target):
                return StepOutcome(q=q + 100.0)

        config = SolverConfig(max_iterations=2, respect_limits=True)
        result = Escaper(chain, config).solve(
            np.array([0.9, 0.0, 0.0]), q0=np.zeros(2)
        )
        assert chain.within_limits(result.q)


class TestSolveBatch:
    def test_batch_returns_one_result_per_target(self, planar3):
        targets = np.array([[0.9, 0.0, 0.0], [0.0, 0.5, 0.0]])
        solver = NullSolver(planar3, SolverConfig(max_iterations=1))
        results = solver.solve_batch(targets, rng=np.random.default_rng(0))
        assert len(results) == 2

    def test_batch_rejects_bad_shape(self, planar3):
        with pytest.raises(ValueError):
            NullSolver(planar3).solve_batch(np.zeros((2, 4)))
