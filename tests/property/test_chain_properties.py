"""Property-based tests: kinematic-chain invariants on random geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinematics import transforms as tf
from repro.kinematics.jacobian import numerical_jacobian_position
from repro.kinematics.robots import random_chain

seeds = st.integers(min_value=0, max_value=2**31 - 1)
dofs = st.integers(min_value=1, max_value=12)


def _chain_and_q(seed, dof, prismatic=0.0):
    rng = np.random.default_rng(seed)
    chain = random_chain(dof, rng, prismatic_probability=prismatic)
    return chain, chain.random_configuration(rng)


@settings(max_examples=25)
@given(seed=seeds, dof=dofs)
def test_fk_is_rigid_transform(seed, dof):
    chain, q = _chain_and_q(seed, dof)
    assert tf.is_transform(chain.fk(q), tol=1e-7)


@settings(max_examples=25)
@given(seed=seeds, dof=dofs)
def test_end_position_within_total_reach(seed, dof):
    chain, q = _chain_and_q(seed, dof)
    assert np.linalg.norm(chain.end_position(q)) <= chain.total_reach() + 1e-9


@settings(max_examples=20)
@given(seed=seeds, dof=dofs)
def test_batch_fk_consistent_with_scalar(seed, dof):
    chain, _ = _chain_and_q(seed, dof)
    rng = np.random.default_rng(seed + 1)
    qs = np.stack([chain.random_configuration(rng) for _ in range(3)])
    batched = chain.end_positions_batch(qs)
    for i in range(3):
        assert np.allclose(batched[i], chain.end_position(qs[i]), atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, dof=st.integers(min_value=1, max_value=8))
def test_jacobian_matches_finite_differences(seed, dof):
    chain, q = _chain_and_q(seed, dof, prismatic=0.3)
    assert np.allclose(
        chain.jacobian_position(q), numerical_jacobian_position(chain, q), atol=1e-5
    )


@settings(max_examples=30, deadline=None)
@given(
    seed=seeds,
    dof=dofs,
    prismatic=st.sampled_from([0.0, 0.3, 1.0]),
)
def test_jacobian_matches_central_differences_to_1e6(seed, dof, prismatic):
    """Analytic Jacobian vs central finite differences, 1e-6 absolute.

    Randomized DH chains (random link lengths, twists, offsets; revolute,
    mixed and all-prismatic joints) at random configurations.  Central
    differences with ``eps=1e-6`` carry ~1e-12 truncation error and ~1e-10
    roundoff on these unit-reach chains, so 1e-6 isolates genuine analytic
    errors rather than differencing noise.
    """
    chain, q = _chain_and_q(seed, dof, prismatic=prismatic)
    analytic = chain.jacobian_position(q)
    reference = numerical_jacobian_position(chain, q, eps=1e-6)
    assert analytic.shape == (3, chain.dof)
    assert np.max(np.abs(analytic - reference)) < 1e-6


@settings(max_examples=20)
@given(seed=seeds, dof=dofs)
def test_link_frames_compose_incrementally(seed, dof):
    chain, q = _chain_and_q(seed, dof)
    frames = chain.link_frames(q)
    locals_ = chain.local_transforms(q)
    for i in range(dof):
        assert np.allclose(frames[i] @ locals_[i], frames[i + 1], atol=1e-10)


@settings(max_examples=20)
@given(seed=seeds, dof=dofs, scale=st.floats(min_value=0.1, max_value=5.0))
def test_fk_scales_with_uniform_link_scaling(seed, dof, scale):
    """Scaling every link length by s scales every FK position by s
    (revolute chains with pure-a links are scale-equivariant)."""
    from repro.kinematics.robots import hyper_redundant_chain

    chain = hyper_redundant_chain(dof, total_reach=1.0)
    scaled = hyper_redundant_chain(dof, total_reach=scale)
    q = chain.random_configuration(np.random.default_rng(seed))
    assert np.allclose(
        scaled.end_position(q), scale * chain.end_position(q), atol=1e-8 * max(1, scale)
    )


@settings(max_examples=20)
@given(seed=seeds, dof=dofs)
def test_float32_twin_agrees_within_tolerance(seed, dof):
    chain, q = _chain_and_q(seed, dof)
    chain32 = chain.astype(np.float32)
    delta = np.linalg.norm(
        chain.end_position(q) - chain32.end_position(q).astype(np.float64)
    )
    assert delta < 1e-4  # far below the paper's 1e-2 accuracy constraint
