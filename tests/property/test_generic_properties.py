"""Property-based tests for the generic chain and the URDF round-trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinematics import transforms as tf
from repro.kinematics.generic import GenericChain, GenericJoint
from repro.kinematics.io import chain_from_dict, chain_to_dict
from repro.kinematics.urdf import chain_to_urdf, load_urdf

seeds = st.integers(min_value=0, max_value=2**31 - 1)
dofs = st.integers(min_value=1, max_value=8)


def _random_generic_chain(seed: int, dof: int) -> GenericChain:
    rng = np.random.default_rng(seed)
    joints = []
    for i in range(dof):
        origin = tf.homogeneous(tf.random_rotation(rng), 0.3 * rng.normal(size=3))
        axis = rng.normal(size=3)
        while np.linalg.norm(axis) < 1e-6:
            axis = rng.normal(size=3)
        joint_type = "revolute" if rng.uniform() < 0.8 else "prismatic"
        from repro.kinematics.joint import JointLimits

        limits = (
            JointLimits(-np.pi, np.pi)
            if joint_type == "revolute"
            else JointLimits(0.0, 0.5)
        )
        joints.append(
            GenericJoint(
                origin=origin, axis=axis, joint_type=joint_type, limits=limits,
                name=f"j{i}",
            )
        )
    return GenericChain(joints)


@settings(max_examples=20)
@given(seed=seeds, dof=dofs)
def test_generic_fk_is_rigid(seed, dof):
    chain = _random_generic_chain(seed, dof)
    q = chain.random_configuration(np.random.default_rng(seed + 1))
    assert tf.is_transform(chain.fk(q), tol=1e-7)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, dof=dofs)
def test_generic_batch_matches_scalar(seed, dof):
    chain = _random_generic_chain(seed, dof)
    rng = np.random.default_rng(seed + 2)
    qs = np.stack([chain.random_configuration(rng) for _ in range(3)])
    batched = chain.end_positions_batch(qs)
    for i in range(3):
        assert np.allclose(batched[i], chain.end_position(qs[i]), atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, dof=dofs)
def test_generic_jacobian_matches_finite_differences(seed, dof):
    chain = _random_generic_chain(seed, dof)
    q = chain.random_configuration(np.random.default_rng(seed + 3))
    analytic = chain.jacobian_position(q)
    eps = 1e-7
    for i in range(dof):
        dq = np.zeros(dof)
        dq[i] = eps
        column = (chain.end_position(q + dq) - chain.end_position(q - dq)) / (
            2 * eps
        )
        assert np.allclose(analytic[:, i], column, atol=1e-5)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, dof=dofs)
def test_urdf_roundtrip_preserves_fk(seed, dof):
    chain = _random_generic_chain(seed, dof)
    rebuilt = load_urdf(chain_to_urdf(chain))
    q = chain.random_configuration(np.random.default_rng(seed + 4))
    assert np.allclose(
        chain.end_position(q), rebuilt.end_position(q), atol=1e-8
    )


@settings(max_examples=15, deadline=None)
@given(seed=seeds, dof=dofs)
def test_json_roundtrip_preserves_fk(seed, dof):
    chain = _random_generic_chain(seed, dof)
    rebuilt = chain_from_dict(chain_to_dict(chain))
    q = chain.random_configuration(np.random.default_rng(seed + 5))
    assert np.allclose(
        chain.end_position(q), rebuilt.end_position(q), atol=1e-12
    )
