"""Property-based tests: the vectorized kernel layer on random geometry.

Three invariant families, each over randomized DH chains (random link
lengths, twists, offsets; revolute, mixed and all-prismatic joints):

* **Differential agreement** — the vectorized kernels match the scalar
  oracle within 1e-12 for FK, end positions and Jacobians at random
  configurations (the property-sized twin of the conformance tier).
* **Prefix-cache consistency** — the per-configuration prefix-transform
  cache never changes an answer: interleaved queries at alternating
  configurations (hit, miss, re-hit) equal the answers of a cache-cold
  kernel, and ``invalidate()`` is always safe.
* **Cache invalidation** — mutating a chain parameter array in place is
  detected by the fingerprint guard on the cached path, so stale prefix
  frames are never served; ``refresh()`` re-snapshots the statics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinematics.kernels import make_kernels
from repro.kinematics.robots import random_chain

seeds = st.integers(min_value=0, max_value=2**31 - 1)
dofs = st.integers(min_value=1, max_value=16)
prismatics = st.sampled_from([0.0, 0.3, 1.0])

ATOL = 1e-12


def _twins(seed, dof, prismatic=0.0):
    rng = np.random.default_rng(seed)
    scalar = random_chain(dof, rng, prismatic_probability=prismatic)
    return scalar, scalar.with_kernel("vectorized"), rng


@settings(max_examples=30, deadline=None)
@given(seed=seeds, dof=dofs, prismatic=prismatics)
def test_vectorized_fk_matches_scalar_oracle(seed, dof, prismatic):
    scalar, vectorized, rng = _twins(seed, dof, prismatic)
    q = scalar.random_configuration(rng)
    assert np.allclose(vectorized.fk(q), scalar.fk(q), atol=ATOL, rtol=0.0)
    assert np.allclose(
        vectorized.end_position(q), scalar.end_position(q), atol=ATOL, rtol=0.0
    )


@settings(max_examples=30, deadline=None)
@given(seed=seeds, dof=dofs, prismatic=prismatics)
def test_vectorized_jacobian_matches_scalar_oracle(seed, dof, prismatic):
    scalar, vectorized, rng = _twins(seed, dof, prismatic)
    qs = np.stack([scalar.random_configuration(rng) for _ in range(3)])
    assert np.allclose(
        vectorized.jacobian_position(qs[0]),
        scalar.jacobian_position(qs[0]),
        atol=ATOL, rtol=0.0,
    )
    assert np.allclose(
        vectorized.jacobian_position_batch(qs),
        scalar.jacobian_position_batch(qs),
        atol=ATOL, rtol=0.0,
    )


@settings(max_examples=25, deadline=None)
@given(seed=seeds, dof=dofs, prismatic=prismatics)
def test_prefix_cache_consistent_across_q_updates(seed, dof, prismatic):
    """Interleaved queries (cache hit / miss / re-hit) never change answers.

    The cached kernel sees q1, q1 (hit), q2 (evict), q1 (miss again); every
    answer must be bit-identical to a cache-cold kernel evaluating the same
    configuration once.
    """
    scalar, vectorized, rng = _twins(seed, dof, prismatic)
    q1 = scalar.random_configuration(rng)
    q2 = scalar.random_configuration(rng)

    def cold(q):
        return scalar.with_kernel("vectorized").jacobian_position(q)

    first = vectorized.jacobian_position(q1)
    assert np.array_equal(first, cold(q1))
    # Same q again: served from the prefix cache, bit-identical.
    assert np.array_equal(vectorized.jacobian_position(q1), first)
    # The end position of the cached configuration shares the same frames.
    assert np.array_equal(
        vectorized.end_position(q1),
        scalar.with_kernel("vectorized").end_position(q1),
    )
    # New configuration evicts; then the old one is recomputed from scratch.
    assert np.array_equal(vectorized.jacobian_position(q2), cold(q2))
    assert np.array_equal(vectorized.jacobian_position(q1), first)
    # Explicit invalidation is always safe.
    vectorized.kernels.invalidate()
    assert np.array_equal(vectorized.jacobian_position(q1), first)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, dof=dofs)
def test_fingerprint_detects_inplace_parameter_mutation(seed, dof):
    """White-box: mutating chain parameters in place must not serve stale
    cached prefix frames — the fingerprint guard drops them."""
    scalar, vectorized, rng = _twins(seed, dof)
    q = scalar.random_configuration(rng)

    stale = vectorized.jacobian_position(q)  # populates the prefix cache
    # Mutate the underlying joint-parameter buffer behind the kernel's back.
    vectorized._theta_offset += 0.125

    fresh = vectorized.jacobian_position(q)
    # ``with_kernel`` twins rebuild their arrays from the (unmutated) joint
    # list, so the oracle must be a scalar kernel on this very instance —
    # the scalar loops read the parameter arrays at call time.
    oracle = make_kernels(vectorized, "scalar").jacobian_position(q)
    assert np.allclose(fresh, oracle, atol=ATOL, rtol=0.0)
    # The mutation genuinely moved the Jacobian (guards against a vacuous
    # pass where the stale and fresh answers coincide).
    if not np.allclose(stale, oracle, atol=1e-6):
        assert not np.array_equal(fresh, stale)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, dof=dofs)
def test_refresh_resnapshots_statics_after_mutation(seed, dof):
    """``refresh()`` re-snapshots constants, so post-mutation answers match
    a kernel built fresh on the mutated chain — even at a new q (the
    uncached path, which the fingerprint guard does not cover)."""
    scalar, vectorized, rng = _twins(seed, dof)
    q_new = scalar.random_configuration(rng)

    vectorized._const[:, :3, 3] *= 1.5  # rescale link translations in place
    vectorized.kernels.refresh()

    rebuilt = make_kernels(vectorized, "vectorized")
    assert np.array_equal(
        vectorized.jacobian_position(q_new), rebuilt.jacobian_position(q_new)
    )
    assert np.array_equal(vectorized.fk(q_new), rebuilt.fk(q_new))
