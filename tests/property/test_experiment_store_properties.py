"""Property tests: cell-key codec and store round-trips hold for any input.

Two invariants the experiment subsystem leans on everywhere:

* a :class:`ScenarioSpec` survives ``cell_key()`` → ``from_cell_key()``
  losslessly, for *any* valid spec (the store indexes on these keys, so a
  lossy codec would silently merge or split histories);
* finite metric values survive the SQLite store bit-identically (the
  regression gate compares floats across runs, so storage rounding would
  manufacture or mask regressions).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ResultStore, ScenarioSpec, SweepSpec

ROBOTS = ("planar-3dof", "planar-4dof", "puma560", "dadu-6dof", "dadu-12dof")
SOLVERS = ("CCD", "JT-DLS", "JT-Speculation")
KERNELS = (None, "scalar", "vectorized", "vectorized:float32")
WORKERS = (None, 1, 2, 4)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True
).filter(lambda v: not (v == 0.0 and math.copysign(1.0, v) < 0))


@st.composite
def scenarios(draw):
    robot = draw(st.sampled_from(ROBOTS))
    workloads = ["batch", "serve"]
    if robot.startswith("dadu-"):
        workloads.append("suite")
    return ScenarioSpec(
        robot=robot,
        solver=draw(st.sampled_from(SOLVERS)),
        kernel=draw(st.sampled_from(KERNELS)),
        workers=draw(st.sampled_from(WORKERS)),
        workload=draw(st.sampled_from(workloads)),
        targets=draw(st.integers(min_value=1, max_value=500)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        tolerance=draw(st.one_of(
            st.none(),
            st.floats(min_value=1e-12, max_value=1.0, allow_nan=False),
        )),
        max_iterations=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=100_000)
        )),
    )


@st.composite
def sweeps(draw):
    return SweepSpec(
        name=draw(st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz-0123456789",
            min_size=1, max_size=20,
        )),
        robots=tuple(draw(st.lists(
            st.sampled_from(ROBOTS), min_size=1, max_size=3, unique=True
        ))),
        solvers=tuple(draw(st.lists(
            st.sampled_from(SOLVERS), min_size=1, max_size=3, unique=True
        ))),
        kernels=tuple(draw(st.lists(
            st.sampled_from(KERNELS), min_size=1, max_size=2, unique=True
        ))),
        workers=tuple(draw(st.lists(
            st.sampled_from(WORKERS), min_size=1, max_size=2, unique=True
        ))),
        workloads=tuple(draw(st.lists(
            st.sampled_from(("batch", "serve")),
            min_size=1, max_size=2, unique=True,
        ))),
        targets=draw(st.integers(min_value=1, max_value=100)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


@settings(max_examples=100, deadline=None)
@given(scenario=scenarios())
def test_cell_key_round_trips_losslessly(scenario):
    decoded = ScenarioSpec.from_cell_key(scenario.cell_key())
    assert decoded == scenario
    # And the key itself is a fixed point (canonical form).
    assert decoded.cell_key() == scenario.cell_key()


@settings(max_examples=50, deadline=None)
@given(spec=sweeps())
def test_sweep_json_and_keys_round_trip(spec):
    again = SweepSpec.from_json(spec.to_json())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    keys = spec.cell_keys()
    assert len(set(keys)) == len(keys)
    for key, scenario in zip(keys, spec.expand()):
        assert ScenarioSpec.from_cell_key(key) == scenario


@settings(max_examples=50, deadline=None)
@given(spec=sweeps())
def test_sweep_keys_survive_the_store(spec):
    with ResultStore(":memory:") as store:
        run_id = store.create_run(spec.name, fingerprint=spec.fingerprint())
        store.ensure_cells(run_id, [(key, None) for key in spec.cell_keys()])
        stored = set(store.cell_statuses(run_id))
        assert stored == set(spec.cell_keys())
        for key in stored:
            assert ScenarioSpec.from_cell_key(key).cell_key() == key


@settings(max_examples=100, deadline=None)
@given(metrics=st.dictionaries(
    st.text(min_size=1, max_size=30), finite_floats,
    min_size=1, max_size=10,
))
def test_metrics_round_trip_bit_identically(metrics):
    with ResultStore(":memory:") as store:
        run_id = store.create_run("prop")
        store.ensure_cells(run_id, [("cell", None)])
        store.record_metrics(run_id, "cell", metrics)
        stored = store.metrics_for_cell(run_id, "cell")
        assert set(stored) == set(metrics)
        for name, value in metrics.items():
            assert stored[name].hex() == float(value).hex()
