"""Property-based tests: SO(3)/SE(3) group structure."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinematics import transforms as tf

angles = st.floats(
    min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False
)
unit_axis = st.tuples(
    st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)
).filter(lambda v: 0.1 < math.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2) <= 2.0)
coords = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


@given(angle=angles)
def test_rotations_are_orthonormal(angle):
    for rot in (tf.rot_x, tf.rot_y, tf.rot_z):
        assert tf.is_transform(rot(angle), tol=1e-9)


@given(angle=angles)
def test_rotation_preserves_norm(angle):
    point = np.array([0.3, -0.7, 0.2])
    for rot in (tf.rot_x, tf.rot_y, tf.rot_z):
        rotated = tf.transform_point(rot(angle), point)
        assert math.isclose(
            np.linalg.norm(rotated), np.linalg.norm(point), rel_tol=1e-12
        )


@given(a=angles, b=angles)
def test_same_axis_rotations_commute_and_add(a, b):
    assert np.allclose(tf.rot_z(a) @ tf.rot_z(b), tf.rot_z(a + b), atol=1e-9)


@given(axis=unit_axis, angle=st.floats(min_value=-3.1, max_value=3.1))
def test_axis_angle_inverse_is_negative_angle(axis, angle):
    forward = tf.axis_angle_to_rotation(np.array(axis), angle)
    backward = tf.axis_angle_to_rotation(np.array(axis), -angle)
    assert np.allclose(forward @ backward, np.eye(3), atol=1e-9)


@given(x=coords, y=coords, z=coords, angle=angles)
def test_invert_transform_is_group_inverse(x, y, z, angle):
    transform = tf.trans(x, y, z) @ tf.rot_y(angle)
    inverse = tf.invert_transform(transform)
    assert np.allclose(transform @ inverse, np.eye(4), atol=1e-9)
    assert np.allclose(inverse @ transform, np.eye(4), atol=1e-9)


@given(x=coords, y=coords, z=coords, angle=angles, px=coords, py=coords, pz=coords)
def test_transform_point_matches_homogeneous_multiply(x, y, z, angle, px, py, pz):
    transform = tf.trans(x, y, z) @ tf.rot_x(angle)
    point = np.array([px, py, pz])
    homogeneous = transform @ np.append(point, 1.0)
    assert np.allclose(tf.transform_point(transform, point), homogeneous[:3], atol=1e-9)


@settings(max_examples=30)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_rotation_always_valid(seed):
    rotation = tf.random_rotation(np.random.default_rng(seed))
    assert tf.is_rotation(rotation, tol=1e-9)


@settings(max_examples=30)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_axis_angle_roundtrip_random_rotations(seed):
    rotation = tf.random_rotation(np.random.default_rng(seed))
    axis, angle = tf.rotation_to_axis_angle(rotation)
    assert np.allclose(
        tf.axis_angle_to_rotation(axis, angle), rotation, atol=1e-6
    )


@given(roll=angles, pitch=st.floats(-1.5, 1.5), yaw=angles)
def test_rpy_rotation_is_valid(roll, pitch, yaw):
    assert tf.is_rotation(tf.rpy_to_rotation(roll, pitch, yaw), tol=1e-9)
