"""Property-based tests: solver invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha import buss_alpha, get_schedule, linear_schedule
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.jacobian_transpose import JacobianTransposeSolver

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(
    base=st.floats(min_value=1e-6, max_value=1e3),
    count=st.integers(min_value=1, max_value=256),
)
def test_linear_schedule_bounds(base, count):
    """Eq. 9 candidates always lie in (0, alpha_base]."""
    alphas = linear_schedule(base, count)
    assert alphas.shape == (count,)
    assert np.all(alphas > 0)
    assert np.all(alphas <= base * (1 + 1e-12))
    assert alphas[-1] == base


@given(
    name=st.sampled_from(["linear", "geometric"]),
    base=st.floats(min_value=1e-6, max_value=1e3),
    count=st.integers(min_value=2, max_value=128),
)
def test_schedules_monotone_and_bounded(name, base, count):
    alphas = get_schedule(name)(base, count)
    assert np.all(np.diff(alphas) > 0)
    assert alphas[-1] <= base * (1 + 1e-12)


@given(
    ex=st.floats(-10, 10), ey=st.floats(-10, 10), ez=st.floats(-10, 10),
    jx=st.floats(-10, 10), jy=st.floats(-10, 10), jz=st.floats(-10, 10),
)
def test_buss_alpha_always_positive_finite(ex, ey, ez, jx, jy, jz):
    alpha = buss_alpha(np.array([ex, ey, ez]), np.array([jx, jy, jz]))
    assert np.isfinite(alpha)
    assert alpha > 0.0


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_quick_ik_error_history_never_increases(seed):
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=500))
    result = solver.solve(target, rng=rng)
    assert np.all(np.diff(result.error_history) <= 1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_quick_ik_converged_solution_verifies(seed):
    """Whenever the solver reports convergence, independently re-evaluating
    FK at the returned q must satisfy the accuracy constraint."""
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    config = SolverConfig(max_iterations=500)
    result = QuickIKSolver(chain, config=config).solve(target, rng=rng)
    if result.converged:
        error = np.linalg.norm(chain.end_position(result.q) - target)
        assert error < config.tolerance * (1 + 1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=seeds, specs=st.sampled_from([1, 4, 16, 64]))
def test_quick_ik_fk_accounting_invariant(seed, specs):
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    solver = QuickIKSolver(chain, speculations=specs, config=SolverConfig(max_iterations=300))
    result = solver.solve(target, rng=rng)
    assert result.fk_evaluations == 1 + specs * result.iterations
    assert result.work == specs * result.iterations


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_jt_serial_error_eventually_below_start(seed):
    """The stable constant gain must make net progress from any restart."""
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    solver = JacobianTransposeSolver(chain, config=SolverConfig(max_iterations=300))
    result = solver.solve(target, rng=rng)
    assert result.error_history[-1] < result.error_history[0]
