"""Property-based tests: mirror-descent IK box invariance.

The mdik family's defining property is structural, not a clamp: iterates
live in the mirror (logit) domain, so mapping back through the sigmoid
puts every boxed joint strictly inside its limits *by construction* —
even with ``respect_limits=False`` (the driver never clamps for it).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.mdik import MirrorDescentSolver

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, step_scale=st.floats(min_value=0.1, max_value=4.0))
def test_iterates_never_leave_joint_limit_boxes(seed, step_scale):
    # Drive the raw step rule (no driver, no clamping) from a random
    # in-box seed toward a random target: every intermediate iterate must
    # respect the limits by construction.
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    solver = MirrorDescentSolver(
        chain,
        config=SolverConfig(max_iterations=50, respect_limits=False),
        step_scale=step_scale,
    )
    q = chain.random_configuration(rng)
    for _ in range(50):
        q = solver._step(q, chain.end_position(q), target).q
        assert np.all(np.isfinite(q))
        assert chain.within_limits(q)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_boundary_seeds_recover(seed):
    # logit(0)/logit(1) are infinite; the ratio clip must keep a seed ON
    # the limit surface finite and pull it strictly inside.
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    solver = MirrorDescentSolver(
        chain, config=SolverConfig(max_iterations=50)
    )
    corner = np.where(
        rng.random(chain.dof) < 0.5, chain.lower_limits, chain.upper_limits
    )
    q = solver._step(corner, chain.end_position(corner), target).q
    assert np.all(np.isfinite(q))
    assert chain.within_limits(q)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_full_solve_path_stays_in_box(seed):
    # End-to-end through the shared driver with history recording on:
    # the returned q respects the limits without the driver's clamp.
    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    solver = MirrorDescentSolver(
        chain,
        config=SolverConfig(
            max_iterations=300, respect_limits=False, tolerance=1e-2
        ),
    )
    result = solver.solve(target, rng=rng)
    assert np.all(np.isfinite(result.q))
    assert chain.within_limits(result.q)
