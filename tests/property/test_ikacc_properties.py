"""Property-based tests: accelerator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ikacc.config import IKAccConfig
from repro.ikacc.power import IKAccPowerModel
from repro.ikacc.scheduler import ParallelSearchScheduler


@given(
    ssus=st.integers(min_value=1, max_value=256),
    specs=st.integers(min_value=1, max_value=512),
)
def test_scheduler_covers_every_speculation_once(ssus, specs):
    config = IKAccConfig(n_ssus=ssus, speculations=specs)
    scheduler = ParallelSearchScheduler(config)
    scheduler.validate()
    seen = [k for wave in scheduler.waves() for k in wave.speculation_indices]
    assert seen == list(range(1, specs + 1))


@given(
    ssus=st.integers(min_value=1, max_value=256),
    specs=st.integers(min_value=1, max_value=512),
)
def test_wave_count_is_ceiling_division(ssus, specs):
    config = IKAccConfig(n_ssus=ssus, speculations=specs)
    assert config.waves_per_iteration == (specs + ssus - 1) // ssus


@given(
    ssus=st.integers(min_value=1, max_value=256),
    specs=st.integers(min_value=1, max_value=512),
)
def test_no_wave_exceeds_ssu_count(ssus, specs):
    scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=ssus, speculations=specs))
    assert all(w.occupancy <= ssus for w in scheduler.waves())


@given(
    ssus=st.integers(min_value=1, max_value=256),
    specs=st.integers(min_value=1, max_value=512),
)
def test_utilisation_in_unit_interval(ssus, specs):
    scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=ssus, speculations=specs))
    utilisation = scheduler.utilisation()
    assert 0.0 < utilisation <= 1.0
    # Full utilisation iff the SSU count divides the speculation count.
    assert (utilisation == 1.0) == (specs % ssus == 0)


@settings(max_examples=30)
@given(ssus=st.integers(min_value=1, max_value=128))
def test_area_monotone_in_ssu_count(ssus):
    smaller = IKAccPowerModel(IKAccConfig(n_ssus=ssus)).area_mm2()
    larger = IKAccPowerModel(IKAccConfig(n_ssus=ssus + 1)).area_mm2()
    assert larger > smaller


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    ssus=st.sampled_from([8, 32, 64]),
)
def test_ssu_count_never_changes_the_answer(seed, ssus):
    """Hardware width is a pure scheduling choice: the solution trajectory
    must be identical for any SSU count (same speculations)."""
    from repro.ikacc.accelerator import IKAccSimulator
    from repro.kinematics.robots import paper_chain

    chain = paper_chain(12)
    rng = np.random.default_rng(seed)
    target = chain.end_position(chain.random_configuration(rng))
    reference = IKAccSimulator(chain, config=IKAccConfig(n_ssus=32)).solve(
        target, rng=np.random.default_rng(seed)
    )
    other = IKAccSimulator(chain, config=IKAccConfig(n_ssus=ssus)).solve(
        target, rng=np.random.default_rng(seed)
    )
    assert other.iterations == reference.iterations
    assert np.allclose(other.q, reference.q, atol=1e-6)
