"""Property tier: the ActiveSet gather/scatter/compact round-trip.

The compacted lock-step loop maintains dense survivor blocks across
iterations instead of fancy-indexing the full arrays every step.  The
invariant that makes this safe is purely index bookkeeping, so it is
property-tested directly against a naive reference that *does* gather and
scatter the full arrays on every simulated iteration:

* the maintained block always equals ``full[indices]`` (row alignment);
* a retired row's final value lands at its home position exactly once;
* live rows never leak into the full array before retirement flush.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.batched import ActiveSet

seeds = st.integers(min_value=0, max_value=2**31 - 1)
sizes = st.integers(min_value=1, max_value=24)
rounds = st.integers(min_value=1, max_value=8)


def _mutate(block: np.ndarray, step: int) -> np.ndarray:
    # A deterministic, value-dependent update standing in for one lock-step
    # iteration's sweep over the dense block.
    return block * 0.5 + step


@given(seed=seeds, m=sizes, n_rounds=rounds)
@settings(max_examples=30, deadline=None)
def test_gather_scatter_compact_matches_naive_reference(seed, m, n_rounds):
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((m, 3))
    naive_full = full.copy()

    active = ActiveSet(np.arange(m))
    block = active.gather(full)[0]
    naive_idx = np.arange(m)

    for step in range(n_rounds):
        if active.size == 0:
            break
        # Maintained-block path (what the engine does).
        block = _mutate(block, step)
        keep = rng.random(active.size) < 0.6
        dead = ~keep
        if dead.any():
            active.scatter(dead, ((block, full),))
            (block,) = active.compact(keep, block)

        # Naive reference: gather fresh, mutate, scatter everything back.
        nb = naive_full[naive_idx]
        nb = _mutate(nb, step)
        naive_full[naive_idx] = nb
        naive_idx = naive_idx[keep]

        # Alignment invariant: the maintained block is exactly the live
        # rows' current state, and the live index sets agree.
        assert np.array_equal(active.indices, naive_idx)
        assert np.array_equal(block, naive_full[naive_idx])

    # Final flush (iteration budget exhausted with live rows).
    if active.size:
        active.scatter(np.ones(active.size, dtype=bool), ((block, full),))
    assert np.array_equal(full, naive_full)


@given(seed=seeds, m=sizes)
@settings(max_examples=30, deadline=None)
def test_scatter_writes_masked_rows_only(seed, m):
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((m, 4))
    before = full.copy()
    active = ActiveSet(np.arange(m))
    block = rng.standard_normal((m, 4))
    mask = rng.random(m) < 0.5

    active.scatter(mask, ((block, full),))

    assert np.array_equal(full[mask], block[mask])
    assert np.array_equal(full[~mask], before[~mask])


@given(seed=seeds, m=sizes)
@settings(max_examples=30, deadline=None)
def test_compact_drops_rows_from_index_and_blocks_in_step(seed, m):
    rng = np.random.default_rng(seed)
    indices = np.flatnonzero(rng.random(2 * m) < 0.7)
    active = ActiveSet(indices)
    a = rng.standard_normal((active.size, 2))
    b = rng.standard_normal(active.size)
    keep = rng.random(active.size) < 0.5

    ca, cb = active.compact(keep, a, b)

    assert np.array_equal(active.indices, indices[keep])
    assert np.array_equal(ca, a[keep])
    assert np.array_equal(cb, b[keep])
    assert active.size == int(keep.sum())
