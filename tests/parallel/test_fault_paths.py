"""ShardError / ParallelExecutionError coverage under injected worker faults.

Each fault kind must surface as the documented ``ShardError.kind``:
in-worker exceptions as ``"exception"``, hung workers as ``"timeout"``,
and results that cannot cross the pipe as ``"pool"``.  The SIGKILL fault
(also ``"pool"``, via BrokenProcessPool) lives in the chaos tier.
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.parallel import ParallelExecutionError, ShardedBatchSolver
from repro.resilience import FlakySolver, TargetTrigger
from repro.solvers.registry import make_solver

CHAIN = paper_chain(6)
CONFIG = SolverConfig(max_iterations=300, record_history=False)


def _targets(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [CHAIN.end_position(CHAIN.random_configuration(rng)) for _ in range(n)]
    )


def _flaky(targets, poison, fault, naptime=30.0):
    inner = make_solver("JT-Speculation", CHAIN, config=CONFIG)
    return FlakySolver(
        inner, TargetTrigger(targets[poison]), fault=fault, naptime=naptime
    )


class TestCrash:
    def test_pool_crash_surfaces_as_exception_kind(self):
        targets = _targets(4)
        solver = _flaky(targets, [0], fault="crash")
        sharded = ShardedBatchSolver(solver, workers=2, timeout=60)
        with pytest.raises(ParallelExecutionError) as excinfo:
            sharded.solve_batch(targets, rng=np.random.default_rng(1))
        errors = excinfo.value.shard_errors
        assert len(errors) == 1
        assert errors[0].kind == "exception"
        assert errors[0].exc_type == "RuntimeError"
        assert "injected fault" in errors[0].message
        # the failing shard's problem span is reported for replay
        assert (errors[0].start, errors[0].stop) == (0, 2)

    def test_inline_crash_same_shape(self):
        # workers=1 runs the shard code inline; the error record matches.
        targets = _targets(4)
        solver = _flaky(targets, [3], fault="crash")
        sharded = ShardedBatchSolver(solver, workers=1)
        with pytest.raises(ParallelExecutionError) as excinfo:
            sharded.solve_batch(targets, rng=np.random.default_rng(1))
        assert excinfo.value.shard_errors[0].kind == "exception"


class TestHang:
    def test_hung_worker_surfaces_as_timeout_kind(self):
        targets = _targets(4)
        solver = _flaky(targets, [0], fault="hang", naptime=30.0)
        sharded = ShardedBatchSolver(solver, workers=2, timeout=1.0)
        with pytest.raises(ParallelExecutionError) as excinfo:
            sharded.solve_batch(targets, rng=np.random.default_rng(1))
        kinds = {e.kind for e in excinfo.value.shard_errors}
        assert "timeout" in kinds


class TestUnpicklable:
    def test_unpicklable_result_surfaces_as_pool_kind(self):
        targets = _targets(4)
        solver = _flaky(targets, [0], fault="unpicklable")
        sharded = ShardedBatchSolver(solver, workers=2, timeout=60)
        with pytest.raises(ParallelExecutionError) as excinfo:
            sharded.solve_batch(targets, rng=np.random.default_rng(1))
        errors = excinfo.value.shard_errors
        assert len(errors) == 1
        assert errors[0].kind == "pool"

    def test_skip_mode_absorbs_unpicklable(self):
        targets = _targets(4)
        solver = _flaky(targets, [0], fault="unpicklable")
        sharded = ShardedBatchSolver(
            solver, workers=2, timeout=60, on_error="skip"
        )
        batch = sharded.solve_batch(targets, rng=np.random.default_rng(1))
        assert len(batch) == 4
        assert batch[0].status == "pool"
        assert batch.failures.by_stage() == {"worker": 2}


class TestSkipMode:
    def test_crash_shard_becomes_placeholders(self):
        targets = _targets(6)
        solver = _flaky(targets, [1], fault="crash")
        sharded = ShardedBatchSolver(
            solver, workers=3, timeout=60, on_error="skip"
        )
        batch = sharded.solve_batch(targets, rng=np.random.default_rng(1))
        assert len(batch) == 6
        # shard [0:2) failed; both problems are typed placeholders
        assert batch[0].status == "exception"
        assert batch[1].status == "exception"
        # problem order is preserved for the healthy rest
        for i in range(2, 6):
            assert np.allclose(batch[i].target, targets[i])
            assert batch[i].converged
        assert batch.failures.indices == [0, 1]
        assert all(not r.recovered for r in batch.failures)
