"""Unit tests for the process-pool layer: wiring, failures, telemetry."""

import time

import numpy as np
import pytest

from repro import api
from repro.core.result import BatchResult, SolverConfig
from repro.kinematics.robots import paper_chain
from repro.parallel import (
    ParallelExecutionError,
    ShardedBatchSolver,
    default_workers,
    solve_batch_sharded,
)
from repro.solvers.registry import make_batch_solver
from repro.telemetry import MetricsRegistry, SummaryTracer

CONFIG = SolverConfig(max_iterations=200, record_history=False)


def _targets(chain, n, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [chain.end_position(chain.random_configuration(rng)) for _ in range(n)]
    )


class _ExplodingSolver:
    """Picklable solver stub whose scalar path always raises."""

    name = "exploding"

    def __init__(self, chain):
        self.chain = chain
        self.config = SolverConfig()

    def solve(self, target, q0=None, rng=None, tracer=None):
        raise RuntimeError("boom on purpose")


class _SleepySolver:
    """Picklable solver stub that sleeps long enough to trip timeouts."""

    name = "sleepy"

    def __init__(self, chain, naptime=5.0):
        self.chain = chain
        self.config = SolverConfig()
        self.naptime = naptime

    def solve(self, target, q0=None, rng=None, tracer=None):
        time.sleep(self.naptime)  # pragma: no cover - killed by the pool
        raise AssertionError("should have been terminated")


class TestWiring:
    def test_wrapper_exposes_engine_surface(self):
        chain = paper_chain(12)
        engine = make_batch_solver("JT-Speculation", chain, config=CONFIG)
        sharded = ShardedBatchSolver(engine, workers=2)
        assert sharded.name == engine.name
        assert sharded.chain is chain
        assert sharded.config is CONFIG

    def test_registry_workers_kwarg_wraps(self):
        chain = paper_chain(12)
        sharded = make_batch_solver(
            "JT-Serial", chain, config=CONFIG, workers=3, timeout=60.0
        )
        assert isinstance(sharded, ShardedBatchSolver)
        assert sharded.workers == 3
        assert sharded.timeout == 60.0

    def test_registry_without_workers_unchanged(self):
        chain = paper_chain(12)
        engine = make_batch_solver("JT-Serial", chain, config=CONFIG)
        assert not isinstance(engine, ShardedBatchSolver)

    def test_api_returns_batch_result(self):
        chain = paper_chain(12)
        batch = api.solve_batch(
            chain, _targets(chain, 5), workers=2, seed=1, max_iterations=200
        )
        assert isinstance(batch, BatchResult)
        assert len(batch) == 5

    def test_validation(self):
        chain = paper_chain(12)
        engine = make_batch_solver("JT-Speculation", chain, config=CONFIG)
        with pytest.raises(ValueError):
            ShardedBatchSolver(engine, workers=0)
        with pytest.raises(ValueError):
            ShardedBatchSolver(engine, workers=2, timeout=0.0)
        with pytest.raises(ValueError):
            ShardedBatchSolver(engine, workers=2).solve_batch(np.zeros((3, 2)))

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestFailureModel:
    def test_worker_exception_surfaces_structured(self):
        chain = paper_chain(12)
        with pytest.raises(ParallelExecutionError) as excinfo:
            solve_batch_sharded(
                _ExplodingSolver(chain), _targets(chain, 6), workers=2
            )
        errors = excinfo.value.shard_errors
        assert len(errors) == 2
        assert all(e.kind == "exception" for e in errors)
        assert all(e.exc_type == "RuntimeError" for e in errors)
        assert all("boom on purpose" in e.message for e in errors)
        # Shards identify their problem spans for replay/requeue.
        assert {(e.start, e.stop) for e in errors} == {(0, 3), (3, 6)}
        assert "shard 0" in str(excinfo.value)

    def test_inline_worker_exception_also_structured(self):
        chain = paper_chain(12)
        with pytest.raises(ParallelExecutionError) as excinfo:
            solve_batch_sharded(
                _ExplodingSolver(chain), _targets(chain, 4), workers=1
            )
        assert [e.kind for e in excinfo.value.shard_errors] == ["exception"]

    def test_timeout_reports_unfinished_shards(self):
        chain = paper_chain(12)
        start = time.perf_counter()
        with pytest.raises(ParallelExecutionError) as excinfo:
            solve_batch_sharded(
                _SleepySolver(chain, naptime=30.0),
                _targets(chain, 4),
                workers=2,
                timeout=1.0,
            )
        elapsed = time.perf_counter() - start
        assert elapsed < 15.0  # pool was reaped, not joined to completion
        errors = excinfo.value.shard_errors
        assert errors and all(e.kind == "timeout" for e in errors)


class TestTelemetryMerge:
    def test_counters_and_phases_reach_parent_tracer(self):
        chain = paper_chain(12)
        targets = _targets(chain, 6)
        engine = make_batch_solver("JT-Speculation", chain, config=CONFIG)

        reference = SummaryTracer()
        engine.solve_batch(
            targets, rng=np.random.default_rng(5), tracer=reference
        )
        sharded = SummaryTracer()
        ShardedBatchSolver(engine, workers=2).solve_batch(
            targets, rng=np.random.default_rng(5), tracer=sharded
        )
        # Work counters are exact across execution layouts; phase timings
        # are wall-clock and only required to be present.
        # ``compaction_savings`` is excluded: it measures skipped rows
        # relative to each batch's own naive grid, so it is layout-dependent
        # by construction (each shard runs its own iteration loop).
        def work(counters):
            return {
                k: v for k, v in counters.items() if k != "compaction_savings"
            }

        assert work(sharded.counters) == work(reference.counters)
        assert set(sharded.phase_seconds) == set(reference.phase_seconds)

    def test_merged_summary_attached_to_batch(self):
        chain = paper_chain(12)
        engine = make_batch_solver("JT-Speculation", chain, config=CONFIG)
        batch = ShardedBatchSolver(engine, workers=2).solve_batch(
            _targets(chain, 6), rng=np.random.default_rng(5),
            tracer=SummaryTracer(),
        )
        assert batch.telemetry is not None
        assert batch.telemetry["counters"]["fk_evaluations"] > 0
        # One lock-step sub-batch ran per shard.
        assert batch.telemetry["solves"] == 2

    def test_metrics_registry_sees_one_merged_solve(self):
        chain = paper_chain(12)
        engine = make_batch_solver("JT-Speculation", chain, config=CONFIG)
        registry = MetricsRegistry()
        ShardedBatchSolver(engine, workers=2).solve_batch(
            _targets(chain, 6), rng=np.random.default_rng(5), tracer=registry
        )
        report = registry.report()
        entry = report["solvers"]["JT-Speculation-batched"]
        assert entry["solves"] == 1  # the merged batch, not per shard
        assert report["counters"]["fk_evaluations"] > 0

    def test_untraced_run_attaches_no_telemetry(self):
        chain = paper_chain(12)
        engine = make_batch_solver("JT-Speculation", chain, config=CONFIG)
        batch = ShardedBatchSolver(engine, workers=2).solve_batch(
            _targets(chain, 4), rng=np.random.default_rng(5)
        )
        assert batch.telemetry is None
