"""Unit tests for the deterministic partition/seeding helpers."""

import numpy as np
import pytest

from repro.kinematics.robots import paper_chain
from repro.parallel import resolve_batch_q0, shard_slices, spawn_problem_seeds


class TestShardSlices:
    def test_covers_everything_in_order(self):
        for m in (1, 2, 7, 100, 1001):
            for shards in (1, 2, 3, 8, 64):
                slices = shard_slices(m, shards)
                flat = [i for lo, hi in slices for i in range(lo, hi)]
                assert flat == list(range(m))

    def test_balanced_within_one(self):
        slices = shard_slices(10, 4)
        sizes = [hi - lo for lo, hi in slices]
        assert sizes == [3, 3, 2, 2]

    def test_never_empty_shards(self):
        assert shard_slices(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_empty_batch(self):
        assert shard_slices(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_slices(5, 0)
        with pytest.raises(ValueError):
            shard_slices(-1, 2)


class TestResolveBatchQ0:
    def test_draws_match_engine_order(self):
        """Parent-side drawing consumes the stream exactly like the engines."""
        chain = paper_chain(12)
        a = resolve_batch_q0(chain, 5, None, np.random.default_rng(3))
        rng = np.random.default_rng(3)
        b = np.stack([chain.random_configuration(rng) for _ in range(5)])
        assert np.array_equal(a, b)

    def test_shared_q0_broadcasts(self):
        chain = paper_chain(12)
        q0 = np.linspace(-1, 1, 12)
        rows = resolve_batch_q0(chain, 4, q0, None)
        assert rows.shape == (4, 12)
        assert all(np.array_equal(rows[i], q0) for i in range(4))

    def test_per_problem_q0_copied(self):
        chain = paper_chain(12)
        q0 = np.zeros((3, 12))
        rows = resolve_batch_q0(chain, 3, q0, None)
        rows[0, 0] = 99.0
        assert q0[0, 0] == 0.0

    def test_shape_mismatch_rejected(self):
        chain = paper_chain(12)
        with pytest.raises(ValueError):
            resolve_batch_q0(chain, 3, np.zeros((2, 12)), None)


class TestSpawnProblemSeeds:
    def test_reproducible_from_seed(self):
        a = spawn_problem_seeds(4, np.random.default_rng(7))
        b = spawn_problem_seeds(4, np.random.default_rng(7))
        for sa, sb in zip(a, b):
            assert np.array_equal(
                np.random.default_rng(sa).random(3),
                np.random.default_rng(sb).random(3),
            )

    def test_independent_of_shard_layout(self):
        """Problem i's stream is the same no matter how the batch is cut."""
        full = spawn_problem_seeds(6, np.random.default_rng(9))
        again = spawn_problem_seeds(6, np.random.default_rng(9))
        # Slicing [lo:hi] is all the pool does; entry i is positional.
        assert np.array_equal(
            np.random.default_rng(full[4]).random(2),
            np.random.default_rng(again[2:6][2]).random(2),
        )

    def test_empty(self):
        assert spawn_problem_seeds(0, None) == []
