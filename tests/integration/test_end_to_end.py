"""End-to-end integration: the whole pipeline from chain to headline claims."""

import numpy as np
import pytest

from repro import QuickIKSolver, make_solver, paper_chain
from repro.core.result import SolverConfig
from repro.evaluation.experiments import PaperExperiments
from repro.ikacc.accelerator import IKAccSimulator
from repro.workloads.suite import EvaluationSuite


class TestPublicAPI:
    def test_readme_quickstart_flow(self):
        """The exact flow advertised in the README/`repro` docstring."""
        chain = paper_chain(100)
        rng = np.random.default_rng(0)
        target = chain.end_position(chain.random_configuration(rng))
        result = QuickIKSolver(chain, speculations=64).solve(target, rng=rng)
        assert result.converged
        assert "JT-Speculation" in result.summary()

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestPaperShapeSmall:
    """The paper's qualitative story on a small-but-real workload."""

    @pytest.fixture(scope="class")
    def experiments(self):
        return PaperExperiments(
            suite=EvaluationSuite(dofs=(12,), targets_per_dof=8)
        )

    def test_iteration_reduction_at_least_90_percent(self, experiments):
        jt = experiments.stats("JT-Serial", 12).mean_iterations
        qik = experiments.stats("JT-Speculation", 12).mean_iterations
        assert 1.0 - qik / jt > 0.90

    def test_quick_ik_reaches_pseudoinverse_level(self, experiments):
        """Both Quick-IK and the pseudoinverse sit 1-2 orders of magnitude
        below JT-Serial ("comparable level"); their mutual ratio fluctuates
        with the target sample."""
        jt = experiments.stats("JT-Serial", 12).mean_iterations
        svd = experiments.stats("J-1-SVD", 12).mean_iterations
        qik = experiments.stats("JT-Speculation", 12).mean_iterations
        assert qik < 0.1 * jt
        assert svd < 0.1 * jt
        assert qik / svd < 30 and svd / qik < 30

    def test_all_methods_solve_everything(self, experiments):
        for method in ("JT-Serial", "J-1-SVD", "JT-Speculation"):
            assert experiments.stats(method, 12).success_rate == 1.0

    def test_quick_ik_work_not_lower_than_serial(self, experiments):
        """Figure 5b: Quick-IK does NOT reduce computation, only latency."""
        jt = experiments.stats("JT-Serial", 12).mean_work
        qik = experiments.stats("JT-Speculation", 12).mean_work
        assert qik > 0.3 * jt  # same order or higher


class TestHardwareSoftwareAgreement:
    def test_ikacc_and_software_reach_same_targets(self, rng):
        chain = paper_chain(25)
        sim = IKAccSimulator(chain)
        sw = QuickIKSolver(chain, speculations=64)
        for seed in range(3):
            target = chain.end_position(chain.random_configuration(rng))
            a = sim.solve(target, rng=np.random.default_rng(seed))
            b = sw.solve(target, rng=np.random.default_rng(seed))
            assert a.converged == b.converged
            if a.converged:
                assert np.linalg.norm(a.q - b.q) < 1e-2 * max(
                    1.0, np.linalg.norm(b.q)
                )

    def test_registry_and_simulator_share_convergence_policy(self, rng):
        chain = paper_chain(12)
        config = SolverConfig(tolerance=5e-3, max_iterations=4000)
        target = chain.end_position(chain.random_configuration(rng))
        sw = make_solver("JT-Speculation", chain, config=config)
        hw = IKAccSimulator(chain, solver_config=config)
        a = sw.solve(target, rng=np.random.default_rng(2))
        b = hw.solve(target, rng=np.random.default_rng(2))
        assert a.error < 5e-3 and b.error < 5e-3


class TestTrajectoryWarmStart:
    def test_warm_start_cheaper_than_cold(self, rng):
        """Following a dense trajectory with warm starts takes far fewer
        iterations per waypoint than cold random restarts — the usage pattern
        of a real-time controller."""
        chain = paper_chain(25)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=2000))
        q_start = chain.random_configuration(rng)
        q_end = chain.random_configuration(rng)
        waypoints = [
            chain.end_position(q_start + t * (q_end - q_start))
            for t in np.linspace(0, 1, 8)
        ]
        q = q_start.copy()
        warm_iterations = 0
        for waypoint in waypoints:
            result = solver.solve(waypoint, q0=q)
            assert result.converged
            warm_iterations += result.iterations
            q = result.q
        cold_iterations = sum(
            solver.solve(w, rng=np.random.default_rng(i)).iterations
            for i, w in enumerate(waypoints)
        )
        assert warm_iterations < cold_iterations
