"""Cross-validation between independent implementations of the same math."""

import numpy as np
import pytest

from repro.core.alpha import buss_alpha
from repro.ikacc.accelerator import IKAccSimulator
from repro.ikacc.config import IKAccConfig
from repro.ikacc.opcounts import quick_ik_iteration_ops
from repro.kinematics.robots import paper_chain
from repro.platforms.atom import AtomModel
from repro.platforms.ikacc_platform import IKAccPlatform


class TestOpCountsVsInstrumentation:
    def test_simulator_ops_match_analytic_per_iteration(self, rng):
        """The ops the simulator actually tallies per full iteration must
        match the analytic per-iteration count used by the platform models
        (modulo the one-off init FK)."""
        chain = paper_chain(12)
        sim = IKAccSimulator(chain)
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=np.random.default_rng(0))
        if result.iterations == 0:
            pytest.skip("degenerate restart")
        analytic = quick_ik_iteration_ops(12, 64)
        from repro.ikacc.opcounts import fk_ops

        init = fk_ops(12)
        measured_mul = result.ops.mul - init.mul
        # Early-exit in the final iteration may skip one wave (half the
        # speculative muls of one iteration at most).
        upper = analytic.mul * result.iterations
        lower = upper - analytic.mul // 2 - 1
        assert lower <= measured_mul <= upper


class TestTimingModelsAgree:
    def test_platform_wrapper_equals_simulator_static_timing(self):
        platform = IKAccPlatform()
        for dof in (12, 50):
            sim = IKAccSimulator(paper_chain(dof))
            assert platform.seconds_per_iteration(
                "JT-Speculation", dof, 64
            ) == pytest.approx(sim.seconds_per_full_iteration())

    def test_simulated_solve_time_close_to_iterations_times_static(self, rng):
        """Dynamic simulation (with early exits) must sit within the static
        upper bound and not far below it."""
        chain = paper_chain(25)
        sim = IKAccSimulator(chain)
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=np.random.default_rng(1))
        if result.iterations == 0:
            pytest.skip("degenerate restart")
        static = sim.seconds_per_full_iteration() * result.iterations
        assert result.seconds <= static * 1.2  # + init FK margin
        assert result.seconds >= 0.4 * static


class TestAtomModelInternalConsistency:
    def test_quick_ik_iteration_costs_about_64_jt_iterations(self):
        """Figure 5(b)'s premise: Quick-IK trades 64x per-iteration work for
        ~30x fewer iterations.  The Atom model must reflect that work ratio."""
        atom = AtomModel()
        qik = atom.seconds_per_iteration("JT-Speculation", 50, 64)
        jts = atom.seconds_per_iteration("JT-Serial", 50)
        assert 20 < qik / jts < 70


class TestFloat32SPUvsFloat64:
    def test_spu_alpha_base_matches_double_precision(self, rng):
        from repro.ikacc.spu import SerialProcessUnit

        chain = paper_chain(50)
        spu = SerialProcessUnit(chain, IKAccConfig())
        for _ in range(5):
            q = chain.random_configuration(rng)
            target = chain.end_position(chain.random_configuration(rng))
            hw = spu.run(q, target)
            jac = chain.jacobian_position(q)
            error = target - chain.end_position(q)
            sw_alpha = buss_alpha(error, jac @ (jac.T @ error))
            assert hw.alpha_base == pytest.approx(sw_alpha, rel=1e-3)
