"""Robustness / failure-injection tests: degenerate inputs must not produce
NaNs, crashes, or silent wrong answers."""

import math

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.ikacc.accelerator import IKAccSimulator
from repro.kinematics.chain import KinematicChain
from repro.kinematics.joint import Joint, JointLimits
from repro.kinematics.robots import paper_chain, planar_chain
from repro.solvers import SOLVER_REGISTRY, make_solver


class TestDegenerateChains:
    def test_single_joint_chain(self, rng):
        chain = planar_chain(1)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=500))
        target = chain.end_position(np.array([0.7]))
        result = solver.solve(target, rng=rng)
        assert result.converged
        assert np.all(np.isfinite(result.q))

    def test_zero_length_links_do_not_nan(self, rng):
        """A chain with zero-length links is everywhere singular in some
        directions; solvers must stay finite."""
        joints = [Joint.revolute(a=0.0, alpha=0.3 * i) for i in range(4)]
        joints.append(Joint.revolute(a=0.5))
        chain = KinematicChain(joints)
        config = SolverConfig(max_iterations=200)
        for name in ("JT-Serial", "JT-Speculation", "J-1-SVD"):
            solver = make_solver(name, chain, config=config)
            result = solver.solve(np.array([0.3, 0.1, 0.0]), rng=rng)
            assert np.all(np.isfinite(result.q)), name
            assert math.isfinite(result.error), name

    def test_locked_joints_zero_span_limits(self, rng):
        """Joints frozen by zero-width limits never move."""
        joints = [
            Joint.revolute(a=0.3, limits=JointLimits(0.5, 0.5)),
            Joint.revolute(a=0.3),
        ]
        chain = KinematicChain(joints)
        config = SolverConfig(max_iterations=300, respect_limits=True)
        solver = QuickIKSolver(chain, config=config)
        target = chain.end_position(np.array([0.5, 0.8]))
        result = solver.solve(target, rng=rng)
        assert result.q[0] == pytest.approx(0.5)


class TestDegenerateTargets:
    def test_target_at_base_origin(self, rng):
        """The base origin lies on joint-0's axis — a classic degenerate
        target.  No solver may emit NaNs."""
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=300)
        for name in SOLVER_REGISTRY:
            solver = make_solver(name, chain, config=config)
            result = solver.solve(np.zeros(3), rng=np.random.default_rng(0))
            assert np.all(np.isfinite(result.q)), name

    def test_far_unreachable_target_hits_cap_cleanly(self, rng):
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=25)
        for name in ("JT-Serial", "JT-Speculation", "J-1-SVD"):
            solver = make_solver(name, chain, config=config)
            result = solver.solve(np.array([1e6, 0.0, 0.0]), rng=rng)
            assert not result.converged, name
            assert result.iterations == 25, name
            assert np.all(np.isfinite(result.q)), name

    def test_target_exactly_at_start(self, rng):
        chain = paper_chain(12)
        q0 = chain.random_configuration(rng)
        result = QuickIKSolver(chain).solve(chain.end_position(q0), q0=q0)
        assert result.converged
        assert result.iterations == 0

    def test_nan_target_rejected_or_flagged(self, rng):
        """A NaN target must not silently 'converge'."""
        chain = paper_chain(12)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=10))
        result = solver.solve(np.array([np.nan, 0.0, 0.0]), rng=rng)
        assert not result.converged


class TestSingularStarts:
    def test_start_at_exact_singularity(self, rng):
        """Fully stretched planar arm: rank-deficient Jacobian at the start.
        Solvers must make progress or fail gracefully — never NaN."""
        chain = planar_chain(4)
        q0 = np.zeros(4)  # stretched: singular
        target = chain.end_position(chain.random_configuration(rng))
        config = SolverConfig(max_iterations=2000)
        for name in ("JT-Serial", "JT-Speculation", "J-1-SVD", "JT-DLS"):
            solver = make_solver(name, chain, config=config)
            result = solver.solve(target, q0=q0)
            assert np.all(np.isfinite(result.q)), name

    def test_ikacc_with_degenerate_restart(self, rng):
        chain = planar_chain(4)
        sim = IKAccSimulator(chain, solver_config=SolverConfig(max_iterations=100))
        result = sim.solve(np.array([0.2, 0.2, 0.0]), q0=np.zeros(4))
        assert np.all(np.isfinite(result.q))
        assert result.cycles > 0


class TestExtremeConfigs:
    def test_speculations_one(self, rng):
        chain = paper_chain(12)
        solver = QuickIKSolver(
            chain, speculations=1, config=SolverConfig(max_iterations=2000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_huge_speculation_count(self, rng):
        chain = paper_chain(12)
        solver = QuickIKSolver(
            chain, speculations=512, config=SolverConfig(max_iterations=500)
        )
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert result.converged
        assert result.fk_evaluations == 1 + 512 * result.iterations

    def test_very_tight_tolerance_float64(self, rng):
        """1e-9 m is still solvable in float64 on a small chain."""
        chain = paper_chain(12)
        config = SolverConfig(tolerance=1e-9, max_iterations=10_000)
        solver = QuickIKSolver(chain, config=config)
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert result.converged

    def test_ikacc_single_ssu(self, rng):
        from repro.ikacc.config import IKAccConfig

        chain = paper_chain(12)
        sim = IKAccSimulator(chain, config=IKAccConfig(n_ssus=1, speculations=8))
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        assert result.converged
