"""CLI smoke tests: argument parsing, exit codes, health-check paths.

Every command runs through :func:`repro.cli.main` in-process (no
subprocesses), on small robots with tight iteration caps so the whole
module stays tier-1 fast.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def strict_loads(text: str):
    """Parse JSON refusing NaN/Infinity — the repo's output contract."""
    def _reject(token):
        raise ValueError(f"non-strict JSON constant {token!r} in output")
    return json.loads(text, parse_constant=_reject)


class TestParsing:
    def test_missing_command_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([])
        assert excinfo.value.code == 2

    def test_unknown_command_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["destroy"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize(
        "argv", [
            ["solve", "--solver", "not-a-solver"],
            ["solve", "--kernel", "quantum"],
            ["solve", "--on-error", "explode"],
            ["solve", "--workers", "0"],
            ["bench", "nonexistent-experiment"],
            ["bench", "figure4", "--max-iterations", "-5"],
            ["serve-bench", "--on-error", "explode"],
            ["serve-bench", "--requests", "0"],
        ],
    )
    def test_invalid_choice_exits_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2

    def test_solve_flags_land_in_namespace(self):
        args = build_parser().parse_args([
            "solve", "--robot", "dadu-12dof", "--solver", "JT-DLS",
            "--kernel", "vectorized", "--workers", "2",
            "--on-error", "skip", "--max-iterations", "500",
        ])
        assert args.command == "solve"
        assert args.robot == "dadu-12dof"
        assert args.solver == "JT-DLS"
        assert args.kernel == "vectorized"
        assert args.workers == 2
        assert args.on_error == "skip"
        assert args.max_iterations == 500

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.robot == "dadu-50dof"
        assert args.out == "BENCH_serving.json"
        assert args.on_error == "skip"
        assert args.deadline_ms is None
        # PR-7 serving defaults: warm start + adaptive batching on, one
        # dispatch loop, iid target stream.
        assert args.warm_start is True
        assert args.adaptive is True
        assert args.dispatch_workers == 1
        assert args.workload == "iid"

    def test_serve_bench_negated_booleans(self):
        args = build_parser().parse_args([
            "serve-bench", "--no-warm-start", "--no-adaptive",
            "--dispatch-workers", "4", "--workload", "tracking",
        ])
        assert args.warm_start is False
        assert args.adaptive is False
        assert args.dispatch_workers == 4
        assert args.workload == "tracking"

    def test_serve_bench_sessions_workload(self):
        args = build_parser().parse_args([
            "serve-bench", "--workload", "sessions", "--tracks", "3",
        ])
        assert args.workload == "sessions"
        assert args.tracks == 3

    @pytest.mark.parametrize("solver", ["fdik", "mdik"])
    def test_new_solver_families_are_choices(self, solver):
        args = build_parser().parse_args(["solve", "--solver", solver])
        assert args.solver == solver


class TestSolve:
    def test_converged_exits_0(self, capsys):
        rc = main(["solve", "--robot", "dadu-12dof",
                   "--max-iterations", "2000"])
        assert rc == 0
        assert "converged" in capsys.readouterr().out

    def test_unconverged_exits_1(self):
        assert main(["solve", "--robot", "dadu-12dof",
                     "--max-iterations", "1"]) == 1

    def test_vectorized_kernel(self):
        rc = main(["solve", "--robot", "dadu-12dof", "--kernel", "vectorized",
                   "--max-iterations", "2000"])
        assert rc == 0

    def test_on_error_skip_degrades_bad_target(self, capsys):
        rc = main(["solve", "--robot", "dadu-12dof", "--on-error", "skip",
                   "--target", "nan", "0", "0"])
        assert rc == 1
        assert "failures:" in capsys.readouterr().out

    def test_workers_flag_runs_pooled_path(self):
        rc = main(["solve", "--robot", "dadu-12dof", "--workers", "2",
                   "--max-iterations", "2000"])
        assert rc == 0

    @pytest.mark.parametrize("solver", ["fdik", "mdik"])
    def test_new_families_converge(self, solver, capsys):
        rc = main(["solve", "--robot", "dadu-12dof", "--solver", solver,
                   "--max-iterations", "2000"])
        assert rc == 0
        assert "converged" in capsys.readouterr().out

    @pytest.mark.parametrize("solver", ["fdik", "mdik"])
    def test_new_families_unconverged_exit_1(self, solver):
        assert main(["solve", "--robot", "dadu-12dof", "--solver", solver,
                     "--max-iterations", "1"]) == 1


class TestSimulateAndTrace:
    def test_simulate_exits_0(self, capsys):
        rc = main(["simulate", "--robot", "dadu-12dof",
                   "--max-iterations", "2000"])
        assert rc == 0
        assert "cycle breakdown" in capsys.readouterr().out

    def test_trace_renders_gantt(self, capsys):
        assert main(["trace", "--robot", "dadu-12dof"]) == 0
        assert "per-iteration latency" in capsys.readouterr().out


class TestBench:
    ARGS = ["bench", "figure4", "--targets", "1", "--dofs", "12"]

    def test_experiment_exits_0(self, capsys):
        rc = main(self.ARGS + ["--max-iterations", "400"])
        assert rc == 0
        assert "figure 4" in capsys.readouterr().out.lower()

    def test_zero_converged_health_check_exits_1(self, capsys):
        # An iteration cap of 1 converges nothing: the health check must
        # turn "all solves failed" into a nonzero exit, not a quiet table.
        rc = main(self.ARGS + ["--max-iterations", "1"])
        assert rc == 1
        assert "bench FAILED" in capsys.readouterr().err


class TestServeBench:
    def test_writes_payload_and_exits_0(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main([
            "serve-bench", "--robot", "dadu-12dof", "--requests", "8",
            "--rate", "200", "--max-batch-size", "4", "--max-wait-ms", "5",
            "--max-iterations", "2000", "--out", str(out),
        ])
        assert rc == 0
        assert "served 8/8" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "serving"
        assert payload["completed"] == 8
        assert payload["converged"] > 0
        assert payload["serving"]["mean_occupancy"] >= 1.0
        assert set(payload["latency_s"]) >= {"mean", "p50", "p90", "p99"}

    def test_sessions_workload_records_section(self, tmp_path, capsys):
        out = tmp_path / "bench_sessions.json"
        rc = main([
            "serve-bench", "--robot", "dadu-12dof", "--requests", "12",
            "--rate", "300", "--workload", "sessions", "--tracks", "3",
            "--max-iterations", "2000", "--seed", "7", "--out", str(out),
        ])
        assert rc == 0
        assert "sessions: 3 streams, 12 ticks" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        sessions = payload["sessions"]
        assert sessions["count"] == 3
        assert sessions["manager"]["ticks"] == 12
        assert sessions["manager"]["cold_ticks"] == 3
        assert sessions["manager"]["warm_ticks"] == 9
        # Streamed warm-chaining must beat the cold per-tick baseline.
        assert sessions["cold_baseline"]["iteration_reduction"] > 0.0

    def test_zero_converged_health_check_exits_1(self, tmp_path, capsys):
        out = tmp_path / "bench_failed.json"
        rc = main([
            "serve-bench", "--robot", "dadu-12dof", "--requests", "6",
            "--rate", "300", "--workload", "sessions", "--tracks", "2",
            "--max-iterations", "1", "--no-cold-baseline",
            "--out", str(out),
        ])
        assert rc == 1
        assert "serve-bench FAILED" in capsys.readouterr().err


class TestExperimentParsing:
    @pytest.mark.parametrize(
        "argv", [
            ["experiment"],
            ["experiment", "explode"],
            ["experiment", "run", "--targets", "0"],
            ["experiment", "run", "--max-iterations", "0"],
            ["experiment", "query"],  # a selector is required
            ["experiment", "query", "--runs", "--latest", "wall_s"],
            ["experiment", "import"],  # at least one file
        ],
    )
    def test_invalid_usage_exits_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2

    def test_run_flags_land_in_namespace(self):
        args = build_parser().parse_args([
            "experiment", "run", "--store", "x.sqlite", "--name", "nightly",
            "--robots", "planar-4dof,dadu-6dof", "--solvers", "JT-DLS",
            # a leading '-' value needs the '=' spelling (argparse rule)
            "--kernels=-,vectorized:float32", "--workers=-,2",
            "--workloads", "batch", "--targets", "3",
            "--max-iterations", "400", "--fresh",
        ])
        assert args.command == "experiment"
        assert args.experiment_command == "run"
        assert args.store == "x.sqlite"
        assert args.robots == "planar-4dof,dadu-6dof"
        assert args.kernels == "-,vectorized:float32"
        assert args.fresh is True

    def test_query_selectors_parse(self):
        args = build_parser().parse_args([
            "experiment", "query", "--regressions", "0.1",
            "--run-name", "bench-kernels", "--metric", "headline_speedup",
        ])
        assert args.regressions == 0.1
        assert args.run_name == "bench-kernels"
        assert args.metric == "headline_speedup"


class TestExperimentCommands:
    SWEEP = ["--name", "smoke", "--robots", "planar-4dof",
             "--solvers", "JT-DLS", "--targets", "2",
             "--max-iterations", "400"]

    def _store_args(self, tmp_path):
        return ["--store", str(tmp_path / "exp.sqlite")]

    def test_run_emits_strict_json_and_exits_0(self, tmp_path, capsys):
        rc = main(["experiment", "run", *self._store_args(tmp_path),
                   *self.SWEEP])
        assert rc == 0
        payload = strict_loads(capsys.readouterr().out)
        assert payload["sweep"] == "smoke"
        assert payload["executed"] == payload["total"] == 1
        assert payload["completed"] is True

    def test_resume_skips_finished_cells(self, tmp_path, capsys):
        store_args = self._store_args(tmp_path)
        assert main(["experiment", "run", *store_args, *self.SWEEP]) == 0
        capsys.readouterr()
        rc = main(["experiment", "resume", *store_args, "--name", "smoke"])
        assert rc == 0
        payload = strict_loads(capsys.readouterr().out)
        assert payload["skipped"] == payload["total"] == 1
        assert payload["executed"] == 0

    def test_resume_unknown_sweep_exits_1(self, tmp_path, capsys):
        rc = main(["experiment", "resume", *self._store_args(tmp_path),
                   "--name", "ghost"])
        assert rc == 1
        assert "no resumable sweep" in capsys.readouterr().err

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        rc = main(["experiment", "run", *self._store_args(tmp_path),
                   "--robots", "not-a-robot"])
        assert rc == 2
        assert "bad sweep spec" in capsys.readouterr().err

    def test_import_then_query_round_trip(self, tmp_path, capsys):
        store_args = self._store_args(tmp_path)
        bench = [str(REPO_ROOT / name) for name in (
            "BENCH_kernels.json", "BENCH_parallel.json", "BENCH_serving.json",
        )]
        rc = main(["experiment", "import", *store_args, *bench])
        assert rc == 0
        imported = strict_loads(capsys.readouterr().out)["imported"]
        assert [i["run_name"] for i in imported] == [
            "bench-kernels", "bench-parallel", "bench-serving",
        ]

        assert main(["experiment", "query", *store_args, "--runs"]) == 0
        runs = strict_loads(capsys.readouterr().out)["runs"]
        assert len(runs) == 3
        assert all(r["source"] == "import" for r in runs)

        assert main(["experiment", "query", *store_args,
                     "--latest", "headline_speedup",
                     "--run-name", "bench-kernels"]) == 0
        latest = strict_loads(capsys.readouterr().out)
        assert latest["value"] is not None and latest["value"] > 1.0

        # One import per name == no history: the regression gate is quiet.
        assert main(["experiment", "query", *store_args,
                     "--regressions", "0.1"]) == 0
        payload = strict_loads(capsys.readouterr().out)
        assert payload["regressions"] == []

    def test_import_unknown_payload_exits_1(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_bench.json"
        bogus.write_text(json.dumps({"benchmark": "mystery"}))
        rc = main(["experiment", "import", *self._store_args(tmp_path),
                   str(bogus)])
        assert rc == 1
        assert "unknown benchmark tag" in capsys.readouterr().err

    def test_locked_store_exits_1(self, tmp_path, capsys):
        import sqlite3

        from repro.experiments import ResultStore

        path = tmp_path / "exp.sqlite"
        ResultStore(path).close()
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            rc = main([
                "experiment", "import", "--store", str(path),
                "--lock-timeout", "0.05",
                str(REPO_ROOT / "BENCH_kernels.json"),
            ])
        finally:
            blocker.rollback()
            blocker.close()
        assert rc == 1
        assert "experiment store locked" in capsys.readouterr().err


class TestRobots:
    def test_lists_known_robots(self, capsys):
        assert main(["robots"]) == 0
        out = capsys.readouterr().out
        assert "dadu-<N>dof" in out
        assert "JT-Speculation" in out
