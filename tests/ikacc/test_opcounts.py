"""Tests for the operation-count model."""

import pytest

from repro.ikacc.opcounts import (
    OpCounts,
    error_ops,
    fk_ops,
    jacobian_serial_ops,
    jt_serial_iteration_ops,
    matmul4_ops,
    pseudoinverse_iteration_ops,
    quick_ik_iteration_ops,
    screw_build_ops,
    speculation_update_ops,
    svd_ops,
)


class TestOpCountsAlgebra:
    def test_addition(self):
        total = OpCounts(mul=1, add=2) + OpCounts(mul=10, div=1)
        assert total.mul == 11
        assert total.add == 2
        assert total.div == 1

    def test_scaling(self):
        scaled = OpCounts(mul=3, sincos=1).scaled(4)
        assert scaled.mul == 12
        assert scaled.sincos == 4

    def test_flops_weights(self):
        ops = OpCounts(mul=1, add=1, div=1, sqrt=1, sincos=1, compare=1)
        assert ops.flops == 1 + 1 + 4 + 4 + 20 + 1


class TestKernelCounts:
    def test_matmul4_is_64_mul_48_add(self):
        ops = matmul4_ops()
        assert ops.mul == 64
        assert ops.add == 48

    def test_screw_has_one_sincos(self):
        assert screw_build_ops().sincos == 1

    def test_fk_scales_linearly_with_dof(self):
        base = fk_ops(10)
        double = fk_ops(20)
        # Remove the constant tool matmul before comparing.
        assert (double.mul - 64) == 2 * (base.mul - 64)
        assert double.sincos == 2 * base.sincos

    def test_fk_includes_tool_matmul(self):
        assert fk_ops(1).mul == 64 + 64  # one joint + tool

    def test_jacobian_serial_epilogue(self):
        """Eq. 8 adds exactly one divide."""
        assert jacobian_serial_ops(5).div == 1

    def test_error_ops_has_sqrt_and_compare(self):
        ops = error_ops()
        assert ops.sqrt == 1
        assert ops.compare == 1

    def test_speculation_update_scales_with_dof(self):
        assert speculation_update_ops(10).mul == 11
        assert speculation_update_ops(10).add == 10


class TestIterationCounts:
    def test_quick_ik_dominated_by_speculative_fk(self):
        ops = quick_ik_iteration_ops(50, 64)
        fk_part = fk_ops(50).scaled(64)
        assert ops.mul > fk_part.mul
        assert ops.mul < fk_part.mul * 1.3  # serial part is small in comparison

    def test_quick_ik_one_speculation_close_to_jt_serial(self):
        qik = quick_ik_iteration_ops(20, 1)
        jts = jt_serial_iteration_ops(20)
        assert abs(qik.flops - jts.flops) / jts.flops < 0.05

    def test_quick_ik_flops_scale_with_speculations(self):
        small = quick_ik_iteration_ops(20, 16)
        large = quick_ik_iteration_ops(20, 64)
        assert 3.0 < large.flops / small.flops < 4.5

    def test_svd_is_linear_in_dof(self):
        assert svd_ops(100).flops < 12 * svd_ops(10).flops

    def test_pseudoinverse_heavier_than_jt_serial(self):
        assert pseudoinverse_iteration_ops(30).flops > jt_serial_iteration_ops(30).flops

    @pytest.mark.parametrize("dof", [1, 12, 100])
    def test_all_counts_nonnegative(self, dof):
        for ops in (
            fk_ops(dof),
            jacobian_serial_ops(dof),
            jt_serial_iteration_ops(dof),
            quick_ik_iteration_ops(dof, 64),
            pseudoinverse_iteration_ops(dof),
        ):
            assert min(ops.mul, ops.add, ops.div, ops.sqrt, ops.sincos, ops.compare) >= 0
            assert ops.flops > 0
