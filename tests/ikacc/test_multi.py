"""Tests for the multi-problem throughput mode."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.ikacc.config import IKAccConfig
from repro.ikacc.multi import MultiProblemIKAcc
from repro.kinematics.robots import paper_chain


@pytest.fixture
def workload(rng):
    chain = paper_chain(25)
    targets = np.stack(
        [chain.end_position(chain.random_configuration(rng)) for _ in range(6)]
    )
    return chain, targets


class TestThroughput:
    def test_pipelined_never_slower_than_serial(self, workload):
        chain, targets = workload
        report = MultiProblemIKAcc(chain).run(targets, rng=np.random.default_rng(1))
        assert report.pipelined_cycles <= report.serial_cycles
        assert report.speedup >= 1.0

    def test_speedup_bounded_by_two_stages(self, workload):
        chain, targets = workload
        report = MultiProblemIKAcc(chain).run(targets, rng=np.random.default_rng(1))
        assert report.speedup <= 2.0 + 1e-9  # two overlapping units

    def test_answers_match_latency_mode(self, workload):
        chain, targets = workload
        multi = MultiProblemIKAcc(chain)
        report = multi.run(targets, rng=np.random.default_rng(3))
        for result, target in zip(report.results, targets):
            assert result.converged
            assert np.linalg.norm(
                chain.end_position(result.q.astype(float)) - target
            ) < 2e-2

    def test_total_iterations_aggregated(self, workload):
        chain, targets = workload
        report = MultiProblemIKAcc(chain).run(targets, rng=np.random.default_rng(1))
        assert report.total_iterations == sum(
            r.iterations for r in report.results
        )

    def test_solves_per_second_positive(self, workload):
        chain, targets = workload
        report = MultiProblemIKAcc(chain).run(targets, rng=np.random.default_rng(1))
        assert report.solves_per_second > 0.0
        assert report.serial_seconds >= report.pipelined_seconds

    def test_respects_solver_config(self, workload):
        chain, targets = workload
        multi = MultiProblemIKAcc(
            chain, solver_config=SolverConfig(max_iterations=2)
        )
        unreachable = np.tile([99.0, 0.0, 0.0], (3, 1))
        report = multi.run(unreachable, rng=np.random.default_rng(1))
        assert all(r.iterations == 2 for r in report.results)

    def test_stage_balance_drives_speedup(self, workload):
        """When SPU time is a tiny share (few SSU waves dominate), the
        pipelining gain is small; the two-stage bound tracks the share."""
        chain, targets = workload
        multi = MultiProblemIKAcc(chain, config=IKAccConfig(n_ssus=8))
        report = multi.run(targets, rng=np.random.default_rng(1))
        spu, waves = multi._stage_cycles()
        ideal = (spu + waves) / max(spu, waves)
        assert report.speedup <= ideal + 1e-9
