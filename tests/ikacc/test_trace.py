"""Tests for the accelerator execution trace."""

import pytest

from repro.ikacc.accelerator import IKAccSimulator
from repro.ikacc.config import IKAccConfig
from repro.ikacc.trace import render_gantt, trace_iteration
from repro.kinematics.robots import paper_chain


@pytest.fixture
def sim():
    return IKAccSimulator(paper_chain(25))


class TestTraceIteration:
    def test_total_matches_simulator_static_timing(self, sim):
        trace = trace_iteration(sim)
        assert trace.total_cycles == sim.cycles_per_full_iteration()

    def test_event_order_spu_first(self, sim):
        trace = trace_iteration(sim)
        assert trace.events[0].unit == "SPU"
        assert trace.events[0].start == 0

    def test_two_waves_at_design_point(self, sim):
        trace = trace_iteration(sim)
        ssu_events = [e for e in trace.events if e.unit == "SSU array"]
        assert len(ssu_events) == 2
        selector_events = [e for e in trace.events if e.unit == "selector"]
        assert len(selector_events) == 2

    def test_events_contiguous_and_nonoverlapping(self, sim):
        trace = trace_iteration(sim)
        cursor = 0
        for event in trace.events:
            assert event.start == cursor
            assert event.end > event.start
            cursor = event.end
        assert cursor == trace.total_cycles

    def test_unit_utilisation_sums_to_one(self, sim):
        trace = trace_iteration(sim)
        total = sum(trace.utilisation(u) for u in trace.unit_names())
        assert total == pytest.approx(1.0)

    def test_wave_labels_carry_k_ranges(self, sim):
        trace = trace_iteration(sim)
        labels = [e.label for e in trace.events if e.unit == "SSU array"]
        assert labels[0].endswith("k=1..32")
        assert labels[1].endswith("k=33..64")

    def test_single_wave_config(self):
        sim = IKAccSimulator(paper_chain(12), config=IKAccConfig(n_ssus=64))
        trace = trace_iteration(sim)
        assert len([e for e in trace.events if e.unit == "SSU array"]) == 1


class TestGantt:
    def test_renders_all_units(self, sim):
        text = render_gantt(trace_iteration(sim))
        for unit in ("SPU", "scheduler", "SSU array", "selector"):
            assert unit in text
        assert "#" in text

    def test_width_validation(self, sim):
        with pytest.raises(ValueError):
            render_gantt(trace_iteration(sim), width=5)

    def test_mentions_total_cycles(self, sim):
        trace = trace_iteration(sim)
        assert str(trace.total_cycles) in render_gantt(trace)
