"""Tests for the Parallel Search Scheduler."""

import pytest

from repro.ikacc.config import IKAccConfig
from repro.ikacc.scheduler import ParallelSearchScheduler


class TestWaves:
    def test_design_point_two_waves(self):
        scheduler = ParallelSearchScheduler(IKAccConfig())
        waves = scheduler.waves()
        assert len(waves) == 2
        assert waves[0].speculation_indices == tuple(range(1, 33))
        assert waves[1].speculation_indices == tuple(range(33, 65))

    def test_every_speculation_scheduled_exactly_once(self):
        for ssus, specs in [(32, 64), (32, 50), (7, 64), (64, 64), (5, 1)]:
            scheduler = ParallelSearchScheduler(
                IKAccConfig(n_ssus=ssus, speculations=specs)
            )
            scheduler.validate()  # raises on drop/duplicate

    def test_partial_last_wave(self):
        scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=32, speculations=50))
        waves = scheduler.waves()
        assert waves[0].occupancy == 32
        assert waves[1].occupancy == 18

    def test_single_wave_when_ssus_cover_speculations(self):
        scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=64, speculations=64))
        assert scheduler.n_waves == 1


class TestMapping:
    def test_ssu_for_speculation_round_robin(self):
        scheduler = ParallelSearchScheduler(IKAccConfig())
        assert scheduler.ssu_for_speculation(1) == 0
        assert scheduler.ssu_for_speculation(32) == 31
        assert scheduler.ssu_for_speculation(33) == 0

    def test_wave_for_speculation(self):
        scheduler = ParallelSearchScheduler(IKAccConfig())
        assert scheduler.wave_for_speculation(1) == 0
        assert scheduler.wave_for_speculation(32) == 0
        assert scheduler.wave_for_speculation(33) == 1
        assert scheduler.wave_for_speculation(64) == 1

    def test_out_of_range_rejected(self):
        scheduler = ParallelSearchScheduler(IKAccConfig())
        for bad in (0, 65):
            with pytest.raises(ValueError):
                scheduler.ssu_for_speculation(bad)
            with pytest.raises(ValueError):
                scheduler.wave_for_speculation(bad)

    def test_mapping_consistent_with_waves(self):
        scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=8, speculations=20))
        for wave in scheduler.waves():
            for slot, k in enumerate(wave.speculation_indices):
                assert scheduler.ssu_for_speculation(k) == slot
                assert scheduler.wave_for_speculation(k) == wave.index


class TestUtilisation:
    def test_full_utilisation(self):
        scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=32, speculations=64))
        assert scheduler.utilisation() == pytest.approx(1.0)

    def test_partial_utilisation(self):
        scheduler = ParallelSearchScheduler(IKAccConfig(n_ssus=32, speculations=48))
        assert scheduler.utilisation() == pytest.approx(0.75)

    def test_broadcast_cycles_from_config(self):
        scheduler = ParallelSearchScheduler(IKAccConfig(broadcast_latency=7))
        assert scheduler.broadcast_cycles() == 7
