"""Tests for the Parameter Selector."""

import numpy as np
import pytest

from repro.ikacc.config import IKAccConfig
from repro.ikacc.opcounts import OpCounts
from repro.ikacc.selector import ParameterSelector, SelectionState
from repro.ikacc.ssu import SSUResult


def _result(k: int, error: float, below: bool = False) -> SSUResult:
    return SSUResult(
        k=k,
        alpha=0.1 * k,
        q=np.zeros(3),
        position=np.zeros(3),
        error=error,
        below_threshold=below,
        cycles=100,
        ops=OpCounts(),
    )


@pytest.fixture
def selector():
    return ParameterSelector(IKAccConfig())


class TestMerge:
    def test_single_wave_argmin(self, selector):
        state = SelectionState()
        selector.merge_wave(state, [_result(1, 0.5), _result(2, 0.2), _result(3, 0.9)])
        assert selector.outcome(state).k == 2

    def test_best_survives_across_waves(self, selector):
        state = SelectionState()
        selector.merge_wave(state, [_result(1, 0.5), _result(2, 0.2)])
        selector.merge_wave(state, [_result(33, 0.3), _result(34, 0.4)])
        assert selector.outcome(state).k == 2

    def test_later_wave_can_win(self, selector):
        state = SelectionState()
        selector.merge_wave(state, [_result(1, 0.5)])
        selector.merge_wave(state, [_result(33, 0.1)])
        assert selector.outcome(state).k == 33

    def test_threshold_hit_beats_argmin(self, selector):
        """Algorithm 1 lines 12-13: a threshold hit returns immediately even
        if another candidate has lower error."""
        state = SelectionState()
        selector.merge_wave(
            state,
            [_result(1, 0.009, below=True), _result(2, 0.001, below=True),
             _result(3, 0.0005)],
        )
        assert selector.outcome(state).k == 1  # lowest k among hits

    def test_tie_broken_by_lower_k(self, selector):
        state = SelectionState()
        selector.merge_wave(state, [_result(5, 0.2), _result(3, 0.2)])
        assert selector.outcome(state).k == 3

    def test_empty_wave_rejected(self, selector):
        with pytest.raises(ValueError):
            selector.merge_wave(SelectionState(), [])

    def test_outcome_without_waves_rejected(self, selector):
        with pytest.raises(ValueError):
            selector.outcome(SelectionState())

    def test_waves_merged_counter(self, selector):
        state = SelectionState()
        selector.merge_wave(state, [_result(1, 0.5)])
        selector.merge_wave(state, [_result(2, 0.4)])
        assert state.waves_merged == 2


class TestTiming:
    def test_tree_depth_log2(self, selector):
        compare = IKAccConfig().timing.compare
        assert selector.cycles_per_wave(32) == 6 * compare  # log2(32)+1
        assert selector.cycles_per_wave(1) == 1 * compare
        assert selector.cycles_per_wave(2) == 2 * compare
        assert selector.cycles_per_wave(17) == 6 * compare  # ceil(log2(17))=5, +1

    def test_invalid_occupancy(self, selector):
        with pytest.raises(ValueError):
            selector.cycles_per_wave(0)

    def test_state_accumulates_cycles(self, selector):
        state = SelectionState()
        selector.merge_wave(state, [_result(1, 0.5), _result(2, 0.3)])
        selector.merge_wave(state, [_result(3, 0.2)])
        assert state.cycles == selector.cycles_per_wave(2) + selector.cycles_per_wave(1)
