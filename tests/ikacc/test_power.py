"""Tests for the area/power model."""

import pytest

from repro.ikacc.config import IKAccConfig
from repro.ikacc.opcounts import OpCounts, quick_ik_iteration_ops
from repro.ikacc.power import (
    COMPONENT_LIBRARY,
    PAPER_AREA_MM2,
    PAPER_AVG_POWER_W,
    BlockInventory,
    IKAccPowerModel,
)


@pytest.fixture
def model():
    return IKAccPowerModel(IKAccConfig())


class TestArea:
    def test_total_area_near_paper(self, model):
        """Component model should land within ~20% of the reported 2.27 mm^2."""
        assert abs(model.area_mm2() - PAPER_AREA_MM2) / PAPER_AREA_MM2 < 0.2

    def test_ssu_array_dominates_area(self, model):
        breakdown = model.area_breakdown()
        assert breakdown["ssu"] > 0.8 * model.area_mm2()

    def test_area_scales_with_ssu_count(self):
        small = IKAccPowerModel(IKAccConfig(n_ssus=8)).area_mm2()
        large = IKAccPowerModel(IKAccConfig(n_ssus=64)).area_mm2()
        assert large > 4 * small

    def test_breakdown_sums_to_total(self, model):
        assert sum(model.area_breakdown().values()) == pytest.approx(model.area_mm2())

    def test_block_inventory_area(self):
        block = BlockInventory(name="x", mul=2, sram_kb=1.0)
        expected = (
            2 * COMPONENT_LIBRARY["mul"].area_mm2
            + COMPONENT_LIBRARY["sram_kb"].area_mm2
        )
        assert block.area_mm2(COMPONENT_LIBRARY) == pytest.approx(expected)


class TestEnergy:
    def test_dynamic_energy_linear_in_ops(self, model):
        ops = OpCounts(mul=1000, add=500)
        assert model.dynamic_energy_j(ops.scaled(2)) == pytest.approx(
            2 * model.dynamic_energy_j(ops)
        )

    def test_zero_ops_zero_dynamic(self, model):
        assert model.dynamic_energy_j(OpCounts()) == 0.0

    def test_leakage_proportional_to_area(self, model):
        assert model.leakage_power_w() == pytest.approx(
            model.leakage_w_per_mm2 * model.area_mm2()
        )

    def test_energy_includes_leakage(self, model):
        ops = OpCounts(mul=100)
        short = model.energy_j(ops, 1e-6)
        long = model.energy_j(ops, 1e-3)
        assert long > short

    def test_negative_time_rejected(self, model):
        with pytest.raises(ValueError):
            model.energy_j(OpCounts(), -1.0)
        with pytest.raises(ValueError):
            model.average_power_w(OpCounts(), 0.0)

    def test_busy_iteration_power_near_paper(self, model):
        """One fully busy 100-DOF iteration at the design point should draw
        roughly the paper's 158.6 mW average (within a factor ~2)."""
        ops = quick_ik_iteration_ops(100, 64)
        seconds = 7.5e-6  # default-config 100-DOF iteration latency
        power = model.average_power_w(ops, seconds)
        assert PAPER_AVG_POWER_W / 2 < power < PAPER_AVG_POWER_W * 2
