"""Tests for the float32 precision analysis."""

import numpy as np
import pytest

from repro.ikacc.quantization import fk_precision_report, precision_margin
from repro.kinematics.robots import paper_chain


class TestPrecisionReport:
    def test_errors_tiny_for_metre_scale_chains(self):
        report = fk_precision_report(paper_chain(25), samples=64)
        assert report.max_error_m < 1e-4
        assert report.mean_error_m <= report.max_error_m

    def test_margin_large_vs_paper_tolerance(self):
        assert precision_margin(paper_chain(50), tolerance=1e-2, samples=64) > 100

    def test_error_grows_with_dof(self):
        small = fk_precision_report(paper_chain(12), samples=128)
        large = fk_precision_report(paper_chain(100), samples=128)
        assert large.mean_error_m > small.mean_error_m * 0.5  # at least same order

    def test_p99_between_mean_and_max(self):
        report = fk_precision_report(paper_chain(25), samples=128)
        assert report.mean_error_m <= report.p99_error_m <= report.max_error_m + 1e-18

    def test_deterministic_with_seeded_rng(self):
        a = fk_precision_report(paper_chain(12), samples=32, rng=np.random.default_rng(1))
        b = fk_precision_report(paper_chain(12), samples=32, rng=np.random.default_rng(1))
        assert a.max_error_m == b.max_error_m

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            fk_precision_report(paper_chain(12), samples=0)

    def test_report_metadata(self):
        report = fk_precision_report(paper_chain(12), samples=16)
        assert report.dof == 12
        assert report.samples == 16
