"""Tests for the Forward Kinematics Unit."""

import numpy as np
import pytest

from repro.ikacc.config import DatapathTiming, IKAccConfig
from repro.ikacc.fku import ForwardKinematicsUnit
from repro.kinematics.robots import paper_chain


@pytest.fixture
def chain():
    return paper_chain(12)


@pytest.fixture
def fku(chain):
    return ForwardKinematicsUnit(chain, IKAccConfig())


class TestFunctional:
    def test_matches_float32_chain(self, chain, fku, rng):
        chain32 = chain.astype(np.float32)
        for _ in range(5):
            q = chain.random_configuration(rng)
            position, _ = fku.run(q)
            assert np.array_equal(position, chain32.end_position(q))

    def test_close_to_float64_reference(self, chain, fku, rng):
        q = chain.random_configuration(rng)
        position, _ = fku.run(q)
        assert np.linalg.norm(position.astype(float) - chain.end_position(q)) < 1e-5

    def test_run_batch_matches_run(self, chain, fku, rng):
        qs = np.stack([chain.random_configuration(rng) for _ in range(4)])
        batch_positions, batch_report = fku.run_batch(qs)
        for i in range(4):
            single, single_report = fku.run(qs[i])
            assert np.allclose(batch_positions[i], single, atol=1e-6)
        assert batch_report.cycles == 4 * single_report.cycles


class TestTiming:
    def test_cycles_scale_linearly_with_dof(self):
        config = IKAccConfig()
        small = ForwardKinematicsUnit(paper_chain(10), config).cycles_per_fk()
        large = ForwardKinematicsUnit(paper_chain(20), config).cycles_per_fk()
        steady = max(
            config.timing.matmul4, config.timing.sincos + 2
        )
        assert large - small == 10 * steady

    def test_steady_state_set_by_slowest_of_matmul_and_screw(self, chain):
        fast_screw = IKAccConfig(timing=DatapathTiming(sincos=2, matmul4=30))
        slow_screw = IKAccConfig(timing=DatapathTiming(sincos=50, matmul4=30))
        a = ForwardKinematicsUnit(chain, fast_screw).cycles_per_fk()
        b = ForwardKinematicsUnit(chain, slow_screw).cycles_per_fk()
        assert b > a  # screw generation became the bottleneck

    def test_report_ops_match_opcounts(self, chain, fku, rng):
        from repro.ikacc.opcounts import fk_ops

        _, report = fku.run(chain.random_configuration(rng))
        assert report.ops == fk_ops(chain.dof)

    def test_accepts_prebuilt_float32_chain(self, chain):
        chain32 = chain.astype(np.float32)
        fku = ForwardKinematicsUnit(chain32, IKAccConfig())
        assert fku.chain32 is chain32
