"""Tests for the IKAcc hardware configuration."""

import pytest

from repro.ikacc.config import DatapathTiming, IKAccConfig


class TestDatapathTiming:
    def test_defaults_are_positive(self):
        timing = DatapathTiming()
        assert timing.matmul4 >= 1
        assert timing.sincos >= 1

    def test_matmul_is_tens_of_cycles(self):
        """Section 5.2: the HLS block computes the result 'in tens of
        cycles'."""
        assert 10 <= DatapathTiming().matmul4 < 100

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            DatapathTiming(mul=0)
        with pytest.raises(ValueError):
            DatapathTiming(matmul4=-1)


class TestIKAccConfig:
    def test_paper_design_point(self):
        config = IKAccConfig()
        assert config.n_ssus == 32
        assert config.speculations == 64
        assert config.frequency_hz == 1.0e9

    def test_two_waves_at_design_point(self):
        """Section 6.3: '64 in software, but IKAcc contains only 32 SSUs, so
        it needs two schedules'."""
        assert IKAccConfig().waves_per_iteration == 2

    @pytest.mark.parametrize(
        "ssus,specs,waves",
        [(32, 64, 2), (32, 32, 1), (32, 33, 2), (64, 64, 1), (8, 64, 8), (32, 1, 1)],
    )
    def test_wave_arithmetic(self, ssus, specs, waves):
        assert IKAccConfig(n_ssus=ssus, speculations=specs).waves_per_iteration == waves

    def test_cycles_to_seconds(self):
        config = IKAccConfig(frequency_hz=2.0e9)
        assert config.cycles_to_seconds(2_000_000) == pytest.approx(1e-3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IKAccConfig(n_ssus=0)
        with pytest.raises(ValueError):
            IKAccConfig(speculations=0)
        with pytest.raises(ValueError):
            IKAccConfig(frequency_hz=0.0)
        with pytest.raises(ValueError):
            IKAccConfig(broadcast_latency=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            IKAccConfig().n_ssus = 16
