"""Tests for the Serial Process Unit."""

import numpy as np
import pytest

from repro.core.alpha import buss_alpha
from repro.ikacc.config import IKAccConfig
from repro.ikacc.spu import SerialProcessUnit
from repro.kinematics.robots import paper_chain


@pytest.fixture
def chain():
    return paper_chain(12)


@pytest.fixture
def spu(chain):
    return SerialProcessUnit(chain, IKAccConfig())


class TestFunctional:
    def test_jacobian_matches_float32_chain(self, chain, spu, rng):
        chain32 = chain.astype(np.float32)
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))
        result = spu.run(q, target)
        assert np.array_equal(result.jacobian, chain32.jacobian_position(q))

    def test_dtheta_base_is_transpose_times_error(self, chain, spu, rng):
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))
        result = spu.run(q, target)
        error64 = target - chain.end_position(q)
        expected = chain.jacobian_position(q).T @ error64
        assert np.allclose(result.dtheta_base.astype(float), expected, atol=1e-4)

    def test_alpha_base_matches_equation_8(self, chain, spu, rng):
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))
        result = spu.run(q, target)
        jac = chain.jacobian_position(q)
        error = target - chain.end_position(q)
        expected = buss_alpha(error, jac @ (jac.T @ error))
        assert result.alpha_base == pytest.approx(expected, rel=1e-3)


class TestTiming:
    def test_pipelined_one_joint_per_interval(self):
        config = IKAccConfig()
        small = SerialProcessUnit(paper_chain(10), config).cycles_per_iteration()
        large = SerialProcessUnit(paper_chain(30), config).cycles_per_iteration()
        assert large - small == 20 * config.timing.matmul4

    def test_pipelined_faster_than_unpipelined(self, chain):
        piped = SerialProcessUnit(chain, IKAccConfig(spu_pipelined=True))
        flat = SerialProcessUnit(chain, IKAccConfig(spu_pipelined=False))
        assert piped.cycles_per_iteration() < flat.cycles_per_iteration()

    def test_unpipelined_charges_memory_traffic(self, chain):
        from repro.ikacc.spu import MEMORY_ROUNDTRIP_CYCLES

        flat = SerialProcessUnit(chain, IKAccConfig(spu_pipelined=False))
        stages_only = sum(flat._stage_latencies()) * chain.dof
        assert (
            flat.cycles_per_iteration()
            >= stages_only + MEMORY_ROUNDTRIP_CYCLES * chain.dof * 19
        )

    def test_pipeline_speedup_grows_with_dof(self):
        def ratio(dof):
            chain = paper_chain(dof)
            piped = SerialProcessUnit(chain, IKAccConfig(spu_pipelined=True))
            flat = SerialProcessUnit(chain, IKAccConfig(spu_pipelined=False))
            return flat.cycles_per_iteration() / piped.cycles_per_iteration()

        assert ratio(100) > ratio(12) > 1.0

    def test_reported_cycles_consistent(self, chain, spu, rng):
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))
        assert spu.run(q, target).cycles == spu.cycles_per_iteration()
