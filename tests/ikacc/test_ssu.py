"""Tests for the Speculative Search Unit."""

import numpy as np
import pytest

from repro.ikacc.config import IKAccConfig
from repro.ikacc.spu import SerialProcessUnit
from repro.ikacc.ssu import SpeculativeSearchUnit
from repro.kinematics.robots import paper_chain


@pytest.fixture
def chain():
    return paper_chain(12)


@pytest.fixture
def setup(chain, rng):
    """A realistic (theta, dtheta_base, alpha_base, target) tuple."""
    config = IKAccConfig()
    q = chain.random_configuration(rng)
    target = chain.end_position(chain.random_configuration(rng))
    spu_result = SerialProcessUnit(chain, config).run(q, target)
    return config, q, spu_result, target


class TestFunctional:
    def test_alpha_k_follows_equation_9(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        for k in (1, 17, 64):
            result = ssu.run(
                k, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2
            )
            assert result.alpha == pytest.approx(
                (k / 64) * spu_result.alpha_base, rel=1e-5
            )

    def test_k_max_reproduces_full_buss_step(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        result = ssu.run(
            64, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2
        )
        expected = q + spu_result.alpha_base * spu_result.dtheta_base.astype(float)
        assert np.allclose(result.q.astype(float), expected, atol=1e-4)

    def test_error_is_distance_to_target(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        result = ssu.run(
            10, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2
        )
        expected = np.linalg.norm(target - result.position.astype(float))
        assert result.error == pytest.approx(expected, rel=1e-5)

    def test_below_threshold_flag(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        result = ssu.run(
            1, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e9
        )
        assert result.below_threshold

    def test_invalid_k_rejected(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        with pytest.raises(ValueError):
            ssu.run(0, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2)
        with pytest.raises(ValueError):
            ssu.run(65, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2)

    def test_run_wave_matches_individual_runs(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        ks = np.array([1, 5, 33, 64])
        wave = ssu.run_wave(
            ks, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2
        )
        for result in wave:
            single = ssu.run(
                result.k, q, spu_result.dtheta_base, spu_result.alpha_base, target, 1e-2
            )
            assert result.error == pytest.approx(single.error, rel=1e-5)
            assert np.allclose(result.q, single.q, atol=1e-6)


class TestTiming:
    def test_cycles_dominated_by_fku(self, chain):
        config = IKAccConfig()
        ssu = SpeculativeSearchUnit(chain, config)
        assert ssu.cycles_per_speculation() > ssu.fku.cycles_per_fk()
        assert ssu.cycles_per_speculation() < ssu.fku.cycles_per_fk() + 100

    def test_wave_results_carry_single_speculation_latency(self, chain, setup):
        config, q, spu_result, target = setup
        ssu = SpeculativeSearchUnit(chain, config)
        wave = ssu.run_wave(
            np.array([1, 2, 3]), q, spu_result.dtheta_base, spu_result.alpha_base,
            target, 1e-2,
        )
        assert all(r.cycles == ssu.cycles_per_speculation() for r in wave)
