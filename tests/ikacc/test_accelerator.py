"""Tests for the top-level IKAcc simulator."""

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.ikacc.accelerator import IKAccSimulator
from repro.ikacc.config import IKAccConfig
from repro.kinematics.robots import paper_chain


@pytest.fixture
def chain():
    return paper_chain(12)


@pytest.fixture
def sim(chain):
    return IKAccSimulator(chain)


class TestSolve:
    def test_converges_on_reachable_target(self, chain, sim, rng):
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        assert result.converged
        assert result.error < sim.solver_config.tolerance
        assert np.allclose(chain.end_position(result.q), target, atol=2e-2)

    def test_matches_software_quick_ik_iterations(self, chain, rng):
        """The accelerator runs the same algorithm: same restart => the same
        iteration count as the float64 software solver (float32 round-off is
        far below the 1e-2 tolerance)."""
        sim = IKAccSimulator(chain)
        software = QuickIKSolver(chain, speculations=64)
        for seed in range(5):
            target = chain.end_position(chain.random_configuration(rng))
            a = sim.solve(target, rng=np.random.default_rng(seed))
            b = software.solve(target, rng=np.random.default_rng(seed))
            assert abs(a.iterations - b.iterations) <= 1

    def test_cycle_breakdown_sums_to_total(self, chain, sim, rng):
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        assert sum(result.cycle_breakdown.values()) == result.cycles

    def test_seconds_follow_frequency(self, chain, rng):
        slow = IKAccSimulator(chain, config=IKAccConfig(frequency_hz=0.5e9))
        target = chain.end_position(chain.random_configuration(rng))
        result = slow.solve(target, rng=np.random.default_rng(1))
        assert result.seconds == pytest.approx(result.cycles / 0.5e9)

    def test_energy_positive_and_consistent(self, chain, sim, rng):
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        assert result.energy_j > 0.0
        assert result.average_power_w == pytest.approx(
            result.energy_j / result.seconds
        )

    def test_average_power_near_paper_value(self, rng):
        """Table 3: 158.6 mW average.  Accept a generous band — this is a
        component model, not PrimeTime."""
        chain = paper_chain(100)
        sim = IKAccSimulator(chain)
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        assert 0.08 < result.average_power_w < 0.32

    def test_wave_early_exit_skips_second_wave(self, chain, rng):
        """With a generous tolerance the first wave already contains a hit;
        the second wave of the final iteration must not execute."""
        config = SolverConfig(tolerance=0.5)
        sim = IKAccSimulator(chain, solver_config=config)
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        if result.iterations > 0:
            assert result.waves_executed < 2 * result.iterations + 1

    def test_zero_iterations_when_start_is_solution(self, chain, rng):
        q0 = chain.random_configuration(rng)
        target = chain.end_position(q0)
        result = IKAccSimulator(chain).solve(target, q0=q0)
        assert result.iterations == 0
        assert result.converged
        assert result.cycles == result.cycle_breakdown["init"]

    def test_iteration_cap(self, chain, rng):
        config = SolverConfig(max_iterations=3)
        sim = IKAccSimulator(chain, solver_config=config)
        # Unreachable target forces the cap.
        result = sim.solve(np.array([99.0, 0.0, 0.0]), rng=rng)
        assert not result.converged
        assert result.iterations == 3

    def test_bad_target_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.solve(np.zeros(2))

    def test_solve_batch(self, chain, sim, rng):
        targets = np.stack(
            [chain.end_position(chain.random_configuration(rng)) for _ in range(3)]
        )
        results = sim.solve_batch(targets, rng=rng)
        assert len(results) == 3
        assert all(r.converged for r in results)

    def test_summary_format(self, chain, sim, rng):
        target = chain.end_position(chain.random_configuration(rng))
        text = sim.solve(target, rng=rng).summary()
        assert "IKAcc" in text
        assert "ms" in text


class TestStaticTiming:
    def test_full_iteration_includes_all_units(self, sim):
        total = sim.cycles_per_full_iteration()
        assert total > sim.spu.cycles_per_iteration()
        assert total > 2 * sim.ssu.cycles_per_speculation()

    def test_more_ssus_fewer_cycles(self, chain):
        narrow = IKAccSimulator(chain, config=IKAccConfig(n_ssus=8))
        wide = IKAccSimulator(chain, config=IKAccConfig(n_ssus=64))
        assert wide.cycles_per_full_iteration() < narrow.cycles_per_full_iteration()

    def test_paper_scale_iteration_latency(self):
        """At the design point a 100-DOF iteration is O(10 us) — the scale
        implied by Table 2 once iteration counts are factored out."""
        sim = IKAccSimulator(paper_chain(100))
        per_iter = sim.seconds_per_full_iteration()
        assert 2e-6 < per_iter < 40e-6
