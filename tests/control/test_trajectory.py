"""Tests for the trajectory-following control loop."""

import numpy as np
import pytest

from repro.control.trajectory import (
    TrajectoryFollower,
    interpolate_line,
    interpolate_waypoints,
)
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain


class TestInterpolation:
    def test_line_endpoints(self):
        line = interpolate_line([0, 0, 0], [1, 0, 0], 5)
        assert line.shape == (5, 3)
        assert np.allclose(line[0], [0, 0, 0])
        assert np.allclose(line[-1], [1, 0, 0])

    def test_line_evenly_spaced(self):
        line = interpolate_line([0, 0, 0], [1, 2, 3], 11)
        gaps = np.linalg.norm(np.diff(line, axis=0), axis=1)
        assert np.allclose(gaps, gaps[0])

    def test_line_min_steps(self):
        with pytest.raises(ValueError):
            interpolate_line([0, 0, 0], [1, 0, 0], 1)

    def test_densify_respects_max_segment(self):
        waypoints = np.array([[0.0, 0, 0], [1.0, 0, 0], [1.0, 0.5, 0]])
        dense = interpolate_waypoints(waypoints, max_segment=0.11)
        gaps = np.linalg.norm(np.diff(dense, axis=0), axis=1)
        assert np.all(gaps <= 0.11 + 1e-12)
        # Original corner points preserved.
        assert any(np.allclose(p, [1.0, 0, 0]) for p in dense)
        assert np.allclose(dense[-1], [1.0, 0.5, 0])

    def test_densify_noop_when_segments_short(self):
        waypoints = np.array([[0.0, 0, 0], [0.05, 0, 0]])
        dense = interpolate_waypoints(waypoints, max_segment=0.1)
        assert dense.shape == (2, 3)

    def test_densify_single_point(self):
        single = interpolate_waypoints(np.array([[1.0, 2.0, 3.0]]), 0.1)
        assert single.shape == (1, 3)

    def test_densify_invalid_segment(self):
        with pytest.raises(ValueError):
            interpolate_waypoints(np.zeros((2, 3)), 0.0)


class TestTrajectoryFollower:
    @pytest.fixture
    def setup(self, rng):
        chain = paper_chain(25)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=3000))
        q_start = chain.random_configuration(rng)
        goal = chain.end_position(chain.random_configuration(rng))
        waypoints = interpolate_line(chain.end_position(q_start), goal, 6)
        return chain, solver, q_start, waypoints

    def test_follows_line(self, setup):
        chain, solver, q_start, waypoints = setup
        follower = TrajectoryFollower(solver, max_segment=0.05)
        report = follower.follow(waypoints, q_start=q_start)
        assert report.solved
        assert report.max_error < solver.config.tolerance
        # One joint configuration per solved waypoint plus the start.
        assert report.joint_path.shape[0] == len(report.results) + 1

    def test_final_pose_reaches_goal(self, setup):
        chain, solver, q_start, waypoints = setup
        report = TrajectoryFollower(solver).follow(waypoints, q_start=q_start)
        final_position = chain.end_position(report.joint_path[-1])
        assert np.linalg.norm(final_position - waypoints[-1]) < 1.5e-2

    def test_densification_smooths_joint_motion(self, setup):
        chain, solver, q_start, waypoints = setup
        coarse = TrajectoryFollower(solver).follow(waypoints, q_start=q_start)
        fine = TrajectoryFollower(solver, max_segment=0.02).follow(
            waypoints, q_start=q_start
        )
        assert fine.solved
        if coarse.solved and coarse.joint_velocity_proxy().size:
            assert (
                fine.joint_velocity_proxy().max()
                <= coarse.joint_velocity_proxy().max() + 1e-9
            )

    def test_stop_on_failure(self, rng):
        chain = paper_chain(12)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=3))
        follower = TrajectoryFollower(solver)
        unreachable = np.array([[99.0, 0.0, 0.0], [99.0, 1.0, 0.0]])
        report = follower.follow(unreachable, q_start=chain.random_configuration(rng))
        assert not report.solved
        assert len(report.results) == 1  # stopped at the first failure

    def test_continue_on_failure(self, rng):
        chain = paper_chain(12)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=3))
        follower = TrajectoryFollower(solver)
        unreachable = np.array([[99.0, 0.0, 0.0], [99.0, 1.0, 0.0]])
        report = follower.follow(
            unreachable, q_start=chain.random_configuration(rng),
            stop_on_failure=False,
        )
        assert len(report.results) == 2

    def test_report_statistics(self, setup):
        chain, solver, q_start, waypoints = setup
        report = TrajectoryFollower(solver).follow(waypoints, q_start=q_start)
        assert report.total_iterations == sum(r.iterations for r in report.results)
        assert report.mean_iterations == pytest.approx(
            report.total_iterations / len(report.results)
        )

    def test_empty_report_statistics(self):
        from repro.control.trajectory import TrackingReport

        report = TrackingReport(
            waypoints=np.zeros((0, 3)), joint_path=np.zeros((1, 3))
        )
        assert report.mean_iterations == 0.0
        assert report.max_error == 0.0
        assert report.joint_velocity_proxy().size == 0


def _result(q, converged):
    from repro.core.result import IKResult

    q = np.asarray(q, dtype=float)
    return IKResult(
        q=q, converged=converged, iterations=1, error=0.0,
        target=np.zeros(3), solver="JT-DLS", dof=q.size,
    )


class TestNextSeed:
    def test_converged_result_becomes_seed(self):
        from repro.control.trajectory import next_seed

        q = np.array([0.1, 0.2])
        fallback = np.zeros(2)
        np.testing.assert_array_equal(
            next_seed(_result(q, converged=True), fallback), q
        )

    def test_unconverged_or_nonfinite_keeps_fallback(self):
        from repro.control.trajectory import next_seed

        fallback = np.array([0.5, 0.5])
        capped = _result([0.1, 0.2], converged=False)
        assert next_seed(capped, fallback) is fallback
        blown = _result([np.nan, 0.2], converged=True)
        assert next_seed(blown, fallback) is fallback


class TestServingParity:
    def test_follower_matches_tracking_session(self, rng):
        # The control loop and the serving layer share one warm-start
        # contract (next_seed), so following a trajectory offline must
        # reproduce a TrackingSession streaming the same waypoints from
        # the same start configuration, bit for bit.
        from repro.serving import IKServer, ServerConfig, SessionManager
        from repro.solvers import make_solver

        chain = paper_chain(12)
        config = SolverConfig(tolerance=1e-2, max_iterations=300)
        q_start = chain.random_configuration(rng)
        goal = chain.end_position(chain.random_configuration(rng))
        waypoints = interpolate_line(chain.end_position(q_start), goal, 5)

        solver = make_solver("fdik", chain, config=config)
        report = TrajectoryFollower(solver).follow(
            waypoints, q_start=q_start, stop_on_failure=False
        )

        server_config = ServerConfig(
            max_wait_ms=1.0, seed_cache_capacity=0, warm_start=False
        )
        with IKServer(server_config) as srv:
            manager = SessionManager(srv)
            session = manager.open(
                chain, solver="fdik", q0=q_start,
                tolerance=1e-2, max_iterations=300,
            )
            served = [session.tick(w).result(timeout=120) for w in waypoints]
            manager.close_all()

        assert len(served) == len(report.results)
        for offline, online in zip(report.results, served):
            np.testing.assert_array_equal(offline.q, online.q)
            assert offline.iterations == online.iterations
            assert offline.converged == online.converged
            assert offline.error == online.error
