"""ResilientSolver tests: fallback order, accounting, API integration."""

import pickle

import numpy as np
import pytest

from repro import api
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.resilience import (
    DEFAULT_FALLBACK_CHAIN,
    DivergingSolver,
    ResilienceConfig,
    ResilientSolver,
    WatchdogConfig,
    rejected_result,
)
from repro.telemetry import SummaryTracer

CHAIN = paper_chain(6)
CONFIG = SolverConfig(max_iterations=500, record_history=False)


def _reachable(seed=0):
    rng = np.random.default_rng(seed)
    return CHAIN.end_position(CHAIN.random_configuration(rng))


class TestConfig:
    def test_defaults(self):
        config = ResilienceConfig()
        assert config.fallback_chain == DEFAULT_FALLBACK_CHAIN
        assert config.reseed

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(attempts_per_solver=0)
        with pytest.raises(ValueError):
            ResilienceConfig(reach_margin=-0.1)


class TestRejectedResult:
    def test_placeholder_shape(self):
        result = rejected_result(CHAIN, [0.1, 0.2, 0.3], "x", status="timeout")
        assert not result.converged
        assert np.isnan(result.error)
        assert result.iterations == 0
        assert result.status == "timeout"
        assert result.q.shape == (CHAIN.dof,)


class TestResilientSolver:
    def test_primary_success_passthrough(self):
        solver = ResilientSolver(CHAIN, primary="JT-Speculation", config=CONFIG)
        result = solver.solve(_reachable(3), rng=np.random.default_rng(4))
        assert result.converged
        assert result.status == "converged"
        assert result.solver == "JT-Speculation+resilient"
        assert not solver.last_report  # clean solve leaves no records

    def test_failing_primary_degrades(self):
        primary = DivergingSolver(CHAIN, config=SolverConfig(max_iterations=20))
        solver = ResilientSolver(CHAIN, primary=primary, config=CONFIG)
        result = solver.solve(_reachable(5), rng=np.random.default_rng(6))
        assert result.converged
        # the primary's failed attempt is on the record
        assert solver.last_report.records[0].solver == "diverging"
        # cost accounting spans the failed attempt plus the recovery
        assert result.iterations > 20 - 1

    def test_exhausted_chain_keeps_best_failure(self):
        tiny = SolverConfig(max_iterations=1, record_history=False)
        solver = ResilientSolver(CHAIN, config=tiny)
        tracer = SummaryTracer()
        result = solver.solve(
            _reachable(7), rng=np.random.default_rng(8), tracer=tracer
        )
        assert not result.converged
        assert result.status == "max_iterations"
        assert np.all(np.isfinite(result.q))
        # one iteration per chained solver accumulated
        assert result.iterations == len(solver.solvers)
        assert tracer.counters.get("solve_failed") == 1
        assert tracer.counters.get("fallback_used") == 1
        assert len(solver.last_report) == len(solver.solvers)

    def test_exception_in_solver_is_recorded_not_raised(self):
        class Exploding:
            name = "exploding"
            chain = CHAIN
            config = CONFIG

            def solve(self, *a, **k):
                raise RuntimeError("boom")

        solver = ResilientSolver(CHAIN, primary=Exploding(), config=CONFIG)
        result = solver.solve(_reachable(9), rng=np.random.default_rng(10))
        assert result.converged  # fallback chain recovered
        kinds = [r.kind for r in solver.last_report]
        assert "exception" in kinds

    def test_guard_rejection_returns_placeholder(self):
        solver = ResilientSolver(CHAIN, config=CONFIG)
        result = solver.solve([np.nan, 0.0, 0.0])
        assert result.status == "nonfinite_target"
        result = solver.solve([99.0, 0.0, 0.0])
        assert result.status == "unreachable"

    def test_dedups_primary_from_chain(self):
        solver = ResilientSolver(CHAIN, primary="JT-Speculation", config=CONFIG)
        names = [s.name for s in solver.solvers]
        assert names == ["JT-Speculation", "JT-DLS", "J-1-SVD"]

    def test_custom_chain_and_watchdog_merge(self):
        res = ResilienceConfig(
            fallback_chain=("JT-DLS",),
            watchdog=WatchdogConfig(stall_window=50),
        )
        solver = ResilientSolver(CHAIN, config=CONFIG, resilience=res)
        assert [s.name for s in solver.solvers] == ["JT-DLS"]
        assert solver.config.watchdog is res.watchdog

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ResilientSolver(
                CHAIN, resilience=ResilienceConfig(fallback_chain=())
            )

    def test_picklable(self):
        solver = ResilientSolver(CHAIN, config=CONFIG)
        clone = pickle.loads(pickle.dumps(solver))
        assert [s.name for s in clone.solvers] == [s.name for s in solver.solvers]


class TestApiIntegration:
    def test_solve_resilience_true(self):
        result = api.solve(
            CHAIN, _reachable(11), seed=12, resilience=True,
            max_iterations=500,
        )
        assert result.converged
        assert result.solver.endswith("+resilient")

    def test_solve_resilience_never_raises_on_nan(self):
        result = api.solve(CHAIN, [np.nan, 0.0, 0.0], resilience=True)
        assert result.status == "nonfinite_target"

    def test_plain_solve_still_raises_on_bad_shape(self):
        with pytest.raises(ValueError):
            api.solve(CHAIN, [0.1, 0.2])

    def test_restarts_and_resilience_exclusive(self):
        with pytest.raises(ValueError):
            api.solve(CHAIN, _reachable(), restarts=3, resilience=True)

    def test_batch_fallback_config_plumbs_through(self):
        batch = api.solve_batch(
            CHAIN,
            np.stack([_reachable(i) for i in range(3)]),
            on_error="fallback",
            resilience=ResilienceConfig(fallback_chain=("JT-DLS",)),
            max_iterations=500,
            seed=13,
        )
        assert len(batch) == 3
        assert batch.failures is not None and not batch.failures
