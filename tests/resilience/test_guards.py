"""Input-guard tests: classification, batch vectorisation, API boundary."""

import numpy as np
import pytest

from repro import api
from repro.kinematics.robots import paper_chain
from repro.resilience import (
    FATAL_GUARD_KINDS,
    FailureReport,
    GuardViolation,
    guard_target,
    guard_targets,
    reach_bound,
)

CHAIN = paper_chain(6)


class TestGuardTarget:
    def test_reachable_passes(self):
        rng = np.random.default_rng(0)
        target = CHAIN.end_position(CHAIN.random_configuration(rng))
        assert guard_target(CHAIN, target) is None

    def test_nonfinite_rejected(self):
        record = guard_target(CHAIN, [np.nan, 0.0, 0.0])
        assert record is not None
        assert record.kind == "nonfinite_target"
        assert record.kind in FATAL_GUARD_KINDS
        assert record.stage == "guard"

    def test_inf_rejected(self):
        record = guard_target(CHAIN, [np.inf, 0.0, 0.0])
        assert record is not None and record.kind == "nonfinite_target"

    def test_bad_shape_rejected(self):
        record = guard_target(CHAIN, [0.1, 0.2])
        assert record is not None
        assert record.kind == "bad_shape"
        assert record.kind in FATAL_GUARD_KINDS

    def test_unreachable_flagged_not_fatal(self):
        record = guard_target(CHAIN, [99.0, 0.0, 0.0])
        assert record is not None
        assert record.kind == "unreachable"
        assert record.kind not in FATAL_GUARD_KINDS

    def test_reach_margin_expands_bound(self):
        bound = reach_bound(CHAIN)
        target = [bound * 1.05, 0.0, 0.0]
        assert guard_target(CHAIN, target).kind == "unreachable"
        assert guard_target(CHAIN, target, reach_margin=0.2) is None

    def test_index_propagates(self):
        record = guard_target(CHAIN, [np.nan, 0.0, 0.0], index=7)
        assert record.index == 7


class TestGuardTargets:
    def test_matches_scalar_guard(self):
        targets = np.array(
            [
                [0.1, 0.1, 0.1],
                [np.nan, 0.0, 0.0],
                [99.0, 0.0, 0.0],
                [0.2, 0.0, 0.1],
            ]
        )
        records = guard_targets(CHAIN, targets)
        assert [r.index for r in records] == [1, 2]
        assert [r.kind for r in records] == ["nonfinite_target", "unreachable"]

    def test_clean_batch_empty(self):
        rng = np.random.default_rng(1)
        targets = np.stack(
            [CHAIN.end_position(CHAIN.random_configuration(rng)) for _ in range(5)]
        )
        assert guard_targets(CHAIN, targets) == []


class TestGuardViolation:
    def test_is_value_error_with_report(self):
        record = guard_target(CHAIN, [np.nan, 0.0, 0.0], index=3)
        exc = GuardViolation(FailureReport([record]))
        assert isinstance(exc, ValueError)
        assert exc.report.indices == [3]
        assert "nonfinite_target" in str(exc)


class TestApiBoundary:
    def test_batch_raise_mode_rejects_nonfinite(self):
        targets = [[0.1, 0.1, 0.1], [np.nan, 0.0, 0.0]]
        with pytest.raises(GuardViolation) as excinfo:
            api.solve_batch(CHAIN, targets, workers=1, max_iterations=10)
        assert excinfo.value.report.by_kind() == {"nonfinite_target": 1}

    def test_batch_raise_mode_attempts_unreachable(self):
        # Advisory kind: historical hit-the-cap behaviour must survive.
        batch = api.solve_batch(
            CHAIN, [[99.0, 0.0, 0.0]], workers=1, max_iterations=5, seed=0
        )
        assert batch[0].iterations == 5
        assert batch[0].status == "max_iterations"

    def test_batch_skip_mode_rejects_both(self):
        targets = [[np.nan, 0.0, 0.0], [99.0, 0.0, 0.0], [0.1, 0.1, 0.1]]
        batch = api.solve_batch(
            CHAIN, targets, on_error="skip", max_iterations=500, seed=0
        )
        assert len(batch) == 3
        assert batch[0].status == "nonfinite_target"
        assert batch[1].status == "unreachable"
        assert not batch[0].converged and np.isnan(batch[0].error)
        assert batch.failures.by_kind() == {
            "nonfinite_target": 1,
            "unreachable": 1,
        }

    def test_guard_rejected_counter(self):
        from repro.telemetry import SummaryTracer

        tracer = SummaryTracer()
        api.solve_batch(
            CHAIN,
            [[np.nan, 0.0, 0.0], [0.1, 0.1, 0.1]],
            on_error="skip",
            max_iterations=200,
            seed=0,
            tracer=tracer,
        )
        assert tracer.counters.get("guard_rejected") == 1
        assert tracer.counters.get("solve_failed") == 1
