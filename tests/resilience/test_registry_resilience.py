"""Registry-wide resilience conformance: every family gets the machinery free.

The guards / watchdogs / fallback / telemetry layers hook the *shared
driver* and the registry, not individual solver classes — so a new solver
family (``fdik`` and ``mdik`` in this PR) must inherit all of them with
zero integration code.  These sweeps parametrize over ``SOLVER_REGISTRY``
itself rather than a hard-coded list: registering a family IS the act of
enrolling it here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.resilience import (
    DivergingSolver,
    ResilienceConfig,
    ResilientSolver,
    WatchdogConfig,
)
from repro.solvers.registry import SOLVER_REGISTRY, make_solver
from repro.telemetry import SummaryTracer

CHAIN = paper_chain(6)
FAMILIES = sorted(SOLVER_REGISTRY)


def _reachable(seed=0):
    rng = np.random.default_rng(seed)
    return CHAIN.end_position(CHAIN.random_configuration(rng))


class TestRegistryCoversNewFamilies:
    def test_new_families_registered(self):
        # The point of this PR's solver satellite: both new families are
        # in the registry, so every sweep below (and the conformance
        # tier's bit-identity sweeps) exercises them automatically.
        assert "fdik" in SOLVER_REGISTRY
        assert "mdik" in SOLVER_REGISTRY


@pytest.mark.parametrize("name", FAMILIES)
class TestGuards:
    def test_facade_guard_rejects_nonfinite_target(self, name):
        result = api.solve(
            CHAIN, [np.nan, 0.0, 0.0], name, resilience=True
        )
        assert not result.converged
        assert result.status == "nonfinite_target"
        assert np.isnan(result.error)
        assert result.q.shape == (CHAIN.dof,)

    def test_guard_counter_fires(self, name):
        tracer = SummaryTracer()
        api.solve(
            CHAIN, [np.inf, 0.0, 0.0], name, resilience=True, tracer=tracer
        )
        assert tracer.counters.get("guard_rejected") == 1


@pytest.mark.parametrize("name", FAMILIES)
class TestWatchdogs:
    def test_deadline_watchdog_trips_in_the_shared_driver(self, name):
        # An unreachable target never converges; the deadline detector
        # must cut the solve long before the iteration cap, whatever the
        # family's step rule is.
        config = SolverConfig(
            max_iterations=1_000_000,
            watchdog=WatchdogConfig(deadline_s=0.05),
        )
        solver = make_solver(name, CHAIN, config=config)
        result = solver.solve(
            np.array([99.0, 0.0, 0.0]), rng=np.random.default_rng(1)
        )
        assert not result.converged
        assert result.status == "deadline"
        assert result.iterations < 1_000_000

    def test_watchdog_counter_fires(self, name):
        tracer = SummaryTracer()
        config = SolverConfig(
            max_iterations=1_000_000,
            watchdog=WatchdogConfig(deadline_s=0.05),
        )
        solver = make_solver(name, CHAIN, config=config)
        solver.solve(
            np.array([99.0, 0.0, 0.0]),
            rng=np.random.default_rng(1),
            tracer=tracer,
        )
        assert tracer.counters.get("watchdog_deadline") == 1


@pytest.mark.parametrize("name", FAMILIES)
class TestFallback:
    def test_family_recovers_a_diverging_primary(self, name):
        # Every registry family is a usable fallback-chain member.
        primary = DivergingSolver(
            CHAIN, config=SolverConfig(max_iterations=20)
        )
        solver = ResilientSolver(
            CHAIN,
            primary=primary,
            config=SolverConfig(max_iterations=800, record_history=False),
            resilience=ResilienceConfig(fallback_chain=(name,)),
        )
        result = solver.solve(_reachable(3), rng=np.random.default_rng(2))
        assert result.converged
        assert result.status == "converged"
        # the primary's failure is on the record
        assert solver.last_report.records[0].solver == "diverging"

    def test_exhausted_family_counts_telemetry(self, name):
        # Capped at one iteration nothing converges: the family must
        # surface solve_failed / fallback_used like every other member.
        tiny = SolverConfig(max_iterations=1, record_history=False)
        # The chain member must differ from the primary (a duplicate is
        # deduped and there would be nothing to fall back to).
        fallback = "J-1-SVD" if name == "JT-DLS" else "JT-DLS"
        solver = ResilientSolver(
            CHAIN,
            primary=name,
            config=tiny,
            resilience=ResilienceConfig(fallback_chain=(fallback,)),
        )
        tracer = SummaryTracer()
        result = solver.solve(
            _reachable(5), rng=np.random.default_rng(6), tracer=tracer
        )
        assert not result.converged
        assert tracer.counters.get("solve_failed") == 1
        assert tracer.counters.get("fallback_used") == 1


@pytest.mark.parametrize("name", FAMILIES)
def test_serving_accepts_every_family(name):
    # The serving layer resolves solvers through the same registry — a
    # one-request smoke per family (the session differential tier covers
    # the streamed case for the new families in depth).
    from repro.serving import IKServer, ServerConfig, SolveRequest

    with IKServer(ServerConfig(max_wait_ms=1.0, warm_start=False)) as srv:
        result = srv.submit(SolveRequest(
            CHAIN, _reachable(7), name, seed=9,
            tolerance=1e-2, max_iterations=800,
        )).result(timeout=120)
    assert result.dof == CHAIN.dof
    assert np.all(np.isfinite(result.q))
