"""Regression tests: non-finite updates must exit typed, not burn the budget.

Before the guard, a NaN Jacobian propagated NaN into ``q``; NaN error
comparisons are always False, so the scalar driver looped to the full
iteration cap computing garbage, and the lock-step engines silently
deactivated the row (dropping it from ``active`` with no status at all).
"""

import numpy as np

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.resilience import NaNJacobianChain
from repro.solvers.batched import BatchedJacobianTranspose
from repro.solvers.jacobian_transpose import JacobianTransposeSolver
from repro.telemetry import SummaryTracer

CAP = 500


def _target(chain, seed=0):
    rng = np.random.default_rng(seed)
    return chain.end_position(chain.random_configuration(rng))


class TestScalarDriver:
    def test_nan_jacobian_exits_early_with_finite_state(self):
        chain = NaNJacobianChain(paper_chain(6), after_calls=3)
        solver = JacobianTransposeSolver(
            chain, config=SolverConfig(max_iterations=CAP)
        )
        result = solver.solve(
            _target(paper_chain(6)), rng=np.random.default_rng(1)
        )
        assert result.status == "nonfinite"
        assert not result.converged
        assert result.iterations < CAP  # the cap is NOT burned
        # the driver rewinds to the last finite state
        assert np.all(np.isfinite(result.q))
        assert np.isfinite(result.error)

    def test_nonfinite_exit_counter(self):
        chain = NaNJacobianChain(paper_chain(6), after_calls=0)
        solver = JacobianTransposeSolver(
            chain, config=SolverConfig(max_iterations=CAP)
        )
        tracer = SummaryTracer()
        solver.solve(
            _target(paper_chain(6)), rng=np.random.default_rng(1), tracer=tracer
        )
        assert tracer.counters.get("nonfinite_exits") == 1


class TestLockStepEngine:
    def test_nan_jacobian_rows_exit_typed(self):
        base = paper_chain(6)
        chain = NaNJacobianChain(base, after_calls=2)
        engine = BatchedJacobianTranspose(
            chain, config=SolverConfig(max_iterations=CAP)
        )
        targets = np.stack([_target(base, s) for s in range(3)])
        tracer = SummaryTracer()
        batch = engine.solve_batch(
            targets, rng=np.random.default_rng(2), tracer=tracer
        )
        assert len(batch) == 3
        statuses = {r.status for r in batch.results}
        # every row either converged before the poison or exited typed
        assert statuses <= {"converged", "nonfinite"}
        assert "nonfinite" in statuses
        for r in batch.results:
            if r.status == "nonfinite":
                assert not r.converged
                assert r.iterations < CAP
        assert tracer.counters.get("nonfinite_exits", 0) >= 1

    def test_healthy_batch_statuses(self):
        base = paper_chain(6)
        engine = BatchedJacobianTranspose(
            base, config=SolverConfig(max_iterations=2000)
        )
        targets = np.stack([_target(base, s) for s in range(3)])
        batch = engine.solve_batch(targets, rng=np.random.default_rng(2))
        for r in batch.results:
            assert r.status in ("converged", "max_iterations")
            assert r.status == ("converged" if r.converged else "max_iterations")
