"""Tests for the resilience layer (guards, watchdogs, fallback chains)."""
