"""Watchdog unit tests plus their integration with the shared driver."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.resilience import (
    DivergingSolver,
    SleepyStepSolver,
    StallingSolver,
    Watchdog,
    WatchdogConfig,
)
from repro.telemetry import SummaryTracer

CHAIN = paper_chain(6)


class TestConfig:
    def test_defaults_inactive(self):
        config = WatchdogConfig()
        assert not config.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"divergence_window": -1},
            {"stall_window": -2},
            {"stall_min_delta": -1e-9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WatchdogConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 1.0},
            {"divergence_window": 3},
            {"stall_window": 5},
        ],
    )
    def test_any_detector_activates(self, kwargs):
        assert WatchdogConfig(**kwargs).active


class TestDetectors:
    def test_divergence_trips_after_window(self):
        wd = WatchdogConfig(divergence_window=3).start()
        assert wd.check(1.0) is None
        assert wd.check(2.0) is None  # growing x1
        assert wd.check(3.0) is None  # growing x2
        assert wd.check(4.0) == "diverged"  # growing x3

    def test_divergence_resets_on_improvement(self):
        wd = WatchdogConfig(divergence_window=2).start()
        wd.check(1.0)
        wd.check(2.0)  # growing x1
        wd.check(1.5)  # reset
        assert wd.check(2.0) is None  # growing x1 again
        assert wd.check(2.5) == "diverged"

    def test_stall_trips_on_plateau(self):
        wd = WatchdogConfig(stall_window=3, stall_min_delta=1e-6).start()
        assert wd.check(1.0) is None  # baseline
        assert wd.check(1.0) is None  # flat x1
        assert wd.check(1.0) is None  # flat x2
        assert wd.check(1.0) == "stalled"  # flat x3

    def test_stall_resets_on_progress(self):
        wd = WatchdogConfig(stall_window=2, stall_min_delta=1e-6).start()
        wd.check(1.0)
        assert wd.check(0.5) is None  # real improvement resets
        assert wd.check(0.5) is None
        assert wd.check(0.5) == "stalled"

    def test_deadline_uses_injected_clock(self):
        now = [0.0]
        wd = WatchdogConfig(deadline_s=1.0).start(clock=lambda: now[0])
        assert wd.check(1.0) is None
        now[0] = 0.9
        assert wd.check(0.9) is None
        now[0] = 1.1
        assert wd.check(0.8) == "deadline"
        assert wd.elapsed == pytest.approx(1.1)

    def test_repr_mentions_config(self):
        assert "Watchdog" in repr(Watchdog(WatchdogConfig(stall_window=1)))


class TestDriverIntegration:
    def _target(self, seed=0):
        rng = np.random.default_rng(seed)
        return CHAIN.end_position(CHAIN.random_configuration(rng)) + 0.05

    def test_divergence_early_exit(self):
        config = SolverConfig(
            max_iterations=500, watchdog=WatchdogConfig(divergence_window=5)
        )
        result = DivergingSolver(CHAIN, config=config).solve(
            self._target(), rng=np.random.default_rng(1)
        )
        assert result.status == "diverged"
        assert not result.converged
        assert result.iterations <= 10  # far below the cap

    def test_stall_early_exit(self):
        config = SolverConfig(
            max_iterations=500, watchdog=WatchdogConfig(stall_window=8)
        )
        result = StallingSolver(CHAIN, config=config).solve(
            self._target(), rng=np.random.default_rng(1)
        )
        assert result.status == "stalled"
        assert result.iterations <= 10

    def test_deadline_early_exit(self):
        config = SolverConfig(
            max_iterations=10_000,
            watchdog=WatchdogConfig(deadline_s=0.05),
        )
        solver = SleepyStepSolver(CHAIN, config=config, nap_per_step=0.02)
        result = solver.solve(self._target(), rng=np.random.default_rng(1))
        assert result.status == "deadline"
        assert result.iterations < 100

    def test_trip_emits_counter(self):
        tracer = SummaryTracer()
        config = SolverConfig(
            max_iterations=500, watchdog=WatchdogConfig(divergence_window=4)
        )
        DivergingSolver(CHAIN, config=config).solve(
            self._target(), rng=np.random.default_rng(1), tracer=tracer
        )
        assert tracer.counters.get("watchdog_diverged") == 1

    def test_unconfigured_driver_statuses(self):
        solver = StallingSolver(CHAIN, config=SolverConfig(max_iterations=5))
        result = solver.solve(self._target(), rng=np.random.default_rng(1))
        assert result.status == "max_iterations"
        assert not result.converged

    def test_converged_status(self):
        from repro.solvers.registry import make_solver

        rng = np.random.default_rng(3)
        target = CHAIN.end_position(CHAIN.random_configuration(rng))
        solver = make_solver(
            "JT-Speculation",
            CHAIN,
            config=SolverConfig(
                max_iterations=2000,
                watchdog=WatchdogConfig(divergence_window=50, stall_window=200),
            ),
        )
        result = solver.solve(target, rng=np.random.default_rng(4))
        assert result.converged
        assert result.status == "converged"
