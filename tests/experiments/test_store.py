"""Store tier: WAL/versioning, round-trips, constraints, locking, queries."""

from __future__ import annotations

import math
import sqlite3

import pytest

from repro.experiments import store as store_mod
from repro.experiments.store import (
    SCHEMA_VERSION,
    Regression,
    ResultStore,
    StoreLocked,
    StoreVersionError,
    metric_direction,
)


@pytest.fixture
def db(tmp_path):
    with ResultStore(tmp_path / "exp.sqlite") as s:
        yield s


def _one_cell_run(db, name="run", key="cell", source="sweep"):
    run_id = db.create_run(name, source=source)
    db.ensure_cells(run_id, [(key, None)])
    return run_id


class TestSchemaContract:
    def test_wal_mode_and_user_version(self, db):
        mode = db.conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        assert db.schema_version == SCHEMA_VERSION

    def test_reopen_is_idempotent(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        with ResultStore(path) as s:
            s.create_run("first")
        with ResultStore(path) as s:
            assert s.schema_version == SCHEMA_VERSION
            assert len(s.runs()) == 1

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(StoreVersionError, match="newer|upgrade"):
            ResultStore(path)

    def test_migration_hook_runs_in_order(self, tmp_path, monkeypatch):
        path = tmp_path / "exp.sqlite"
        with ResultStore(path) as s:
            s.create_run("legacy")
        applied = []

        def migrate_1(conn):
            applied.append(1)
            conn.execute("ALTER TABLE runs ADD COLUMN note TEXT")

        def migrate_2(conn):
            applied.append(2)

        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 2)
        monkeypatch.setattr(store_mod, "MIGRATIONS", {
            SCHEMA_VERSION: migrate_1,
            SCHEMA_VERSION + 1: migrate_2,
        })
        with ResultStore(path) as s:
            assert applied == [1, 2]
            assert s.schema_version == SCHEMA_VERSION + 2
            # The migrated column exists and old rows survive.
            row = s.runs()[0]
            assert row["name"] == "legacy"
            assert "note" in row

    def test_missing_migration_step_refused(self, tmp_path, monkeypatch):
        path = tmp_path / "exp.sqlite"
        ResultStore(path).close()
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        monkeypatch.setattr(store_mod, "MIGRATIONS", {})
        with pytest.raises(StoreVersionError, match="no migration"):
            ResultStore(path)


class TestMetricsRoundTrip:
    def test_bit_identical_floats(self, db):
        run_id = _one_cell_run(db)
        values = {
            "sum": 0.1 + 0.2,
            "tiny": 5e-324,
            "huge": 1.7976931348623157e308,
            "third": 1.0 / 3.0,
        }
        db.record_metrics(run_id, "cell", values)
        stored = db.metrics_for_cell(run_id, "cell")
        for name, value in values.items():
            assert stored[name] == value
            assert stored[name].hex() == float(value).hex()

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_rejected(self, db, bad):
        run_id = _one_cell_run(db)
        with pytest.raises(ValueError, match="allow_nan"):
            db.record_metrics(run_id, "cell", {"m": bad})

    @pytest.mark.parametrize("bad", [True, None, "3.0", [1.0]])
    def test_non_numeric_rejected(self, db, bad):
        run_id = _one_cell_run(db)
        with pytest.raises(TypeError, match="must be a number"):
            db.record_metrics(run_id, "cell", {"m": bad})

    def test_upsert_overwrites_not_duplicates(self, db):
        run_id = _one_cell_run(db)
        db.record_metrics(run_id, "cell", {"m": 1.0})
        db.record_metrics(run_id, "cell", {"m": 2.0})
        assert db.metrics_for_cell(run_id, "cell") == {"m": 2.0}
        count = db.conn.execute("SELECT COUNT(*) FROM metrics").fetchone()[0]
        assert count == 1

    def test_direction_override_beats_heuristic(self, db):
        run_id = _one_cell_run(db)
        db.record_metrics(
            run_id, "cell", {"weird_speedup": 1.0},
            directions={"weird_speedup": "lower"},
        )
        row = db.conn.execute(
            "SELECT direction FROM metrics WHERE name = 'weird_speedup'"
        ).fetchone()
        assert row["direction"] == "lower"


class TestCells:
    def test_ensure_cells_is_idempotent(self, db):
        run_id = db.create_run("run")
        cells = [("a", None), ("b", None)]
        db.ensure_cells(run_id, cells)
        db.mark_cell(run_id, "a", "done")
        db.ensure_cells(run_id, cells)  # resume path: re-insert attempt
        statuses = db.cell_statuses(run_id)
        assert statuses == {"a": "done", "b": "pending"}
        count = db.conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        assert count == 2

    def test_mark_unknown_cell_raises(self, db):
        run_id = db.create_run("run")
        with pytest.raises(KeyError):
            db.mark_cell(run_id, "ghost", "done")

    def test_bad_status_rejected(self, db):
        run_id = _one_cell_run(db)
        with pytest.raises(ValueError):
            db.mark_cell(run_id, "cell", "exploded")


class TestArtifacts:
    def test_round_trip_payload(self, db):
        run_id = _one_cell_run(db)
        payload = {"nested": {"values": [1, 2.5, "x"]}, "ok": True}
        db.record_artifact(run_id, "blob", payload, cell_key="cell")
        (artifact,) = db.artifacts(run_id)
        assert artifact["name"] == "blob"
        assert artifact["payload"] == payload

    def test_nan_payload_rejected(self, db):
        run_id = db.create_run("run")
        with pytest.raises(ValueError):
            db.record_artifact(run_id, "blob", {"x": float("nan")})


class TestQueries:
    def test_latest_metric_prefers_newest_run(self, db):
        for value in (1.0, 2.0, 3.0):
            run_id = _one_cell_run(db, name="bench")
            db.record_metrics(run_id, "cell", {"wall_s": value})
        assert db.latest_metric("wall_s") == 3.0
        assert db.latest_metric("wall_s", run_name="bench") == 3.0
        assert db.latest_metric("wall_s", cell_key="cell") == 3.0
        assert db.latest_metric("missing") is None

    def test_compare_runs_joins_on_cell_and_metric(self, db):
        a = _one_cell_run(db, name="bench")
        db.record_metrics(a, "cell", {"wall_s": 2.0, "only_a": 1.0})
        b = _one_cell_run(db, name="bench")
        db.record_metrics(b, "cell", {"wall_s": 3.0, "only_b": 1.0})
        rows = db.compare_runs(a, b)
        assert [r["metric"] for r in rows] == ["wall_s"]
        assert rows[0]["value_a"] == 2.0
        assert rows[0]["value_b"] == 3.0
        assert rows[0]["ratio"] == pytest.approx(1.5)

    def test_regressions_direction_aware(self, db):
        a = _one_cell_run(db, name="bench")
        db.record_metrics(a, "cell", {"wall_s": 1.0, "speedup": 4.0})
        b = _one_cell_run(db, name="bench")
        # Latency doubled (lower-is-better) and speedup halved
        # (higher-is-better): both must flag.
        db.record_metrics(b, "cell", {"wall_s": 2.0, "speedup": 2.0})
        flagged = db.regressions(threshold=0.1)
        assert sorted(r.metric for r in flagged) == ["speedup", "wall_s"]
        for r in flagged:
            assert isinstance(r, Regression)
            assert r.baseline_run_id == a
            assert r.latest_run_id == b
        wall = next(r for r in flagged if r.metric == "wall_s")
        assert wall.ratio == pytest.approx(2.0)

    def test_regressions_quiet_on_improvement(self, db):
        a = _one_cell_run(db, name="bench")
        db.record_metrics(a, "cell", {"wall_s": 2.0, "speedup": 2.0})
        b = _one_cell_run(db, name="bench")
        db.record_metrics(b, "cell", {"wall_s": 1.0, "speedup": 4.0})
        assert db.regressions(threshold=0.1) == []

    def test_regressions_need_history(self, db):
        run_id = _one_cell_run(db, name="solo")
        db.record_metrics(run_id, "cell", {"wall_s": 1.0})
        assert db.regressions() == []

    def test_regressions_within_threshold_quiet(self, db):
        a = _one_cell_run(db, name="bench")
        db.record_metrics(a, "cell", {"wall_s": 1.0})
        b = _one_cell_run(db, name="bench")
        db.record_metrics(b, "cell", {"wall_s": 1.05})
        assert db.regressions(threshold=0.1) == []
        assert len(db.regressions(threshold=0.01)) == 1

    def test_negative_threshold_rejected(self, db):
        with pytest.raises(ValueError):
            db.regressions(threshold=-0.1)


class TestLocking:
    def test_store_locked_translation(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ResultStore(path).close()
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            with ResultStore(path, timeout_s=0.05) as s:
                with pytest.raises(StoreLocked, match="locked"):
                    s.create_run("blocked")
        finally:
            blocker.rollback()
            blocker.close()


def test_metric_direction_heuristic():
    assert metric_direction("headline_speedup") == "higher"
    assert metric_direction("latency_p99_s") == "lower"
    assert metric_direction("throughput_rps") == "higher"
    assert metric_direction("mean_iterations") == "lower"
    assert metric_direction("convergence_rate") == "higher"
