"""Runner tier: full sweeps, resume semantics, kill injection, telemetry."""

from __future__ import annotations

import pytest

from repro.experiments import ResultStore, SweepRunner, SweepSpec
from repro.telemetry.sinks import SummaryTracer


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "exp.sqlite") as s:
        yield s


def small_sweep(**overrides):
    kwargs = dict(
        name="grid",
        robots=("planar-4dof", "dadu-6dof"),
        solvers=("JT-DLS",),
        workloads=("batch",),
        targets=3,
        max_iterations=400,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class SimulatedKill(BaseException):
    """Out of the Exception hierarchy so the runner cannot swallow it."""


def kill_at(target_index):
    def hook(index, scenario):
        if index == target_index:
            raise SimulatedKill(f"killed before cell {index}")
    return hook


class TestFullSweep:
    def test_all_cells_done_with_metrics(self, store):
        spec = small_sweep()
        result = SweepRunner(spec, store).run()
        assert result.completed
        assert result.executed == len(spec.expand()) == 2
        assert result.skipped == result.failed == 0
        for key in spec.cell_keys():
            metrics = store.metrics_for_cell(result.run_id, key)
            assert metrics["convergence_rate"] > 0
            assert metrics["wall_s"] > 0
        # One artifact per cell, all attached to real cells.
        artifacts = store.artifacts(result.run_id)
        assert len(artifacts) == 2
        assert all(a["cell_id"] is not None for a in artifacts)
        assert store.run_row(result.run_id)["status"] == "done"

    def test_suite_and_serve_workloads_execute(self, store):
        spec = small_sweep(
            robots=("dadu-6dof",),
            workloads=("suite", "serve"),
            rate_hz=500.0,
        )
        result = SweepRunner(spec, store).run()
        assert result.completed
        keys = dict(zip(spec.cell_keys(), spec.expand()))
        for key, scenario in keys.items():
            metrics = store.metrics_for_cell(result.run_id, key)
            if scenario.workload == "suite":
                assert "mean_work" in metrics
            else:
                assert metrics["completed"] == scenario.targets
                assert metrics["throughput_rps"] > 0

    def test_failed_cell_does_not_starve_the_grid(self, store, monkeypatch):
        import repro.experiments.runner as runner_mod

        spec = small_sweep()
        real = runner_mod.execute_scenario
        broken_key = spec.cell_keys()[0]

        def flaky(scenario, rate_hz=200.0):
            if scenario.cell_key() == broken_key:
                raise RuntimeError("solver diverged")
            return real(scenario, rate_hz=rate_hz)

        monkeypatch.setattr(runner_mod, "execute_scenario", flaky)
        result = SweepRunner(spec, store).run()
        assert result.failed == 1
        assert result.executed == 1
        assert not result.completed
        cells = {c["cell_key"]: c for c in store.cells(result.run_id)}
        assert cells[broken_key]["status"] == "failed"
        assert "RuntimeError: solver diverged" in cells[broken_key]["error"]
        assert store.run_row(result.run_id)["status"] == "failed"


class TestResume:
    def test_completed_sweep_resumes_to_noop(self, store):
        spec = small_sweep()
        first = SweepRunner(spec, store).run()
        second = SweepRunner(spec, store).run()
        assert second.run_id == first.run_id
        assert second.skipped == second.total
        assert second.executed == 0
        # Exactly one row per cell, ever.
        assert len(store.cells(first.run_id)) == len(spec.expand())
        assert len(store.runs()) == 1

    def test_kill_mid_sweep_then_resume_completes(self, store):
        spec = small_sweep()
        with pytest.raises(SimulatedKill):
            SweepRunner(spec, store, fault_hook=kill_at(1)).run()
        # The kill left cell 0 done and cell 1 'running' (as SIGKILL would).
        run_id = store.latest_run_id("grid")
        statuses = store.cell_statuses(run_id)
        assert sorted(statuses.values()) == ["done", "running"]

        resumed = SweepRunner(spec, store).run()
        assert resumed.run_id == run_id
        assert resumed.completed
        assert resumed.skipped == 1  # the done cell was never re-run
        assert resumed.executed == 1  # only the interrupted cell
        # No duplicate rows: unique (run_id, cell_key) held through the kill.
        assert len(store.cells(run_id)) == len(spec.expand())
        assert len(store.runs()) == 1

    def test_kill_before_first_cell_then_resume(self, store):
        spec = small_sweep()
        with pytest.raises(SimulatedKill):
            SweepRunner(spec, store, fault_hook=kill_at(0)).run()
        resumed = SweepRunner(spec, store).run()
        assert resumed.completed
        assert resumed.executed == len(spec.expand())

    def test_fresh_forces_new_run_row(self, store):
        spec = small_sweep()
        first = SweepRunner(spec, store).run()
        second = SweepRunner(spec, store, fresh=True).run()
        assert second.run_id != first.run_id
        assert second.executed == second.total
        assert len(store.runs()) == 2

    def test_changed_spec_does_not_resume(self, store):
        first = SweepRunner(small_sweep(), store).run()
        changed = small_sweep(targets=4)
        second = SweepRunner(changed, store).run()
        assert second.run_id != first.run_id
        assert second.executed == second.total


class TestDeterminism:
    def test_identical_cells_draw_identical_targets(self, store, tmp_path):
        from repro.experiments.runner import (
            _reachable_targets,
            _scenario_rng,
        )
        from repro.api import resolve_robot

        spec = small_sweep()
        scenario = spec.expand()[0]
        chain = resolve_robot(scenario.robot)
        a = _reachable_targets(
            chain, scenario.targets, _scenario_rng(scenario)
        )
        b = _reachable_targets(
            chain, scenario.targets, _scenario_rng(scenario)
        )
        assert (a == b).all()
        # A different cell draws a different workload.
        other = spec.expand()[1]
        other_chain = resolve_robot(other.robot)
        c = _reachable_targets(
            other_chain, other.targets, _scenario_rng(other)
        )
        assert a.shape != c.shape or not (a == c).all()


class TestTelemetry:
    def test_counters_cover_the_lifecycle(self, store):
        spec = small_sweep()
        tracer = SummaryTracer()
        with pytest.raises(SimulatedKill):
            SweepRunner(spec, store, tracer=tracer, fault_hook=kill_at(1)).run()
        SweepRunner(spec, store, tracer=tracer).run()
        summary = tracer.summary()
        assert summary.counters["experiment_runs_started"] == 2
        assert summary.counters["experiment_cells_started"] == 3
        assert summary.counters["experiment_cells_completed"] == 2
        assert summary.counters["experiment_cells_skipped"] == 1
        assert "experiment_cell" in summary.phase_seconds
