"""Regression-as-query over the committed benchmark trajectory (slow tier).

The CI perf gate in one test: import the repo's committed ``BENCH_*.json``
files into a store, re-import an artificially degraded copy under the same
run name, and assert that ``regressions()`` flags exactly the degraded
metrics — and stays quiet on the real (undegraded) history.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import (
    BENCH_RUN_NAMES,
    ResultStore,
    import_bench_file,
    import_bench_payloads,
)

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = (
    REPO_ROOT / "BENCH_kernels.json",
    REPO_ROOT / "BENCH_parallel.json",
    REPO_ROOT / "BENCH_serving.json",
)


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "history.sqlite") as s:
        yield s


def test_committed_bench_files_exist():
    for path in BENCH_FILES:
        assert path.is_file(), f"committed benchmark missing: {path}"


def test_import_populates_all_three_benchmarks(store):
    summaries = import_bench_payloads(store, list(BENCH_FILES))
    assert [s["run_name"] for s in summaries] == [
        "bench-kernels", "bench-parallel", "bench-serving"
    ]
    assert set(BENCH_RUN_NAMES.values()) == {s["run_name"] for s in summaries}
    for summary in summaries:
        assert summary["cells"] >= 1
        assert summary["metrics"] >= 1
        run = store.run_row(summary["run_id"])
        assert run["source"] == "import"
        assert run["status"] == "done"
    # The raw payloads survive as artifacts — nothing is lost in flattening.
    for summary in summaries:
        (artifact,) = store.artifacts(summary["run_id"])
        assert artifact["payload"]["benchmark"] is not None


def test_real_trajectory_is_quiet(store):
    """Importing the committed trio twice == identical history: no flags."""
    import_bench_payloads(store, list(BENCH_FILES))
    import_bench_payloads(store, list(BENCH_FILES))
    assert store.regressions(threshold=0.1) == []


def test_degraded_copy_is_flagged(store, tmp_path):
    import_bench_payloads(store, list(BENCH_FILES))

    # Degrade the kernel benchmark's headline speedup by 2x and re-import
    # under the same run name — the exact shape of a perf regression
    # landing between two CI runs.
    payload = json.loads(BENCH_FILES[0].read_text(encoding="utf-8"))
    original = payload["headline_speedup"]
    payload["headline_speedup"] = original * 0.5
    degraded = tmp_path / "BENCH_kernels.json"
    degraded.write_text(
        json.dumps(payload, allow_nan=False), encoding="utf-8"
    )
    import_bench_file(store, degraded)

    flagged = store.regressions(threshold=0.1)
    assert flagged, "halving the headline speedup must trip the gate"
    hit = next(r for r in flagged if r.metric == "headline_speedup")
    assert hit.run_name == "bench-kernels"
    assert hit.direction == "higher"
    assert hit.baseline == pytest.approx(original)
    assert hit.latest == pytest.approx(original * 0.5)
    assert hit.ratio == pytest.approx(0.5)
    # Every flag traces back to the degraded import, not the other benches.
    assert all(r.run_name == "bench-kernels" for r in flagged)
    # The untouched run names stay quiet even at a tight threshold.
    assert store.regressions(threshold=0.01, run_name="bench-serving") == []


def test_degraded_latency_is_flagged_lower_direction(store, tmp_path):
    import_bench_payloads(store, list(BENCH_FILES))

    payload = json.loads(BENCH_FILES[2].read_text(encoding="utf-8"))
    degraded = tmp_path / "BENCH_serving.json"
    # Double every latency quantile (lower-is-better metrics).
    latency = payload["latency_s"]
    touched = [k for k, v in latency.items() if isinstance(v, (int, float))]
    assert touched, "serving payload must carry latency quantiles"
    for key in touched:
        latency[key] = latency[key] * 2.0
    degraded.write_text(
        json.dumps(payload, allow_nan=False), encoding="utf-8"
    )
    import_bench_file(store, degraded)

    flagged = store.regressions(threshold=0.1, run_name="bench-serving")
    names = {r.metric for r in flagged}
    assert {f"latency_s.{key}" for key in touched} <= names
    assert all(r.direction == "lower" for r in flagged)
