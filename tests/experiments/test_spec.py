"""Spec tier: registry-aware validation, deterministic grids, key codec."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_WORKLOADS, ScenarioSpec, SweepSpec


class TestScenarioValidation:
    def test_unknown_solver_names_the_registry(self):
        with pytest.raises(ValueError, match="JT-Speculation"):
            ScenarioSpec(robot="dadu-12dof", solver="JT-Typo")

    def test_unknown_robot_names_the_zoo_rule(self):
        with pytest.raises(ValueError, match="dadu-<N>dof"):
            ScenarioSpec(robot="not-a-robot", solver="JT-DLS")

    def test_unknown_kernel_mode_names_known_modes(self):
        with pytest.raises(ValueError, match="scalar"):
            ScenarioSpec(robot="dadu-12dof", solver="JT-DLS", kernel="quantum")

    def test_unknown_kernel_dtype_rejected(self):
        with pytest.raises(ValueError, match="float32"):
            ScenarioSpec(
                robot="dadu-12dof", solver="JT-DLS",
                kernel="vectorized:float16",
            )

    def test_unknown_workload_names_known_workloads(self):
        with pytest.raises(ValueError, match="batch"):
            ScenarioSpec(
                robot="dadu-12dof", solver="JT-DLS", workload="quantum"
            )

    def test_suite_workload_requires_paper_chain(self):
        with pytest.raises(ValueError, match="dadu-<N>dof"):
            ScenarioSpec(robot="puma560", solver="JT-DLS", workload="suite")
        # dadu-* is fine.
        ScenarioSpec(robot="dadu-12dof", solver="JT-DLS", workload="suite")

    @pytest.mark.parametrize(
        "kwargs", [
            {"workers": 0},
            {"targets": 0},
            {"tolerance": 0.0},
            {"tolerance": -1.0},
            {"max_iterations": 0},
        ],
    )
    def test_bad_numeric_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(robot="dadu-12dof", solver="JT-DLS", **kwargs)

    def test_kernel_canonicalised(self):
        spec = ScenarioSpec(
            robot="dadu-12dof", solver="JT-DLS", kernel="vectorized:float32"
        )
        assert spec.kernel == "vectorized:float32"
        bare = ScenarioSpec(
            robot="dadu-12dof", solver="JT-DLS", kernel="scalar"
        )
        assert bare.kernel == "scalar"

    def test_kernel_chunk_is_not_a_sweep_axis(self):
        from repro.execution import KernelSpec

        with pytest.raises(ValueError, match="chunk"):
            ScenarioSpec(
                robot="dadu-12dof", solver="JT-DLS",
                kernel=KernelSpec(name="vectorized", chunk=64),
            )


class TestCellKeys:
    def test_round_trip_all_fields(self):
        spec = ScenarioSpec(
            robot="dadu-25dof", solver="JT-Speculation",
            kernel="vectorized:float32", workers=4, workload="serve",
            targets=7, seed=99, tolerance=1e-3, max_iterations=500,
        )
        assert ScenarioSpec.from_cell_key(spec.cell_key()) == spec

    def test_round_trip_none_fields(self):
        spec = ScenarioSpec(robot="planar-3dof", solver="CCD")
        decoded = ScenarioSpec.from_cell_key(spec.cell_key())
        assert decoded == spec
        assert decoded.kernel is None
        assert decoded.workers is None
        assert decoded.tolerance is None

    def test_tolerance_survives_bit_exactly(self):
        spec = ScenarioSpec(
            robot="dadu-12dof", solver="JT-DLS", tolerance=0.1 + 0.2,
        )
        assert ScenarioSpec.from_cell_key(spec.cell_key()).tolerance \
            == spec.tolerance

    @pytest.mark.parametrize(
        "key", [
            "",
            "robot=dadu-12dof",
            "not a key at all",
            "robot=dadu-12dof&robot=dadu-12dof",
        ],
    )
    def test_malformed_keys_rejected(self, key):
        with pytest.raises(ValueError):
            ScenarioSpec.from_cell_key(key)


class TestSweepSpec:
    def test_expansion_is_deterministic(self):
        kwargs = dict(
            name="grid",
            robots=("dadu-12dof", "planar-4dof"),
            solvers=("JT-DLS", "CCD"),
            kernels=(None, "vectorized"),
            workers=(None, 2),
            targets=3,
        )
        a, b = SweepSpec(**kwargs), SweepSpec(**kwargs)
        assert a.cell_keys() == b.cell_keys()
        assert len(a.cell_keys()) == 2 * 2 * 2 * 2
        assert len(set(a.cell_keys())) == len(a.cell_keys())

    def test_expansion_validates_every_axis_value(self):
        with pytest.raises(ValueError, match="JT-Speculation"):
            SweepSpec(name="bad", solvers=("JT-DLS", "JT-Typo"))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(name="bad", robots=())

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(name="bad", solvers=("JT-DLS", "JT-DLS"))

    def test_blank_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            SweepSpec(name="  ")

    def test_json_round_trip_preserves_fingerprint(self):
        spec = SweepSpec(
            name="grid", robots=("dadu-12dof",), solvers=("JT-DLS",),
            kernels=("vectorized:float32",), targets=5, tolerance=1e-3,
        )
        again = SweepSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_fingerprint_distinguishes_grids(self):
        base = SweepSpec(name="grid", solvers=("JT-DLS",))
        other = SweepSpec(name="grid", solvers=("CCD",))
        assert base.fingerprint() != other.fingerprint()

    def test_workloads_axis_accepts_all_kinds(self):
        spec = SweepSpec(
            name="grid", robots=("dadu-12dof",),
            workloads=EXPERIMENT_WORKLOADS,
        )
        assert len(spec.expand()) == len(EXPERIMENT_WORKLOADS)
