"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics import paper_chain, planar_chain, puma560, random_chain


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def planar3():
    """Three-link planar arm with 1 m reach (hand-checkable FK)."""
    return planar_chain(3, total_reach=1.0)


@pytest.fixture
def puma():
    """PUMA-560."""
    return puma560()


@pytest.fixture
def dadu12():
    """The paper's 12-DOF evaluation chain."""
    return paper_chain(12)


@pytest.fixture
def mixed_chain(rng):
    """Random chain containing prismatic joints."""
    return random_chain(6, rng, prismatic_probability=0.4)


@pytest.fixture
def fast_config() -> SolverConfig:
    """Solver config with a small iteration cap for quick tests."""
    return SolverConfig(max_iterations=2000)
