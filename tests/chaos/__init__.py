"""Fault-injection (chaos) tier: crashed/hung/SIGKILLed workers."""
