"""Chaos tier: the resilient pipeline under injected worker faults.

Acceptance scenario for the resilience layer: with ~20% of shards
crashing or hanging, ``solve_batch(..., on_error="fallback")`` completes,
preserves problem order, and the batch's ``FailureReport`` accounts for
every injected fault.  Marked ``chaos`` (excluded from tier-1 by
``addopts``; run nightly / with ``pytest -m chaos``).
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.parallel import ShardedBatchSolver
from repro.resilience import (
    FlakySolver,
    ResilienceConfig,
    TargetTrigger,
    poison_indices,
)
from repro.solvers.registry import make_solver
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.chaos

CHAIN = paper_chain(6)
CONFIG = SolverConfig(max_iterations=500, record_history=False)


def _targets(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [CHAIN.end_position(CHAIN.random_configuration(rng)) for _ in range(n)]
    )


def _flaky(targets, poison, fault, naptime=30.0):
    inner = make_solver("JT-Speculation", CHAIN, config=CONFIG)
    return FlakySolver(
        inner, TargetTrigger(targets[poison]), fault=fault, naptime=naptime
    )


def _assert_recovered_batch(batch, targets, poison):
    """Order preserved, every problem usable, every fault accounted for."""
    assert len(batch) == len(targets)
    for i in range(len(targets)):
        assert np.allclose(batch[i].target, targets[i])
    # every poisoned problem has at least one failure record
    for i in poison:
        assert batch.failures.for_index(int(i)), f"fault at {i} unaccounted"
    # the fallback retry recovered every problem (the retry solver has no
    # fault injected, so each solo retry converges)
    assert batch.convergence_rate == 1.0
    assert len(batch.failures.recovered) == len(batch.failures)


class TestAcceptanceScenario:
    def test_twenty_percent_crashing_shards(self):
        m, workers = 20, 5  # 5 shards of 4; poison hits >= 1 shard
        targets = _targets(m)
        poison = poison_indices(m, 0.2, seed=3)
        solver = _flaky(targets, poison, fault="crash")
        sharded = ShardedBatchSolver(
            solver, workers=workers, timeout=120,
            on_error="fallback", resilience=ResilienceConfig(),
        )
        registry = MetricsRegistry()
        batch = sharded.solve_batch(
            targets, rng=np.random.default_rng(7), tracer=registry
        )
        _assert_recovered_batch(batch, targets, poison)
        assert registry.counters.get("fallback_used", 0) >= len(poison)
        assert registry.counters.get("solve_failed", 0) == 0

    def test_hanging_shards_recovered(self):
        m, workers = 8, 4
        targets = _targets(m, seed=1)
        poison = poison_indices(m, 0.2, seed=4)
        solver = _flaky(targets, poison, fault="hang", naptime=60.0)
        sharded = ShardedBatchSolver(
            solver, workers=workers, timeout=3.0,
            on_error="fallback", retry_timeout=120.0,
        )
        batch = sharded.solve_batch(targets, rng=np.random.default_rng(8))
        _assert_recovered_batch(batch, targets, poison)
        # the hung shards were reported as timeouts before recovery
        assert "timeout" in batch.failures.by_kind()

    def test_sigkilled_worker_breaks_pool_but_batch_recovers(self):
        m, workers = 8, 2
        targets = _targets(m, seed=2)
        poison = [0]
        solver = _flaky(targets, poison, fault="kill")
        sharded = ShardedBatchSolver(
            solver, workers=workers, timeout=120,
            on_error="fallback",
        )
        batch = sharded.solve_batch(targets, rng=np.random.default_rng(9))
        _assert_recovered_batch(batch, targets, poison)
        # SIGKILL breaks the whole pool: the records carry the pool kind
        assert "pool" in batch.failures.by_kind()

    def test_raise_mode_still_raises_under_sigkill(self):
        from repro.parallel import ParallelExecutionError

        m = 4
        targets = _targets(m, seed=3)
        solver = _flaky(targets, [0], fault="kill")
        sharded = ShardedBatchSolver(solver, workers=2, timeout=120)
        with pytest.raises(ParallelExecutionError) as excinfo:
            sharded.solve_batch(targets, rng=np.random.default_rng(10))
        assert {e.kind for e in excinfo.value.shard_errors} == {"pool"}


class TestPoisonSelection:
    def test_poison_indices_deterministic(self):
        a = poison_indices(50, 0.2, seed=1)
        b = poison_indices(50, 0.2, seed=1)
        assert np.array_equal(a, b)
        assert len(a) == 10
        assert len(np.unique(a)) == 10

    def test_poison_fraction_validated(self):
        with pytest.raises(ValueError):
            poison_indices(10, 1.5)
