"""Tests for the Atom/TX1/IKAcc platform cost models."""

import pytest

from repro.platforms.atom import AtomModel
from repro.platforms.base import METHOD_NAMES, iteration_ops
from repro.platforms.ikacc_platform import IKAccPlatform
from repro.platforms.tx1 import TX1Model


class TestIterationOps:
    def test_all_method_names_priceable(self):
        for name in METHOD_NAMES:
            assert iteration_ops(name, 12, 64).flops > 0

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            iteration_ops("JT-Magic", 12)

    def test_speculation_only_affects_quick_ik(self):
        assert iteration_ops("JT-Serial", 12, 64) == iteration_ops("JT-Serial", 12, 1)
        assert (
            iteration_ops("JT-Speculation", 12, 64).flops
            > iteration_ops("JT-Speculation", 12, 16).flops
        )


class TestAtom:
    def test_time_scales_with_flops(self):
        atom = AtomModel()
        t12 = atom.seconds_per_iteration("JT-Serial", 12)
        t100 = atom.seconds_per_iteration("JT-Serial", 100)
        assert t100 > 5 * t12

    def test_svd_penalty_applied(self):
        lenient = AtomModel(svd_efficiency=1.0)
        harsh = AtomModel(svd_efficiency=0.1)
        assert harsh.seconds_per_iteration("J-1-SVD", 50) > lenient.seconds_per_iteration(
            "J-1-SVD", 50
        )
        # JT-Serial unaffected by the SVD penalty.
        assert harsh.seconds_per_iteration("JT-Serial", 50) == pytest.approx(
            lenient.seconds_per_iteration("JT-Serial", 50)
        )

    def test_estimate_multiplies_iterations(self):
        atom = AtomModel()
        one = atom.estimate("JT-Serial", 25, 1.0)
        hundred = atom.estimate("JT-Serial", 25, 100.0)
        assert hundred.seconds == pytest.approx(100 * one.seconds)

    def test_energy_is_power_times_time(self):
        atom = AtomModel()
        estimate = atom.estimate("JT-Serial", 25, 50.0)
        assert estimate.energy_j == pytest.approx(10.0 * estimate.seconds)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AtomModel(effective_flops=0.0)
        with pytest.raises(ValueError):
            AtomModel(svd_efficiency=0.0)
        with pytest.raises(ValueError):
            AtomModel().estimate("JT-Serial", 12, -1.0)

    def test_milliseconds_property(self):
        estimate = AtomModel().estimate("JT-Serial", 12, 10.0)
        assert estimate.milliseconds == pytest.approx(estimate.seconds * 1e3)


class TestTX1:
    def test_only_prices_quick_ik(self):
        tx1 = TX1Model()
        with pytest.raises(KeyError):
            tx1.seconds_per_iteration("JT-Serial", 12)
        with pytest.raises(KeyError):
            tx1.seconds_per_iteration("J-1-SVD", 12)

    def test_overhead_dominates_low_dof(self):
        tx1 = TX1Model()
        t12 = tx1.seconds_per_iteration("JT-Speculation", 12, 64)
        assert t12 < 2.5 * tx1.offload_overhead_s

    def test_per_iteration_grows_sublinearly_with_dof(self):
        """The fixed offload overhead flattens the DOF scaling — the paper's
        explanation for TX1's shrinking advantage."""
        tx1 = TX1Model()
        t12 = tx1.seconds_per_iteration("JT-Speculation", 12, 64)
        t100 = tx1.seconds_per_iteration("JT-Speculation", 100, 64)
        assert t100 / t12 < 100 / 12

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TX1Model(offload_overhead_s=-1.0)
        with pytest.raises(ValueError):
            TX1Model(joint_level_s=0.0)
        with pytest.raises(ValueError):
            TX1Model(serial_flops=0.0)


class TestIKAccPlatform:
    def test_only_prices_quick_ik(self):
        with pytest.raises(KeyError):
            IKAccPlatform().seconds_per_iteration("JT-Serial", 12)

    def test_per_iteration_matches_simulator(self):
        from repro.ikacc.accelerator import IKAccSimulator
        from repro.kinematics.robots import paper_chain

        platform = IKAccPlatform()
        direct = IKAccSimulator(paper_chain(25)).seconds_per_full_iteration()
        assert platform.seconds_per_iteration("JT-Speculation", 25, 64) == pytest.approx(
            direct
        )

    def test_avg_power_in_paper_band(self):
        assert 0.08 < IKAccPlatform().avg_power_w < 0.32


class TestCrossPlatformShape:
    """The architectural ratios of Table 2 (iteration counts cancel)."""

    def test_ikacc_beats_tx1_beats_atom(self):
        atom, tx1, ikacc = AtomModel(), TX1Model(), IKAccPlatform()
        for dof in (12, 50, 100):
            a = atom.seconds_per_iteration("JT-Speculation", dof, 64)
            t = tx1.seconds_per_iteration("JT-Speculation", dof, 64)
            k = ikacc.seconds_per_iteration("JT-Speculation", dof, 64)
            assert k < t < a

    def test_atom_over_ikacc_near_1000x(self):
        """Paper Table 2 column3/column5: ~800-1200x across the sweep."""
        atom, ikacc = AtomModel(), IKAccPlatform()
        for dof in (12, 25, 50, 75, 100):
            ratio = atom.seconds_per_iteration(
                "JT-Speculation", dof, 64
            ) / ikacc.seconds_per_iteration("JT-Speculation", dof, 64)
            assert 500 < ratio < 2000

    def test_tx1_over_ikacc_declines_with_dof(self):
        """Paper Table 2 column4/column5 falls from ~126x to ~26x."""
        tx1, ikacc = TX1Model(), IKAccPlatform()
        ratios = [
            tx1.seconds_per_iteration("JT-Speculation", dof, 64)
            / ikacc.seconds_per_iteration("JT-Speculation", dof, 64)
            for dof in (12, 25, 50, 75, 100)
        ]
        assert ratios == sorted(ratios, reverse=True)
        assert 60 < ratios[0] < 250
        assert 15 < ratios[-1] < 70
