"""Tests for the energy accounting."""

import pytest

from repro.platforms.atom import AtomModel
from repro.platforms.energy import efficiency_ratio, energy_report
from repro.platforms.tx1 import TX1Model


class TestEnergyReport:
    def test_wraps_estimate(self):
        estimate = AtomModel().estimate("JT-Serial", 25, 100.0)
        report = energy_report(estimate)
        assert report.platform == "Atom"
        assert report.energy_j_per_solve == pytest.approx(estimate.energy_j)
        assert report.seconds_per_solve == pytest.approx(estimate.seconds)

    def test_solves_per_joule_inverse(self):
        report = energy_report(AtomModel().estimate("JT-Serial", 25, 100.0))
        assert report.solves_per_joule == pytest.approx(1.0 / report.energy_j_per_solve)

    def test_millijoules(self):
        report = energy_report(AtomModel().estimate("JT-Serial", 25, 100.0))
        assert report.millijoules == pytest.approx(report.energy_j_per_solve * 1e3)


class TestEfficiencyRatio:
    def test_tx1_more_efficient_than_atom_for_quick_ik(self):
        iterations = 50.0
        atom = energy_report(AtomModel().estimate("JT-Speculation", 50, iterations, 64))
        tx1 = energy_report(TX1Model().estimate("JT-Speculation", 50, iterations, 64))
        assert efficiency_ratio(tx1, atom) > 1.0

    def test_ratio_is_reciprocal(self):
        a = energy_report(AtomModel().estimate("JT-Speculation", 25, 10.0, 64))
        b = energy_report(TX1Model().estimate("JT-Speculation", 25, 10.0, 64))
        assert efficiency_ratio(a, b) == pytest.approx(1.0 / efficiency_ratio(b, a))

    def test_self_ratio_is_one(self):
        a = energy_report(AtomModel().estimate("JT-Serial", 25, 10.0))
        assert efficiency_ratio(a, a) == pytest.approx(1.0)
