"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.robot == "dadu-25dof"
        assert args.solver == "JT-Speculation"
        assert args.speculations == 64

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--solver", "JT-Quantum"])

    def test_bench_experiments_whitelist(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "figure9"])

    def test_solve_on_error_choices(self):
        args = build_parser().parse_args(["solve", "--on-error", "fallback"])
        assert args.on_error == "fallback"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--on-error", "retry"])


class TestCommands:
    def test_robots(self, capsys):
        assert main(["robots"]) == 0
        out = capsys.readouterr().out
        assert "puma560" in out
        assert "dadu-<N>dof" in out

    def test_solve_converges(self, capsys):
        code = main(["solve", "--robot", "dadu-12dof", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out

    def test_solve_explicit_target(self, capsys):
        code = main(
            ["solve", "--robot", "dadu-12dof", "--target", "0.2", "0.1", "0.0"]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_solve_failure_exit_code(self, capsys):
        code = main(
            ["solve", "--robot", "dadu-12dof", "--target", "99", "0", "0",
             "--max-iterations", "5"]
        )
        assert code == 1

    def test_simulate(self, capsys):
        code = main(["simulate", "--robot", "dadu-12dof", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IKAcc" in out
        assert "cycle breakdown" in out

    def test_trace(self, capsys):
        code = main(["trace", "--robot", "dadu-12dof", "--width", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SPU" in out and "SSU array" in out
        assert "per-iteration latency" in out

    def test_bench_single_experiment(self, capsys, monkeypatch):
        code = main(
            ["bench", "figure4", "--targets", "2", "--dofs", "12"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 4" in out

    def test_bench_failure_exit_code(self, capsys):
        # with a 1-iteration budget nothing converges; bench must say so
        code = main(
            ["bench", "figure4", "--targets", "2", "--dofs", "12",
             "--max-iterations", "1"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "bench FAILED" in captured.err

    def test_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TARGETS", "2")
        monkeypatch.setenv("REPRO_DOFS", "12")
        output = tmp_path / "exp.md"
        assert main(["report", str(output)]) == 0
        assert output.exists()
