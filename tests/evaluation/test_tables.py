"""Tests for table rendering."""

import pytest

from repro.evaluation.tables import TableResult, format_cell, render_ascii, render_markdown


@pytest.fixture
def table():
    return TableResult(
        title="Demo",
        headers=["dof", "value"],
        rows=[[12, 1.23456], [100, 0.000123]],
        notes=["a note"],
    )


class TestFormatCell:
    def test_floats_four_sig_figs(self):
        assert format_cell(1.23456) == "1.235"

    def test_tiny_floats_scientific(self):
        assert "e" in format_cell(1.2e-7)

    def test_huge_floats_scientific(self):
        assert "e" in format_cell(1.2e7)

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_and_str(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestAsciiRendering:
    def test_contains_title_headers_and_notes(self, table):
        text = table.to_ascii()
        assert "Demo" in text
        assert "dof" in text and "value" in text
        assert "note: a note" in text

    def test_rows_rendered(self, table):
        text = table.to_ascii()
        assert "12" in text and "100" in text

    def test_empty_rows_ok(self):
        empty = TableResult(title="E", headers=["a"], rows=[])
        assert "E" in render_ascii(empty)


class TestMarkdownRendering:
    def test_pipe_table_shape(self, table):
        lines = render_markdown(table).splitlines()
        assert lines[0].startswith("### Demo")
        assert lines[2].count("|") == 3
        assert lines[3] == "|---|---|"

    def test_notes_italicised(self, table):
        assert "*a note*" in table.to_markdown()


class TestColumn:
    def test_extract_by_name(self, table):
        assert table.column("dof") == [12, 100]

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("nope")
