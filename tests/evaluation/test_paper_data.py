"""Consistency checks on the transcribed paper numbers."""

from repro.evaluation import paper_data


class TestTable2:
    def test_all_dofs_present(self):
        assert set(paper_data.TABLE2_MS) == set(paper_data.PAPER_DOFS)

    def test_all_methods_present_per_dof(self):
        for dof, row in paper_data.TABLE2_MS.items():
            assert set(row) == set(paper_data.METHODS), dof

    def test_times_increase_with_dof(self):
        for method in paper_data.METHODS:
            times = [paper_data.TABLE2_MS[dof][method] for dof in paper_data.PAPER_DOFS]
            assert times == sorted(times), method

    def test_ikacc_fastest_everywhere(self):
        for dof, row in paper_data.TABLE2_MS.items():
            assert row["JT-IKAcc"] == min(row.values()), dof

    def test_headline_12ms_matches_table(self):
        assert abs(
            paper_data.TABLE2_MS[100]["JT-IKAcc"]
            - paper_data.HEADLINE_CLAIMS["ms_at_100_dof"]
        ) < 0.2

    def test_30x_claim_consistent_with_table(self):
        """The abstract's 30x vs TX1 should be near the 100-DOF table ratio."""
        ratio = (
            paper_data.TABLE2_MS[100]["JT-TX1"] / paper_data.TABLE2_MS[100]["JT-IKAcc"]
        )
        assert 20 < ratio < 40

    def test_1700x_claim_within_table_ratio_range(self):
        ratios = [
            row["JT-Serial"] / row["JT-IKAcc"] for row in paper_data.TABLE2_MS.values()
        ]
        assert min(ratios) < paper_data.HEADLINE_CLAIMS["speedup_vs_jt_serial_atom"] < max(ratios)


class TestTable3:
    def test_platforms(self):
        assert set(paper_data.TABLE3_PLATFORMS) == {"Atom", "TX1", "IKAcc"}

    def test_ikacc_lowest_power(self):
        powers = {k: v["avg_power_w"] for k, v in paper_data.TABLE3_PLATFORMS.items()}
        assert powers["IKAcc"] == min(powers.values())


class TestConstants:
    def test_evaluation_constants(self):
        assert paper_data.ACCURACY_M == 1e-2
        assert paper_data.MAX_ITERATIONS == 10_000
        assert paper_data.TARGETS_PER_DOF == 1000
        assert paper_data.FIGURE4_SPECULATIONS == (16, 32, 64, 128)
