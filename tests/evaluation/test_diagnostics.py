"""Tests for convergence diagnostics."""

import math

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.evaluation.diagnostics import (
    analyze_history,
    chosen_index_stats,
    figure4_investigation,
)
from repro.kinematics.robots import paper_chain


class TestAnalyzeHistory:
    def test_geometric_decay_rate_recovered(self):
        history = [1.0 * 0.5**i for i in range(20)]
        diag = analyze_history(np.array(history))
        assert diag.geometric_rate == pytest.approx(0.5)
        assert diag.monotone
        assert diag.iterations == 19

    def test_increases_counted(self):
        diag = analyze_history(np.array([1.0, 0.5, 0.7, 0.3]))
        assert diag.increases == 1
        assert not diag.monotone

    def test_plateau_detection(self):
        history = [1.0, 0.5, 0.499, 0.498, 0.497, 0.1]
        diag = analyze_history(np.array(history))
        assert diag.longest_plateau == 3

    def test_extrapolation(self):
        diag = analyze_history(np.array([1.0 * 0.1**i for i in range(5)]))
        # rate 0.1 per iteration; from 1e-4 to 1e-6 needs 2 more.
        assert diag.iterations_to_reach(1e-6) == pytest.approx(2.0, abs=0.01)

    def test_extrapolation_when_stalled(self):
        diag = analyze_history(np.array([1.0, 1.0, 1.0]))
        assert math.isinf(diag.iterations_to_reach(0.1))

    def test_already_there(self):
        diag = analyze_history(np.array([1.0, 0.01]))
        assert diag.iterations_to_reach(0.05) == 0.0

    def test_single_point_history(self):
        diag = analyze_history(np.array([0.5]))
        assert diag.iterations == 0
        assert diag.geometric_rate == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_history(np.array([]))


class TestChosenIndexStats:
    def test_statistics(self):
        stats = chosen_index_stats([63, 63, 31, 0], 64)
        assert stats.fraction_at_max == 0.5
        assert stats.fraction_bottom_eighth == 0.25
        assert 0.5 < stats.mean_fraction < 0.8
        assert "Max=64" in stats.summary()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chosen_index_stats([], 64)


class TestFigure4Investigation:
    def test_scale_free_winner_position(self, rng):
        """The core finding: the winning k/Max fraction is stable across
        speculation counts (which is why Figure 4 is flat for us)."""
        chain = paper_chain(25)
        targets = np.stack(
            [chain.end_position(chain.random_configuration(rng)) for _ in range(6)]
        )
        table = figure4_investigation(
            chain,
            targets,
            speculation_counts=(16, 64),
            config=SolverConfig(max_iterations=2000, record_history=False),
        )
        fractions = [row[2] for row in table.rows]
        assert abs(fractions[0] - fractions[1]) < 0.25

    def test_table_shape(self, rng):
        chain = paper_chain(12)
        targets = np.stack(
            [chain.end_position(chain.random_configuration(rng)) for _ in range(3)]
        )
        table = figure4_investigation(chain, targets, speculation_counts=(8, 16))
        assert len(table.rows) == 2
        assert table.headers[0] == "speculations"

    def test_consistent_with_solver_instrumentation(self, rng):
        chain = paper_chain(12)
        target = chain.end_position(chain.random_configuration(rng))
        solver = QuickIKSolver(chain, speculations=16, track_chosen=True)
        solver.solve(target, rng=np.random.default_rng(0))
        stats = chosen_index_stats(solver.chosen_history, 16)
        assert 0.0 < stats.mean_fraction <= 1.0
