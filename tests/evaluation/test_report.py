"""Tests for the EXPERIMENTS.md generator."""

import os

from repro.evaluation.report import generate_report, main
from repro.workloads.suite import EvaluationSuite


def _tiny_suite():
    return EvaluationSuite(dofs=(12,), targets_per_dof=2)


class TestGenerateReport:
    def test_contains_all_experiments(self):
        text = generate_report(suite=_tiny_suite(), include_ablations=False)
        for marker in (
            "experiment: figure4",
            "experiment: figure5a",
            "experiment: figure5b",
            "experiment: table2",
            "experiment: table3",
            "experiment: headline",
        ):
            assert marker in text

    def test_markdown_tables_present(self):
        text = generate_report(suite=_tiny_suite(), include_ablations=False)
        assert "| dof |" in text or "| speculations |" in text

    def test_preamble_mentions_regeneration(self):
        text = generate_report(suite=_tiny_suite(), include_ablations=False)
        assert "python -m repro.evaluation.report" in text


class TestMain:
    def test_writes_file(self, tmp_path, monkeypatch):
        # Shrink the default suite through the environment variables so the
        # CLI path stays fast in CI.
        monkeypatch.setenv("REPRO_TARGETS", "2")
        monkeypatch.setenv("REPRO_DOFS", "12")
        output = tmp_path / "report.md"
        monkeypatch.chdir(tmp_path)
        assert main([str(output)]) == 0
        assert output.exists()
        assert "EXPERIMENTS" in output.read_text()
