"""Tests for the experiment harness (small workloads for speed)."""

import numpy as np
import pytest

from repro.evaluation.experiments import PaperExperiments
from repro.workloads.suite import EvaluationSuite


@pytest.fixture(scope="module")
def experiments():
    """Tiny but real workload shared by all harness tests."""
    suite = EvaluationSuite(dofs=(12, 25), targets_per_dof=4)
    return PaperExperiments(suite=suite)


class TestCaching:
    def test_stats_cached(self, experiments):
        a = experiments.stats("JT-Speculation", 12)
        b = experiments.stats("JT-Speculation", 12)
        assert a is b

    def test_speculation_counts_cached_separately(self, experiments):
        a = experiments.stats("JT-Speculation", 12, 16)
        b = experiments.stats("JT-Speculation", 12, 64)
        assert a is not b

    def test_ikacc_runs_cached(self, experiments):
        assert experiments.ikacc_runs(12) is experiments.ikacc_runs(12)

    def test_unknown_method(self, experiments):
        with pytest.raises(KeyError):
            experiments.stats("JT-Quantum", 12)


class TestFigures:
    def test_figure4_shape(self, experiments):
        table = experiments.figure4(speculation_counts=(16, 64))
        assert table.headers == ["speculations", "12-DOF", "25-DOF"]
        assert len(table.rows) == 2

    def test_figure5a_reduction_row(self, experiments):
        table = experiments.figure5a()
        for row in table.rows:
            jt, qik, reduction = row[1], row[3], row[4]
            assert reduction == pytest.approx(1.0 - qik / jt)
            assert reduction > 0.5  # Quick-IK always much better

    def test_figure5b_work_relationship(self, experiments):
        fig5a = experiments.figure5a()
        fig5b = experiments.figure5b()
        for row_a, row_b in zip(fig5a.rows, fig5b.rows):
            # Serial methods: work == iterations; Quick-IK: work == 64x.
            assert row_b[1] == pytest.approx(row_a[1])
            assert row_b[3] == pytest.approx(64 * row_a[3])


class TestTables:
    def test_table2_ikacc_fastest(self, experiments):
        for row in experiments.table2().rows:
            values = [float(v) for v in row[1:]]
            assert values[-1] == min(values)

    def test_table2_ordering_matches_paper(self, experiments):
        """IKAcc < TX1 < Atom for Quick-IK (the same-algorithm columns, where
        the ordering is purely architectural)."""
        for row in experiments.table2().rows:
            _, jt, svd, qik, tx1, ikacc = row
            del jt, svd
            assert ikacc < tx1 < qik

    def test_table2_ratios_have_paper_columns(self, experiments):
        table = experiments.table2_vs_paper()
        assert any("paper" in h for h in table.headers)
        assert len(table.rows) == 2

    def test_table3_rows(self, experiments):
        table = experiments.table3()
        platforms = [row[0] for row in table.rows]
        assert platforms == ["Atom", "TX1", "IKAcc"]
        ikacc_row = table.rows[2]
        assert 0.05 < float(ikacc_row[3]) < 0.4  # watts
        assert 1.5 < float(ikacc_row[4]) < 3.5  # mm^2

    def test_energy_table_ikacc_lowest(self, experiments):
        for row in experiments.energy_table().rows:
            values = [float(v) for v in row[1:]]
            assert values[-1] == min(values)

    def test_headline_claims_rows(self, experiments):
        table = experiments.headline_claims()
        claims = [row[0] for row in table.rows]
        assert any("iteration reduction" in c for c in claims)
        assert any("speedup vs TX1" in c for c in claims)
        assert len(table.rows) == 7

    def test_all_tables_keys(self, experiments):
        tables = experiments.all_tables()
        assert {
            "figure4",
            "figure5a",
            "figure5b",
            "table2",
            "table2_ratios",
            "table3",
            "energy",
            "headline",
        } == set(tables)


class TestIKAccAggregates:
    def test_mean_ms_positive_and_ordered(self, experiments):
        assert 0.0 < experiments.ikacc_mean_ms(12) < experiments.ikacc_mean_ms(25) * 10

    def test_mean_energy_positive(self, experiments):
        assert experiments.ikacc_mean_energy_mj(12) > 0.0

    def test_ikacc_converges_on_suite(self, experiments):
        assert all(r.converged for r in experiments.ikacc_runs(12))
