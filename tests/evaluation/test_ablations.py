"""Tests for the ablation studies (tiny workloads)."""

import pytest

from repro.evaluation.ablations import (
    alpha_mode_ablation,
    precision_ablation,
    schedule_ablation,
    spu_pipeline_ablation,
    ssu_count_sweep,
)
from repro.workloads.suite import EvaluationSuite


@pytest.fixture(scope="module")
def suite():
    return EvaluationSuite(dofs=(12,), targets_per_dof=3)


class TestScheduleAblation:
    def test_columns_match_schedules(self, suite):
        table = schedule_ablation(suite, schedules=("linear", "geometric"))
        assert table.headers == ["dof", "linear", "geometric"]
        assert all(row[1] > 0 for row in table.rows)

    def test_unknown_schedule(self, suite):
        with pytest.raises(KeyError):
            schedule_ablation(suite, schedules=("linear", "mystery"))


class TestSSUSweep:
    def test_latency_decreases_with_ssus(self):
        table = ssu_count_sweep(dof=25, ssu_counts=(8, 32, 64))
        latencies = [row[2] for row in table.rows]
        assert latencies == sorted(latencies, reverse=True)

    def test_area_increases_with_ssus(self):
        table = ssu_count_sweep(dof=25, ssu_counts=(8, 32, 64))
        areas = [row[3] for row in table.rows]
        assert areas == sorted(areas)

    def test_wave_counts(self):
        table = ssu_count_sweep(dof=25, ssu_counts=(8, 64), speculations=64)
        assert table.rows[0][1] == 8
        assert table.rows[1][1] == 1


class TestSPUPipelineAblation:
    def test_speedup_above_one_and_growing(self):
        table = spu_pipeline_ablation(dofs=(12, 100))
        speedups = [row[3] for row in table.rows]
        assert all(s > 1.0 for s in speedups)
        assert speedups[1] > speedups[0]


class TestAlphaModeAblation:
    def test_ordering_classic_worst(self, suite):
        table = alpha_mode_ablation(suite)
        for row in table.rows:
            _, classic, buss, qik = row
            assert classic > buss  # Buss step dominates the fixed gain
            assert classic > qik


class TestPrecisionAblation:
    def test_margins_comfortable(self):
        table = precision_ablation(dofs=(12, 50), samples=64)
        for row in table.rows:
            assert row[2] > 100  # >100x margin vs the 1e-2 tolerance
