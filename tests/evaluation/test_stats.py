"""Tests for the bootstrap statistics."""

import numpy as np
import pytest

from repro.evaluation.stats import (
    bootstrap_mean_ci,
    bootstrap_ratio_ci,
    means_differ,
)


class TestBootstrapMeanCI:
    def test_contains_true_mean_for_gaussian(self, rng):
        samples = rng.normal(5.0, 1.0, size=400)
        ci = bootstrap_mean_ci(samples, rng=rng)
        assert 5.0 in ci
        assert ci.lower < ci.estimate < ci.upper

    def test_estimate_is_sample_mean(self, rng):
        samples = rng.uniform(0, 10, size=50)
        ci = bootstrap_mean_ci(samples, rng=rng)
        assert ci.estimate == pytest.approx(samples.mean())

    def test_interval_shrinks_with_more_samples(self, rng):
        small = bootstrap_mean_ci(rng.normal(size=20), rng=np.random.default_rng(1))
        large = bootstrap_mean_ci(rng.normal(size=2000), rng=np.random.default_rng(1))
        assert large.half_width < small.half_width

    def test_degenerate_constant_samples(self):
        ci = bootstrap_mean_ci(np.full(10, 3.0))
        assert ci.lower == ci.upper == ci.estimate == 3.0

    def test_deterministic_with_rng(self):
        samples = np.arange(30, dtype=float)
        a = bootstrap_mean_ci(samples, rng=np.random.default_rng(5))
        b = bootstrap_mean_ci(samples, rng=np.random.default_rng(5))
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(5), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(5), resamples=2)

    def test_str_format(self):
        ci = bootstrap_mean_ci(np.arange(10, dtype=float))
        text = str(ci)
        assert "[" in text and "]" in text


class TestBootstrapRatioCI:
    def test_known_ratio(self, rng):
        numerator = rng.normal(2.0, 0.1, size=500)
        denominator = rng.normal(4.0, 0.1, size=500)
        ci = bootstrap_ratio_ci(numerator, denominator, rng=rng)
        assert 0.5 in ci
        assert ci.estimate == pytest.approx(
            numerator.mean() / denominator.mean()
        )

    def test_reduction_claim_shape(self, rng):
        """The 97%-reduction use case: QIK/JT ratio well below 0.1."""
        qik = rng.normal(20.0, 5.0, size=100)
        jt = rng.normal(900.0, 100.0, size=100)
        ci = bootstrap_ratio_ci(qik, jt, rng=rng)
        assert ci.upper < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci(np.array([]), np.ones(3))


class TestMeansDiffer:
    def test_clearly_different(self, rng):
        a = rng.normal(10.0, 1.0, size=200)
        b = rng.normal(0.0, 1.0, size=200)
        assert means_differ(a, b, rng=rng)

    def test_identical_distributions(self, rng):
        a = rng.normal(0.0, 1.0, size=200)
        b = rng.normal(0.0, 1.0, size=200)
        assert not means_differ(a, b, rng=np.random.default_rng(2))
