"""Tests for the random-restart wrapper."""

import numpy as np
import pytest

from repro.core.base import IterativeIKSolver
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig, StepOutcome
from repro.kinematics.robots import paper_chain
from repro.solvers.restarts import RandomRestartSolver


class FlakySolver(IterativeIKSolver):
    """Fails unless started exactly at the magic configuration."""

    name = "flaky"

    def __init__(self, chain, magic, config=None):
        super().__init__(chain, config or SolverConfig(max_iterations=1))
        self.magic = magic
        self.attempts = 0

    def initial_configuration(self, q0, rng):
        self.attempts += 1
        if q0 is not None:
            return np.asarray(q0, dtype=float)
        # "Random" restart: return the magic answer on the 3rd attempt.
        if self.attempts >= 3:
            return self.magic.copy()
        return super().initial_configuration(None, rng)

    def _step(self, q, position, target):
        return StepOutcome(q=q)


class TestRandomRestart:
    def test_succeeds_after_restarts(self, rng):
        chain = paper_chain(12)
        magic = chain.random_configuration(rng)
        target = chain.end_position(magic)
        inner = FlakySolver(chain, magic)
        wrapper = RandomRestartSolver(inner, max_restarts=5)
        result = wrapper.solve(target, rng=rng)
        assert result.converged
        assert inner.attempts == 3

    def test_accumulates_cost_across_attempts(self, rng):
        chain = paper_chain(12)
        magic = chain.random_configuration(rng)
        target = chain.end_position(magic)
        wrapper = RandomRestartSolver(FlakySolver(chain, magic), max_restarts=5)
        result = wrapper.solve(target, rng=rng)
        # Two failed 1-iteration attempts + the instant success.
        assert result.iterations == 2
        assert result.fk_evaluations >= 3

    def test_returns_best_attempt_on_total_failure(self, rng):
        chain = paper_chain(12)
        target = np.array([99.0, 0.0, 0.0])  # unreachable
        inner = QuickIKSolver(chain, config=SolverConfig(max_iterations=5))
        wrapper = RandomRestartSolver(inner, max_restarts=3)
        result = wrapper.solve(target, rng=rng)
        assert not result.converged
        assert result.iterations == 15  # 3 attempts x 5 iterations
        assert result.solver == "JT-Speculation+restarts"

    def test_first_attempt_honours_q0(self, rng):
        chain = paper_chain(12)
        q0 = chain.random_configuration(rng)
        target = chain.end_position(q0)
        inner = QuickIKSolver(chain, config=SolverConfig(max_iterations=10))
        result = RandomRestartSolver(inner).solve(target, q0=q0, rng=rng)
        assert result.converged
        assert result.iterations == 0  # started at the answer

    def test_invalid_max_restarts(self, rng):
        chain = paper_chain(12)
        with pytest.raises(ValueError):
            RandomRestartSolver(QuickIKSolver(chain), max_restarts=0)

    def test_exposes_inner_chain(self):
        chain = paper_chain(12)
        wrapper = RandomRestartSolver(QuickIKSolver(chain))
        assert wrapper.chain is chain
