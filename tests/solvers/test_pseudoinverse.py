"""Tests for the SVD pseudoinverse solver."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain, puma560
from repro.solvers.pseudoinverse import PseudoinverseSolver, damped_pinv


class TestDampedPinv:
    def test_matches_numpy_pinv_full_rank(self, rng):
        matrix = rng.normal(size=(3, 8))
        assert np.allclose(damped_pinv(matrix), np.linalg.pinv(matrix), atol=1e-10)

    def test_rank_deficient_truncation(self):
        matrix = np.zeros((3, 4))
        matrix[0, 0] = 1.0
        pinv = damped_pinv(matrix)
        assert np.allclose(pinv @ np.array([1.0, 0, 0]), [1.0, 0, 0, 0])
        assert np.all(np.isfinite(pinv))

    def test_zero_matrix_gives_zero(self):
        assert np.allclose(damped_pinv(np.zeros((3, 5))), 0.0)

    def test_damping_shrinks_solution(self, rng):
        matrix = rng.normal(size=(3, 6))
        error = rng.normal(size=3)
        plain = damped_pinv(matrix) @ error
        damped = damped_pinv(matrix, damping=0.5) @ error
        assert np.linalg.norm(damped) < np.linalg.norm(plain)

    def test_pinv_property_projection(self, rng):
        """J J^+ is the identity on the row space for a full-row-rank J."""
        matrix = rng.normal(size=(3, 10))
        assert np.allclose(matrix @ damped_pinv(matrix), np.eye(3), atol=1e-10)


class TestSolver:
    def test_converges_on_redundant_chain(self, rng):
        chain = paper_chain(25)
        solver = PseudoinverseSolver(chain, config=SolverConfig(max_iterations=5000))
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert result.converged

    def test_converges_on_puma(self, rng):
        chain = puma560()
        solver = PseudoinverseSolver(chain, config=SolverConfig(max_iterations=5000))
        converged = 0
        for _ in range(5):
            target = chain.end_position(chain.random_configuration(rng))
            converged += solver.solve(target, rng=rng).converged
        assert converged >= 4  # 6-DOF non-redundant is allowed an odd failure

    def test_svd_count_instrumentation(self, rng):
        chain = paper_chain(12)
        solver = PseudoinverseSolver(chain, config=SolverConfig(max_iterations=2000))
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert solver.svd_count == result.iterations

    def test_error_clamp_limits_step(self, rng):
        chain = paper_chain(12)
        solver = PseudoinverseSolver(chain, error_clamp=0.01)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        far_target = position + np.array([5.0, 0.0, 0.0])
        outcome = solver._step(q, position, far_target)
        # The step solves J dq = e_clamped, so ||J dq|| <= clamp.
        step_motion = chain.jacobian_position(q) @ (outcome.q - q)
        assert np.linalg.norm(step_motion) <= 0.01 + 1e-9

    def test_invalid_params(self):
        chain = paper_chain(12)
        with pytest.raises(ValueError):
            PseudoinverseSolver(chain, error_clamp=0.0)
        with pytest.raises(ValueError):
            PseudoinverseSolver(chain, damping=-0.1)

    def test_name(self):
        assert PseudoinverseSolver(paper_chain(12)).name == "J-1-SVD"
