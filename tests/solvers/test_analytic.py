"""Tests for the closed-form planar 2R solver."""

import math

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain, planar_chain
from repro.solvers.analytic import (
    PlanarTwoLinkSolver,
    planar_two_link_ik,
)


class TestClosedForm:
    def test_two_solutions_generic(self):
        solution = planar_two_link_ik(1.0, 0.8, np.array([1.2, 0.5]))
        assert solution.reachable
        assert len(solution.solutions) == 2

    def test_solutions_verify_by_fk(self, rng):
        l1, l2 = 0.7, 0.5
        for _ in range(20):
            q_true = rng.uniform(-math.pi, math.pi, 2)
            x = l1 * math.cos(q_true[0]) + l2 * math.cos(q_true[0] + q_true[1])
            y = l1 * math.sin(q_true[0]) + l2 * math.sin(q_true[0] + q_true[1])
            solution = planar_two_link_ik(l1, l2, np.array([x, y]))
            assert solution.reachable
            for q in solution.solutions:
                fx = l1 * math.cos(q[0]) + l2 * math.cos(q[0] + q[1])
                fy = l1 * math.sin(q[0]) + l2 * math.sin(q[0] + q[1])
                assert math.isclose(fx, x, abs_tol=1e-9)
                assert math.isclose(fy, y, abs_tol=1e-9)

    def test_unreachable_outside(self):
        solution = planar_two_link_ik(1.0, 0.5, np.array([2.0, 0.0]))
        assert not solution.reachable
        assert solution.solutions == ()

    def test_unreachable_inside_annulus(self):
        solution = planar_two_link_ik(1.0, 0.5, np.array([0.1, 0.0]))
        assert not solution.reachable

    def test_boundary_single_solution(self):
        solution = planar_two_link_ik(1.0, 0.5, np.array([1.5, 0.0]))
        assert solution.reachable
        assert len(solution.solutions) == 1
        assert np.allclose(solution.solutions[0], [0.0, 0.0], atol=1e-9)

    def test_closest_to_prefers_nearby_branch(self):
        solution = planar_two_link_ik(1.0, 0.8, np.array([1.2, 0.5]))
        up, down = solution.solutions
        assert np.allclose(solution.closest_to(up), up)
        assert np.allclose(solution.closest_to(down), down)

    def test_closest_to_unreachable_raises(self):
        solution = planar_two_link_ik(1.0, 0.5, np.array([9.0, 0.0]))
        with pytest.raises(ValueError):
            solution.closest_to(np.zeros(2))

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            planar_two_link_ik(0.0, 1.0, np.array([0.5, 0.0]))


class TestPlanarTwoLinkSolver:
    def test_rejects_non_planar_chains(self):
        with pytest.raises(ValueError):
            PlanarTwoLinkSolver(paper_chain(12))
        with pytest.raises(ValueError):
            PlanarTwoLinkSolver(planar_chain(3))

    def test_agrees_with_chain_fk(self, rng):
        chain = planar_chain(2, total_reach=1.0)
        solver = PlanarTwoLinkSolver(chain)
        for _ in range(10):
            target = chain.end_position(chain.random_configuration(rng))
            result = solver.solve(target)
            assert result.converged
            assert result.iterations == 0
            assert np.allclose(chain.end_position(result.q), target, atol=1e-9)

    def test_oracle_for_iterative_solver(self, rng):
        """Quick-IK's answer must land on (one of) the closed-form branches
        in task space."""
        chain = planar_chain(2, total_reach=1.0)
        analytic = PlanarTwoLinkSolver(chain)
        iterative = QuickIKSolver(
            chain, config=SolverConfig(tolerance=1e-6, max_iterations=5000)
        )
        for _ in range(5):
            target = chain.end_position(chain.random_configuration(rng))
            result = iterative.solve(target, rng=rng)
            if not result.converged:
                continue
            branches = analytic.solve_all(target).solutions
            task_gap = min(
                np.linalg.norm(
                    chain.end_position(result.q) - chain.end_position(q)
                )
                for q in branches
            )
            assert task_gap < 1e-5

    def test_unreachable_reports_failure(self):
        chain = planar_chain(2, total_reach=1.0)
        solver = PlanarTwoLinkSolver(chain)
        result = solver.solve(np.array([5.0, 0.0, 0.0]))
        assert not result.converged

    def test_out_of_plane_target_unreachable(self):
        chain = planar_chain(2, total_reach=1.0)
        solver = PlanarTwoLinkSolver(chain)
        assert not solver.solve_all(np.array([0.3, 0.2, 0.5])).reachable
