"""Tests for mirror-descent IK (sigmoid/logit mirror map over limit boxes).

The structural box invariance is property-tested in
``tests/property/test_mdik_properties.py``; these are the deterministic
unit cases: convergence, the closed-form step, boundary seeds, unbounded
joints, and constructor validation.
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.mdik import MirrorDescentSolver


class TestMirrorDescent:
    def test_converges_12dof(self, rng):
        chain = paper_chain(12)
        solver = MirrorDescentSolver(
            chain, config=SolverConfig(max_iterations=5000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert result.converged
        assert chain.within_limits(result.q)

    def test_converges_50dof(self, rng):
        chain = paper_chain(50)
        solver = MirrorDescentSolver(
            chain, config=SolverConfig(max_iterations=5000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_step_is_mirror_map_exactly(self, rng):
        # One step == logit-space gradient step mapped back by sigmoid.
        chain = paper_chain(12)
        solver = MirrorDescentSolver(chain, error_clamp=None)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        outcome = solver._step(q, position, target)

        from repro.core.alpha import buss_alpha

        jac = chain.jacobian_position(q)
        error = target - position
        grad = jac.T @ error
        alpha = buss_alpha(error, jac @ grad)
        lower = chain.lower_limits
        width = chain.upper_limits - lower
        ratio = np.clip((q - lower) / width, 1e-9, 1.0 - 1e-9)
        z = np.log(ratio) - np.log1p(-ratio)
        z_new = np.clip(z + (4.0 * alpha / width) * grad, -36.0, 36.0)
        expected = lower + width / (1.0 + np.exp(-z_new))
        np.testing.assert_allclose(outcome.q, expected, atol=1e-12)

    def test_boundary_seed_is_finite(self, rng):
        chain = paper_chain(12)
        solver = MirrorDescentSolver(chain)
        target = chain.end_position(chain.random_configuration(rng))
        q = solver._step(
            chain.upper_limits.copy(),
            chain.end_position(chain.upper_limits),
            target,
        ).q
        assert np.all(np.isfinite(q))
        assert chain.within_limits(q)

    def test_unbounded_joints_fall_back_to_euclidean(self, rng):
        # A chain with a non-finite limit pair cannot use the mirror map
        # on that joint; the solver must still take finite steps.
        chain = paper_chain(6)
        lower = chain.lower_limits.copy()
        upper = chain.upper_limits.copy()
        lower[2], upper[2] = -np.inf, np.inf

        class Unbounded:
            dof = chain.dof
            name = chain.name
            lower_limits = lower
            upper_limits = upper

            def __getattr__(self, attr):
                return getattr(chain, attr)

        solver = MirrorDescentSolver(Unbounded())
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))
        stepped = solver._step(q, chain.end_position(q), target).q
        assert np.all(np.isfinite(stepped))
        # the boxed joints still honour their limits
        boxed = np.isfinite(lower) & np.isfinite(upper)
        assert np.all(stepped[boxed] >= lower[boxed])
        assert np.all(stepped[boxed] <= upper[boxed])

    def test_deterministic_across_repeat_solves(self, rng):
        chain = paper_chain(12)
        solver = MirrorDescentSolver(
            chain, config=SolverConfig(max_iterations=2000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        first = solver.solve(target, rng=np.random.default_rng(9))
        second = solver.solve(target, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(first.q, second.q)
        assert first.iterations == second.iterations

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step_scale": 0.0},
            {"step_scale": -1.0},
            {"error_clamp": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MirrorDescentSolver(paper_chain(12), **kwargs)

    def test_registry_name(self):
        from repro.solvers.registry import SOLVER_REGISTRY, make_solver

        assert SOLVER_REGISTRY["mdik"] is MirrorDescentSolver
        solver = make_solver("mdik", paper_chain(6), step_scale=2.0)
        assert solver.step_scale == 2.0
        assert solver.name == "mdik"
