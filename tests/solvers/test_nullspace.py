"""Tests for null-space redundancy resolution."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.joint import Joint, JointLimits
from repro.kinematics.chain import KinematicChain
from repro.kinematics.robots import paper_chain
from repro.solvers.nullspace import NullSpaceSolver, limit_centering_gradient
from repro.solvers.pseudoinverse import PseudoinverseSolver


class TestLimitCenteringGradient:
    def test_zero_at_centres(self):
        chain = paper_chain(12)
        mid = 0.5 * (chain.lower_limits + chain.upper_limits)
        gradient = limit_centering_gradient(chain)
        assert np.allclose(gradient(mid), 0.0)

    def test_points_toward_centre(self):
        chain = KinematicChain(
            [Joint.revolute(a=0.2, limits=JointLimits(-1.0, 1.0)) for _ in range(3)]
        )
        gradient = limit_centering_gradient(chain)
        g = gradient(np.array([0.9, -0.9, 0.0]))
        assert g[0] < 0.0  # pull down from near upper limit
        assert g[1] > 0.0  # pull up from near lower limit
        assert g[2] == pytest.approx(0.0)


class TestNullSpaceSolver:
    def test_converges(self, rng):
        chain = paper_chain(25)
        solver = NullSpaceSolver(chain, config=SolverConfig(max_iterations=5000))
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_nullspace_motion_does_not_move_end_effector(self, rng):
        """The projected secondary step must be (to first order) invisible in
        task space."""
        chain = paper_chain(25)
        solver = NullSpaceSolver(chain, nullspace_gain=1.0, error_clamp=None)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        # Zero task error isolates the null-space component.
        outcome = solver._step(q, position, position.copy())
        step = outcome.q - q
        task_motion = chain.jacobian_position(q) @ step
        assert np.linalg.norm(task_motion) < 1e-8 * max(1.0, np.linalg.norm(step))

    def test_prefers_centered_solutions(self, rng):
        """With the limit-centering objective, converged configurations sit
        closer to the joint-limit centres than plain pseudoinverse ones."""
        chain = paper_chain(25)
        config = SolverConfig(max_iterations=5000)
        nullspace = NullSpaceSolver(chain, config=config, nullspace_gain=0.5)
        plain = PseudoinverseSolver(chain, config=config)
        mid = 0.5 * (chain.lower_limits + chain.upper_limits)

        def centredness(q):
            return float(np.linalg.norm(q - mid))

        wins = 0
        trials = 6
        for seed in range(trials):
            restart = np.random.default_rng(seed)
            target = chain.end_position(chain.random_configuration(rng))
            a = nullspace.solve(target, rng=np.random.default_rng(seed))
            b = plain.solve(target, rng=np.random.default_rng(seed))
            if a.converged and b.converged and centredness(a.q) < centredness(b.q):
                wins += 1
            del restart
        assert wins >= trials - 2

    def test_zero_gain_matches_pseudoinverse_step(self, rng):
        chain = paper_chain(12)
        nullspace = NullSpaceSolver(chain, nullspace_gain=0.0, error_clamp=None)
        plain = PseudoinverseSolver(chain, error_clamp=None)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        a = nullspace._step(q, position, target)
        b = plain._step(q, position, target)
        assert np.allclose(a.q, b.q, atol=1e-12)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            NullSpaceSolver(paper_chain(12), nullspace_gain=-0.1)

    def test_custom_objective_hook(self, rng):
        chain = paper_chain(12)
        calls = []

        def objective(q):
            calls.append(1)
            return np.zeros(chain.dof)

        solver = NullSpaceSolver(chain, objective_gradient=objective)
        q = chain.random_configuration(rng)
        solver._step(q, chain.end_position(q), np.zeros(3))
        assert calls
