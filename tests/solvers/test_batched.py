"""Tests for the lock-step throughput solvers."""

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.batched import BatchedJacobianTranspose, BatchedQuickIK
from repro.solvers.jacobian_transpose import JacobianTransposeSolver


@pytest.fixture(scope="module")
def workload():
    chain = paper_chain(12)
    rng = np.random.default_rng(4)
    targets = np.stack(
        [chain.end_position(chain.random_configuration(rng)) for _ in range(8)]
    )
    q0 = np.stack([chain.random_configuration(rng) for _ in range(8)])
    return chain, targets, q0


class TestBatchedQuickIK:
    def test_matches_scalar_exactly(self, workload):
        chain, targets, q0 = workload
        config = SolverConfig(max_iterations=2000, record_history=False)
        batched = BatchedQuickIK(chain, config=config).solve_batch(targets, q0=q0)
        scalar = QuickIKSolver(chain, config=config)
        for i, result in enumerate(batched):
            reference = scalar.solve(targets[i], q0=q0[i])
            assert result.iterations == reference.iterations
            assert np.allclose(result.q, reference.q, atol=1e-9)
            assert result.converged == reference.converged

    def test_all_converge(self, workload):
        chain, targets, q0 = workload
        results = BatchedQuickIK(chain).solve_batch(targets, q0=q0)
        assert all(r.converged for r in results)

    def test_chunking_does_not_change_results(self, workload):
        chain, targets, q0 = workload
        config = SolverConfig(max_iterations=2000, record_history=False)
        small = BatchedQuickIK(chain, config=config, chunk=7).solve_batch(
            targets, q0=q0
        )
        large = BatchedQuickIK(chain, config=config, chunk=10_000).solve_batch(
            targets, q0=q0
        )
        for a, b in zip(small, large):
            assert a.iterations == b.iterations
            assert np.allclose(a.q, b.q, atol=1e-12)

    def test_shared_q0_broadcast(self, workload):
        chain, targets, _ = workload
        shared = np.full(chain.dof, 0.3)
        results = BatchedQuickIK(chain).solve_batch(targets, q0=shared)
        assert len(results) == len(targets)

    def test_random_restarts_without_q0(self, workload):
        chain, targets, _ = workload
        results = BatchedQuickIK(chain).solve_batch(
            targets, rng=np.random.default_rng(0)
        )
        assert all(r.converged for r in results)

    def test_iteration_cap_respected(self, workload):
        chain, _, q0 = workload
        unreachable = np.tile([99.0, 0.0, 0.0], (len(q0), 1))
        config = SolverConfig(max_iterations=4, record_history=False)
        results = BatchedQuickIK(chain, config=config).solve_batch(
            unreachable, q0=q0
        )
        assert all(not r.converged and r.iterations == 4 for r in results)

    def test_invalid_inputs(self, workload):
        chain, targets, _ = workload
        with pytest.raises(ValueError):
            BatchedQuickIK(chain, speculations=0)
        with pytest.raises(ValueError):
            BatchedQuickIK(chain, chunk=0)
        with pytest.raises(ValueError):
            BatchedQuickIK(chain).solve_batch(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            BatchedQuickIK(chain).solve_batch(targets, q0=np.zeros((3, chain.dof)))

    def test_fk_accounting(self, workload):
        chain, targets, q0 = workload
        results = BatchedQuickIK(chain, speculations=16).solve_batch(
            targets, q0=q0
        )
        for result in results:
            assert result.fk_evaluations == 1 + 16 * result.iterations


class TestBatchedJacobianTranspose:
    def test_matches_scalar_exactly(self, workload):
        chain, targets, q0 = workload
        config = SolverConfig(max_iterations=5000, record_history=False)
        batched = BatchedJacobianTranspose(chain, config=config).solve_batch(
            targets, q0=q0
        )
        scalar = JacobianTransposeSolver(chain, config=config)
        for i, result in enumerate(batched):
            reference = scalar.solve(targets[i], q0=q0[i])
            assert result.iterations == reference.iterations
            assert np.allclose(result.q, reference.q, atol=1e-9)

    def test_uses_classic_gain_by_default(self, workload):
        from repro.solvers.jacobian_transpose import classic_transpose_gain

        chain, _, _ = workload
        solver = BatchedJacobianTranspose(chain)
        assert solver.alpha == pytest.approx(classic_transpose_gain(chain))

    def test_fixed_alpha_override(self, workload):
        chain, _, _ = workload
        assert BatchedJacobianTranspose(chain, fixed_alpha=0.02).alpha == 0.02

    def test_mixed_convergence_bookkeeping(self, workload):
        """Reachable and unreachable targets in one batch keep independent
        iteration counts."""
        chain, targets, q0 = workload
        mixed = targets.copy()
        mixed[0] = [99.0, 0.0, 0.0]
        config = SolverConfig(max_iterations=50, record_history=False)
        results = BatchedJacobianTranspose(chain, config=config).solve_batch(
            mixed, q0=q0
        )
        assert not results[0].converged
        assert results[0].iterations == 50
