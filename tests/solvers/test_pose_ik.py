"""Tests for the full-pose Quick-IK extension."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain, seven_dof_arm
from repro.solvers.pose_ik import PoseQuickIKSolver


class TestPoseQuickIK:
    def test_converges_position_and_orientation(self, rng):
        chain = paper_chain(25)
        solver = PoseQuickIKSolver(
            chain, config=SolverConfig(tolerance=1e-2, max_iterations=3000)
        )
        q_goal = chain.random_configuration(rng)
        target_pose = chain.fk(q_goal)
        result = solver.solve(target_pose, rng=rng)
        assert result.converged
        reached = chain.fk(result.q)
        assert np.linalg.norm(reached[:3, 3] - target_pose[:3, 3]) < 2e-2
        # Orientation within ~weighted tolerance.
        from repro.kinematics.transforms import orientation_error

        assert np.linalg.norm(
            orientation_error(reached[:3, :3], target_pose[:3, :3])
        ) < 0.1

    def test_redundant_7dof(self, rng):
        chain = seven_dof_arm()
        solver = PoseQuickIKSolver(
            chain, config=SolverConfig(tolerance=1e-2, max_iterations=3000)
        )
        converged = 0
        for _ in range(4):
            target_pose = chain.fk(chain.random_configuration(rng))
            converged += solver.solve(target_pose, rng=rng).converged
        assert converged >= 3

    def test_zero_orientation_weight_tracks_position_only(self, rng):
        chain = paper_chain(12)
        solver = PoseQuickIKSolver(
            chain,
            orientation_weight=0.0,
            config=SolverConfig(tolerance=1e-2, max_iterations=2000),
        )
        target_pose = chain.fk(chain.random_configuration(rng))
        result = solver.solve(target_pose, rng=rng)
        assert result.converged
        assert np.linalg.norm(
            chain.end_position(result.q) - target_pose[:3, 3]
        ) < 1e-2

    def test_batch_error_matches_scalar(self, rng):
        chain = paper_chain(12)
        solver = PoseQuickIKSolver(chain)
        target_pose = chain.fk(chain.random_configuration(rng))
        qs = np.stack([chain.random_configuration(rng) for _ in range(5)])
        poses = chain.fk_batch(qs)
        batched = solver._pose_errors_batch(poses, target_pose)
        for i in range(5):
            scalar = solver._pose_error(poses[i], target_pose)
            assert np.allclose(batched[i], scalar, atol=1e-12)

    def test_invalid_target_shape(self):
        solver = PoseQuickIKSolver(paper_chain(12))
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PoseQuickIKSolver(paper_chain(12), speculations=0)
        with pytest.raises(ValueError):
            PoseQuickIKSolver(paper_chain(12), orientation_weight=-1.0)

    def test_result_metadata(self, rng):
        chain = paper_chain(12)
        solver = PoseQuickIKSolver(chain, speculations=16)
        target_pose = chain.fk(chain.random_configuration(rng))
        result = solver.solve(target_pose, rng=rng)
        assert result.solver == "JT-Speculation-6D"
        assert result.speculations == 16
        assert result.dof == 12
