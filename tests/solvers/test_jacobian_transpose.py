"""Tests for JT-Serial and the classic constant gain."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain, planar_chain
from repro.solvers.jacobian_transpose import (
    JacobianTransposeSolver,
    classic_transpose_gain,
)


class TestClassicGain:
    def test_positive(self):
        assert classic_transpose_gain(paper_chain(12)) > 0.0

    def test_scales_inversely_with_reach_squared(self):
        small = classic_transpose_gain(planar_chain(4, total_reach=1.0))
        large = classic_transpose_gain(planar_chain(4, total_reach=2.0))
        assert small / large == pytest.approx(4.0)

    def test_safety_factor_scales_linearly(self):
        chain = paper_chain(12)
        assert classic_transpose_gain(chain, safety=2.0) == pytest.approx(
            2.0 * classic_transpose_gain(chain)
        )

    def test_invalid_safety(self):
        with pytest.raises(ValueError):
            classic_transpose_gain(paper_chain(12), safety=0.0)

    def test_gain_is_stable_bound(self, rng):
        """The gain must satisfy alpha * sigma_max(J)^2 < 2 everywhere
        (the contraction condition for the transpose iteration)."""
        chain = paper_chain(12)
        gain = classic_transpose_gain(chain)
        for _ in range(50):
            jac = chain.jacobian_position(chain.random_configuration(rng))
            sigma_max = np.linalg.svd(jac, compute_uv=False)[0]
            assert gain * sigma_max**2 < 2.0


class TestSolver:
    def test_classic_mode_converges(self, fast_config, rng):
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=10_000)
        solver = JacobianTransposeSolver(chain, config=config)
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert result.converged

    def test_buss_mode_much_faster_than_classic(self, rng):
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=10_000)
        classic = JacobianTransposeSolver(chain, config=config, alpha_mode="classic")
        buss = JacobianTransposeSolver(chain, config=config, alpha_mode="buss")
        classic_iters, buss_iters = [], []
        for _ in range(5):
            q0 = chain.random_configuration(rng)
            target = chain.end_position(chain.random_configuration(rng))
            classic_iters.append(classic.solve(target, q0=q0).iterations)
            buss_iters.append(buss.solve(target, q0=q0).iterations)
        assert np.mean(buss_iters) < 0.3 * np.mean(classic_iters)

    def test_fixed_alpha_override(self, rng):
        chain = planar_chain(3)
        solver = JacobianTransposeSolver(chain, fixed_alpha=0.05)
        assert solver.constant_alpha == 0.05

    def test_classic_alpha_exposed(self):
        chain = paper_chain(12)
        solver = JacobianTransposeSolver(chain)
        assert solver.constant_alpha == pytest.approx(classic_transpose_gain(chain))

    def test_buss_mode_has_no_constant(self):
        solver = JacobianTransposeSolver(paper_chain(12), alpha_mode="buss")
        assert solver.constant_alpha is None

    def test_invalid_alpha_mode(self):
        with pytest.raises(ValueError):
            JacobianTransposeSolver(paper_chain(12), alpha_mode="magic")

    def test_invalid_fixed_alpha(self):
        with pytest.raises(ValueError):
            JacobianTransposeSolver(paper_chain(12), fixed_alpha=-1.0)

    def test_single_step_direction_is_transpose_gradient(self, rng):
        """One step moves along J^T e exactly."""
        chain = planar_chain(3)
        solver = JacobianTransposeSolver(chain, fixed_alpha=0.01)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        outcome = solver._step(q, position, target)
        expected = q + 0.01 * chain.jacobian_position(q).T @ (target - position)
        assert np.allclose(outcome.q, expected)

    def test_name_and_speculations(self):
        solver = JacobianTransposeSolver(paper_chain(12))
        assert solver.name == "JT-Serial"
        assert solver.speculations == 1
