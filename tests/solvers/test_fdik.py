"""Tests for forward-dynamics IK (virtual-model damped dynamics steps)."""

import numpy as np
import pytest

from repro.core.alpha import buss_alpha
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.fdik import ForwardDynamicsSolver


class TestForwardDynamics:
    def test_converges_12dof(self, rng):
        chain = paper_chain(12)
        solver = ForwardDynamicsSolver(
            chain, config=SolverConfig(max_iterations=5000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_converges_50dof(self, rng):
        chain = paper_chain(50)
        solver = ForwardDynamicsSolver(
            chain, config=SolverConfig(max_iterations=5000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_step_matches_closed_form(self, rng):
        # First step from rest: qd = force_scale * alpha * J^T e.
        chain = paper_chain(12)
        solver = ForwardDynamicsSolver(
            chain, damping=0.75, force_scale=1.0, error_clamp=None
        )
        q = chain.random_configuration(rng)
        solver.initial_configuration(q, rng)  # resets the velocity state
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        outcome = solver._step(q, position, target)
        jac = chain.jacobian_position(q)
        error = target - position
        tau = jac.T @ error
        expected = q + buss_alpha(error, jac @ tau) * tau
        np.testing.assert_allclose(outcome.q, expected)

    def test_momentum_accumulates_across_steps(self, rng):
        # damping < 1 keeps a fraction of the previous velocity: two steps
        # toward the same target move further than two memoryless steps.
        chain = paper_chain(12)
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))

        def two_steps(damping):
            solver = ForwardDynamicsSolver(chain, damping=damping)
            solver.initial_configuration(q, rng)
            q1 = solver._step(q, chain.end_position(q), target).q
            q2 = solver._step(q1, chain.end_position(q1), target).q
            return q2

        with_momentum = two_steps(damping=0.25)
        memoryless = two_steps(damping=1.0)
        assert np.linalg.norm(with_momentum - q) > np.linalg.norm(
            memoryless - q
        )

    def test_full_damping_recovers_buss_transpose_mode(self, rng):
        # damping=1 discards all velocity memory: each step is exactly the
        # Buss-normalized Jacobian-transpose step.
        chain = paper_chain(12)
        solver = ForwardDynamicsSolver(chain, damping=1.0, error_clamp=None)
        q = chain.random_configuration(rng)
        target = chain.end_position(chain.random_configuration(rng))
        solver.initial_configuration(q, rng)
        first = solver._step(q, chain.end_position(q), target).q
        solver.initial_configuration(q, rng)
        again = solver._step(q, chain.end_position(q), target).q
        np.testing.assert_array_equal(first, again)

    def test_velocity_state_resets_between_solves(self, rng):
        # The per-solve reset is what makes fdik deterministic across the
        # scalar, batch-fallback and sharded execution paths.
        chain = paper_chain(12)
        solver = ForwardDynamicsSolver(
            chain, config=SolverConfig(max_iterations=2000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        first = solver.solve(target, rng=np.random.default_rng(5))
        second = solver.solve(target, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(first.q, second.q)
        assert first.iterations == second.iterations

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"damping": 0.0},
            {"damping": 1.5},
            {"force_scale": 0.0},
            {"error_clamp": 0.0},
            {"error_clamp": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ForwardDynamicsSolver(paper_chain(12), **kwargs)

    def test_registry_name(self):
        from repro.solvers.registry import SOLVER_REGISTRY, make_solver

        assert SOLVER_REGISTRY["fdik"] is ForwardDynamicsSolver
        solver = make_solver("fdik", paper_chain(6), damping=0.5)
        assert solver.damping == 0.5
        assert solver.name == "fdik"
