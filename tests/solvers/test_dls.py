"""Tests for damped least squares."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.dls import DampedLeastSquaresSolver
from repro.solvers.pseudoinverse import damped_pinv


class TestDLS:
    def test_converges(self, rng):
        chain = paper_chain(12)
        solver = DampedLeastSquaresSolver(
            chain, config=SolverConfig(max_iterations=5000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_adaptive_converges(self, rng):
        chain = paper_chain(25)
        solver = DampedLeastSquaresSolver(
            chain, config=SolverConfig(max_iterations=5000), adaptive=True
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_step_matches_closed_form(self, rng):
        """dtheta = J^T (JJ^T + lambda^2 I)^-1 e (without clamping)."""
        chain = paper_chain(12)
        solver = DampedLeastSquaresSolver(chain, damping=0.3, error_clamp=None)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        outcome = solver._step(q, position, target)
        jac = chain.jacobian_position(q)
        expected = q + jac.T @ np.linalg.solve(
            jac @ jac.T + 0.09 * np.eye(3), target - position
        )
        assert np.allclose(outcome.q, expected)

    def test_large_damping_approaches_scaled_transpose(self, rng):
        """As lambda -> inf, DLS direction tends to the JT direction."""
        chain = paper_chain(12)
        solver = DampedLeastSquaresSolver(chain, damping=1e6, error_clamp=None)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        step = solver._step(q, position, target).q - q
        jt_dir = chain.jacobian_position(q).T @ (target - position)
        cosine = step @ jt_dir / (np.linalg.norm(step) * np.linalg.norm(jt_dir))
        assert cosine > 0.9999

    def test_zero_damping_rejected(self):
        with pytest.raises(ValueError):
            DampedLeastSquaresSolver(paper_chain(12), damping=0.0)

    def test_invalid_clamp_rejected(self):
        with pytest.raises(ValueError):
            DampedLeastSquaresSolver(paper_chain(12), error_clamp=-0.1)

    def test_dls_step_equals_damped_pinv_step(self, rng):
        """The normal-equation form must agree with the SVD damped form."""
        chain = paper_chain(12)
        solver = DampedLeastSquaresSolver(chain, damping=0.2, error_clamp=None)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = chain.end_position(chain.random_configuration(rng))
        jac = chain.jacobian_position(q)
        via_svd = damped_pinv(jac, damping=0.2) @ (target - position)
        via_solver = solver._step(q, position, target).q - q
        assert np.allclose(via_solver, via_svd, atol=1e-10)
