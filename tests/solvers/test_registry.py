"""Tests for the solver registry / factory."""

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers import SOLVER_REGISTRY, make_solver


class TestRegistry:
    def test_contains_paper_methods(self):
        for name in ("JT-Serial", "J-1-SVD", "JT-Speculation"):
            assert name in SOLVER_REGISTRY

    def test_make_solver_builds_right_type(self):
        chain = paper_chain(12)
        solver = make_solver("JT-Speculation", chain, speculations=16)
        assert isinstance(solver, QuickIKSolver)
        assert solver.speculations == 16

    def test_make_solver_passes_config(self):
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=42)
        solver = make_solver("JT-Serial", chain, config=config)
        assert solver.config.max_iterations == 42

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_solver("JT-Quantum", paper_chain(12))

    def test_every_registered_solver_solves_a_target(self, rng):
        """Each solver in the registry converges on an easy 12-DOF target."""
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=10_000)
        q_goal = chain.random_configuration(rng)
        target = chain.end_position(q_goal)
        for name in SOLVER_REGISTRY:
            solver = make_solver(name, chain, config=config)
            result = solver.solve(target, rng=np.random.default_rng(11))
            assert result.converged, f"{name} failed"
            assert result.solver == name
