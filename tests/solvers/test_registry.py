"""Tests for the solver registries / factories."""

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import BatchResult, SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers import (
    BATCH_REGISTRY,
    BatchedJacobianTranspose,
    BatchedQuickIK,
    SOLVER_REGISTRY,
    describe_solver_options,
    make_batch_solver,
    make_solver,
    solver_options,
)


class TestRegistry:
    def test_contains_paper_methods(self):
        for name in ("JT-Serial", "J-1-SVD", "JT-Speculation"):
            assert name in SOLVER_REGISTRY

    def test_make_solver_builds_right_type(self):
        chain = paper_chain(12)
        solver = make_solver("JT-Speculation", chain, speculations=16)
        assert isinstance(solver, QuickIKSolver)
        assert solver.speculations == 16

    def test_make_solver_passes_config(self):
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=42)
        solver = make_solver("JT-Serial", chain, config=config)
        assert solver.config.max_iterations == 42

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_solver("JT-Quantum", paper_chain(12))

    def test_every_registered_solver_solves_a_target(self, rng):
        """Each solver in the registry converges on an easy 12-DOF target."""
        chain = paper_chain(12)
        config = SolverConfig(max_iterations=10_000)
        q_goal = chain.random_configuration(rng)
        target = chain.end_position(q_goal)
        for name in SOLVER_REGISTRY:
            solver = make_solver(name, chain, config=config)
            result = solver.solve(target, rng=np.random.default_rng(11))
            assert result.converged, f"{name} failed"
            assert result.solver == name


class TestKwargValidation:
    def test_unknown_kwarg_names_solver_and_options(self):
        chain = paper_chain(12)
        with pytest.raises(TypeError) as excinfo:
            make_solver("JT-DLS", chain, dampling=0.2)
        message = str(excinfo.value)
        assert "JT-DLS" in message
        assert "dampling" in message
        assert "damping" in message  # the accepted options are listed

    def test_known_kwargs_still_forwarded(self):
        chain = paper_chain(12)
        solver = make_solver("JT-DLS", chain, damping=0.3, adaptive=True)
        assert solver.damping == 0.3
        assert solver.adaptive

    def test_solver_options_exposes_defaults(self):
        options = solver_options("JT-Speculation")
        assert set(options) == {"speculations", "schedule", "track_chosen"}
        assert options["speculations"].default == 64

    def test_solver_options_unknown_name(self):
        with pytest.raises(KeyError):
            solver_options("JT-Quantum")

    def test_describe_covers_every_solver(self):
        text = describe_solver_options()
        for name in SOLVER_REGISTRY:
            assert name in text


class TestBatchRegistry:
    def test_parallel_names(self):
        assert set(BATCH_REGISTRY) <= set(SOLVER_REGISTRY)

    def test_make_batch_solver_builds_engines(self):
        chain = paper_chain(12)
        assert isinstance(
            make_batch_solver("JT-Speculation", chain, speculations=8),
            BatchedQuickIK,
        )
        assert isinstance(
            make_batch_solver("JT-Serial", chain), BatchedJacobianTranspose
        )

    def test_scalar_fallback_has_solve_batch(self, rng):
        chain = paper_chain(12)
        solver = make_batch_solver("CCD", chain)
        target = chain.end_position(chain.random_configuration(rng))
        batch = solver.solve_batch(np.atleast_2d(target), rng=rng)
        assert isinstance(batch, BatchResult)
        assert len(batch) == 1

    def test_unknown_batch_kwarg_rejected(self):
        with pytest.raises(TypeError, match="JT-Serial"):
            make_batch_solver("JT-Serial", paper_chain(12), alpha=0.1)

    def test_unknown_batch_name(self):
        with pytest.raises(KeyError):
            make_batch_solver("JT-Quantum", paper_chain(12))
