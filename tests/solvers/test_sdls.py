"""Tests for selectively damped least squares."""

import math

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain
from repro.solvers.sdls import SelectivelyDampedSolver, clamp_max_abs


class TestClampMaxAbs:
    def test_no_change_when_within_bound(self):
        vector = np.array([0.1, -0.2, 0.05])
        assert np.array_equal(clamp_max_abs(vector, 0.5), vector)

    def test_rescales_to_bound(self):
        vector = np.array([2.0, -4.0, 1.0])
        clamped = clamp_max_abs(vector, 1.0)
        assert np.max(np.abs(clamped)) == pytest.approx(1.0)
        # Direction preserved.
        assert np.allclose(clamped / np.linalg.norm(clamped),
                           vector / np.linalg.norm(vector))

    def test_empty_vector(self):
        assert clamp_max_abs(np.array([]), 1.0).size == 0


class TestSDLS:
    def test_converges(self, rng):
        chain = paper_chain(12)
        solver = SelectivelyDampedSolver(
            chain, config=SolverConfig(max_iterations=5000)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_step_bounded_by_gamma_max(self, rng):
        chain = paper_chain(25)
        gamma = math.pi / 8
        solver = SelectivelyDampedSolver(chain, gamma_max=gamma)
        for _ in range(10):
            q = chain.random_configuration(rng)
            position = chain.end_position(q)
            target = chain.end_position(chain.random_configuration(rng))
            step = solver._step(q, position, target).q - q
            assert np.max(np.abs(step)) <= gamma + 1e-12

    def test_zero_error_gives_zero_step(self, rng):
        chain = paper_chain(12)
        solver = SelectivelyDampedSolver(chain)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        step = solver._step(q, position, position.copy()).q - q
        assert np.allclose(step, 0.0, atol=1e-12)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            SelectivelyDampedSolver(paper_chain(12), gamma_max=0.0)

    def test_small_error_step_close_to_pinv(self, rng):
        """Far from singularities with a small error, SDLS is essentially the
        pseudoinverse step (no component clamps engage)."""
        chain = paper_chain(12)
        solver = SelectivelyDampedSolver(chain, gamma_max=math.pi)
        q = chain.random_configuration(rng)
        position = chain.end_position(q)
        target = position + 1e-4 * rng.normal(size=3)
        step = solver._step(q, position, target).q - q
        expected = np.linalg.pinv(chain.jacobian_position(q)) @ (target - position)
        assert np.allclose(step, expected, atol=1e-8)
