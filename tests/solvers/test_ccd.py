"""Tests for cyclic coordinate descent."""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.robots import paper_chain, planar_chain, stanford_arm
from repro.solvers.ccd import CyclicCoordinateDescentSolver


class TestCCD:
    def test_converges_planar(self, rng):
        chain = planar_chain(4)
        solver = CyclicCoordinateDescentSolver(
            chain, config=SolverConfig(max_iterations=500)
        )
        target = chain.end_position(chain.random_configuration(rng))
        assert solver.solve(target, rng=rng).converged

    def test_converges_spatial(self, rng):
        chain = paper_chain(12)
        solver = CyclicCoordinateDescentSolver(
            chain, config=SolverConfig(max_iterations=500)
        )
        converged = 0
        for _ in range(5):
            target = chain.end_position(chain.random_configuration(rng))
            converged += solver.solve(target, rng=rng).converged
        assert converged >= 4

    def test_handles_prismatic_joints(self, rng):
        chain = stanford_arm()
        solver = CyclicCoordinateDescentSolver(
            chain, config=SolverConfig(max_iterations=500)
        )
        q_goal = chain.random_configuration(rng)
        target = chain.end_position(q_goal)
        result = solver.solve(target, rng=rng)
        assert result.converged
        # Prismatic values must respect their limits (CCD clamps them).
        for joint, value in zip(chain.joints, result.q):
            if joint.is_prismatic:
                assert joint.limits.contains(value, tol=1e-9)

    def test_one_sweep_never_increases_error(self, rng):
        """Each single-joint update is locally optimal, so a full sweep can
        only reduce the end-effector error."""
        chain = planar_chain(5)
        solver = CyclicCoordinateDescentSolver(chain)
        for _ in range(10):
            q = chain.random_configuration(rng)
            target = chain.end_position(chain.random_configuration(rng))
            before = np.linalg.norm(target - chain.end_position(q))
            outcome = solver._step(q, chain.end_position(q), target)
            after = np.linalg.norm(target - chain.end_position(outcome.q))
            assert after <= before + 1e-10

    def test_single_revolute_joint_exact(self):
        """One planar joint: a single CCD update lands exactly on the best
        angle."""
        chain = planar_chain(1)
        solver = CyclicCoordinateDescentSolver(chain)
        target = chain.end_position(np.array([1.1]))
        outcome = solver._step(np.array([0.2]), chain.end_position(np.array([0.2])), target)
        assert np.allclose(chain.end_position(outcome.q), target, atol=1e-10)

    def test_fk_evaluations_counted_per_sweep(self, rng):
        chain = planar_chain(4)
        solver = CyclicCoordinateDescentSolver(chain)
        q = chain.random_configuration(rng)
        outcome = solver._step(q, chain.end_position(q), np.array([0.5, 0.0, 0.0]))
        assert outcome.fk_evaluations == 4  # one per joint in the sweep

    def test_target_on_joint_axis_is_skipped(self):
        """A target on the rotation axis gives the joint no leverage; the
        update must be a no-op rather than NaN."""
        chain = planar_chain(2)
        solver = CyclicCoordinateDescentSolver(chain)
        q = np.array([0.3, 0.1])
        target = np.array([0.0, 0.0, 0.0])  # base origin: on joint-0 axis
        outcome = solver._step(q, chain.end_position(q), target)
        assert np.all(np.isfinite(outcome.q))
