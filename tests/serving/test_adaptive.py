"""Adaptive batching policy (clock-free) and SLO-aware shedding.

The batcher half runs entirely on synthetic timestamps — arrival times ride
in on ``entry.enqueue_t`` and every probe takes ``now`` explicitly — so the
trigger-tuning policy is pinned without a single sleep.  The shedding half
drives a real server but injects the per-group execution-time estimate
directly, making the predicted-miss path deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kinematics.robots import named_robot
from repro.serving import IKServer, ServerConfig, SloShed, SolveRequest
from repro.serving.batcher import (
    FILL_SLACK,
    WAIT_FLOOR_FRACTION,
    GroupKey,
    MicroBatcher,
    PendingEntry,
)

KEY = GroupKey("robot-a", "JT-DLS", None, ())
OTHER = GroupKey("robot-b", "JT-DLS", None, ())


def entry(t: float, key: GroupKey = KEY) -> PendingEntry:
    return PendingEntry(
        request=None, chain=None, key=key, target=None, q0=None,
        future=None, enqueue_t=t,
    )


def feed(batcher: MicroBatcher, times, key: GroupKey = KEY) -> None:
    for t in times:
        batcher.add(entry(t, key))


class TestEffectiveParams:
    def test_static_until_an_estimate_exists(self):
        b = MicroBatcher(max_batch_size=8, max_wait_s=0.1, adaptive=True)
        assert b.effective_params(KEY) == (8, 0.1)  # unknown group
        feed(b, [0.0])  # one arrival: no inter-arrival estimate yet
        assert b.effective_params(KEY) == (8, 0.1)

    def test_adaptive_off_is_always_static(self):
        b = MicroBatcher(max_batch_size=8, max_wait_s=0.1, adaptive=False)
        feed(b, [0.0, 1.0, 2.0])
        assert b.effective_params(KEY) == (8, 0.1)

    def test_slow_group_shrinks_size_trigger_keeps_wait(self):
        # 1s between arrivals, 0.1s window: at most one request will show
        # up per window, so the effective size is 1 — a lone request on an
        # idle group is size-ready immediately.
        b = MicroBatcher(max_batch_size=8, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 1.0, 2.0])
        size, wait = b.effective_params(KEY)
        assert size == 1
        assert wait == 0.1

    def test_fast_group_keeps_size_shrinks_wait(self):
        # 5ms between arrivals, 100ms window: the batch will fill on size;
        # the wait collapses to ~FILL_SLACK x predicted fill time.
        b = MicroBatcher(max_batch_size=8, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 0.005, 0.010, 0.015])
        size, wait = b.effective_params(KEY)
        assert size == 8
        assert wait == pytest.approx(FILL_SLACK * 0.005 * 8)
        assert wait < 0.1

    def test_wait_shrink_is_floored(self):
        # A same-thread burst (tiny but nonzero dt) must not collapse the
        # age trigger to ~zero: the floor is a fixed fraction of the
        # static wait.
        b = MicroBatcher(max_batch_size=4, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 1e-6, 2e-6, 3e-6])
        _, wait = b.effective_params(KEY)
        assert wait == pytest.approx(WAIT_FLOOR_FRACTION * 0.1)

    def test_coincident_arrivals_fall_back_to_static(self):
        b = MicroBatcher(max_batch_size=4, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 0.0, 0.0])  # dt EWMA is exactly 0
        assert b.effective_params(KEY) == (4, 0.1)

    def test_static_knobs_are_ceilings(self):
        # Whatever the estimate, the effective triggers never exceed the
        # configured ones.
        for times in ([0.0, 10.0], [0.0, 1e-5, 2e-5], [0.0, 0.02, 0.04]):
            b = MicroBatcher(max_batch_size=6, max_wait_s=0.05, adaptive=True)
            feed(b, times)
            size, wait = b.effective_params(KEY)
            assert 1 <= size <= 6
            assert 0.0 < wait <= 0.05


class TestPopOne:
    def test_adaptive_flush_of_a_lone_slow_request(self):
        b = MicroBatcher(max_batch_size=8, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 1.0])        # establish the 1s inter-arrival EWMA
        b.pop_one(now=1.0, force=True)  # clear the history (not counted)
        feed(b, [2.0])
        # Group is slow (effective size 1): the fresh lone request is due
        # immediately, long before the 0.1s age trigger.
        batch = b.pop_one(now=2.001)
        assert batch is not None and len(batch) == 1
        assert b.adaptive_adjustments == 1
        assert b.pending_count == 0

    def test_statically_due_flush_is_not_counted_adaptive(self):
        b = MicroBatcher(max_batch_size=2, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 0.001])  # full batch: static size trigger
        batch = b.pop_one(now=0.001)
        assert batch is not None and len(batch) == 2
        assert b.adaptive_adjustments == 0

    def test_one_batch_per_call_oldest_group_first(self):
        b = MicroBatcher(max_batch_size=2, max_wait_s=0.0, adaptive=False)
        feed(b, [1.0], key=OTHER)
        feed(b, [0.0, 0.5], key=KEY)
        first = b.pop_one(now=2.0)
        second = b.pop_one(now=2.0)
        assert first.key == KEY and len(first) == 2
        assert second.key == OTHER and len(second) == 1
        assert b.pop_one(now=2.0) is None

    def test_force_drains_undue_groups(self):
        b = MicroBatcher(max_batch_size=8, max_wait_s=10.0, adaptive=False)
        feed(b, [0.0, 0.1])
        assert b.pop_one(now=0.2) is None  # neither trigger fired
        batch = b.pop_one(now=0.2, force=True)
        assert batch is not None and len(batch) == 2
        assert b.adaptive_adjustments == 0  # forced, not adaptive

    def test_next_flush_at_tracks_effective_wait(self):
        b = MicroBatcher(max_batch_size=8, max_wait_s=0.1, adaptive=True)
        feed(b, [0.0, 0.005, 0.010])
        _, wait = b.effective_params(KEY)
        assert b.next_flush_at() == pytest.approx(0.0 + wait)


class TestSloShedding:
    ROBOT = "dadu-12dof"

    def _target(self, seed: int = 0) -> np.ndarray:
        chain = named_robot(self.ROBOT)
        rng = np.random.default_rng(seed)
        return chain.end_position(chain.random_configuration(rng))

    def _prime(self, srv: IKServer) -> None:
        """One probe solve so the group has an execution-time estimate."""
        srv.solve(
            SolveRequest(self.ROBOT, self._target(), max_iterations=300),
            timeout=60,
        )
        assert srv._exec_ewma  # the probe's group is now known

    def test_predicted_miss_is_shed_not_solved_late(self):
        with IKServer(ServerConfig(max_wait_ms=20.0,
                                   warm_start=False)) as srv:
            self._prime(srv)
            # Inject a pathological estimate: every future batch of this
            # group "will take" 100s, so a 5s budget is predictably dead.
            for key in srv._exec_ewma:
                srv._exec_ewma[key] = 100.0
            future = srv.submit(SolveRequest(
                self.ROBOT, self._target(1), max_iterations=300,
                seed=1, deadline_s=5.0,
            ))
            with pytest.raises(SloShed) as excinfo:
                future.result(timeout=60)
        assert excinfo.value.record.kind == "slo_shed"
        assert excinfo.value.record.stage == "serving"
        stats = srv.stats()
        assert stats.rejected_shed == 1
        # Shed is distinct from the queue-expiry path.
        assert stats.expired_in_queue == 0

    def test_requests_without_deadline_never_shed(self):
        with IKServer(ServerConfig(max_wait_ms=20.0,
                                   warm_start=False)) as srv:
            self._prime(srv)
            for key in srv._exec_ewma:
                srv._exec_ewma[key] = 100.0
            result = srv.solve(
                SolveRequest(self.ROBOT, self._target(2), seed=2,
                             max_iterations=300),
                timeout=60,
            )
        assert result.dof == 12
        assert srv.stats().rejected_shed == 0

    def test_shedding_disabled_solves_despite_prediction(self):
        with IKServer(ServerConfig(max_wait_ms=20.0, warm_start=False,
                                   slo_shedding=False)) as srv:
            self._prime(srv)
            for key in srv._exec_ewma:
                srv._exec_ewma[key] = 100.0
            result = srv.solve(
                SolveRequest(self.ROBOT, self._target(3), seed=3,
                             max_iterations=300, deadline_s=30.0),
                timeout=60,
            )
        assert result.dof == 12
        assert srv.stats().rejected_shed == 0

    def test_shed_counter_flows_through_tracer(self):
        from repro.telemetry import SummaryTracer

        tracer = SummaryTracer()
        with IKServer(ServerConfig(max_wait_ms=20.0, warm_start=False),
                      tracer=tracer) as srv:
            self._prime(srv)
            for key in srv._exec_ewma:
                srv._exec_ewma[key] = 100.0
            future = srv.submit(SolveRequest(
                self.ROBOT, self._target(4), max_iterations=300,
                seed=4, deadline_s=5.0,
            ))
            with pytest.raises(SloShed):
                future.result(timeout=60)
        assert tracer.counters["serve_shed"] == 1
