"""IKServer behaviour: futures, backpressure, deadlines, shutdown, telemetry.

Timing-sensitive paths (age flushes, in-queue expiry) use generous waits so
the assertions hold on loaded CI machines; the flush *policy* itself is
covered clock-free in ``test_batcher.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core.result import IKResult
from repro.kinematics.robots import named_robot
from repro.serving import (
    DeadlineExceeded,
    IKServer,
    Overloaded,
    ServerClosed,
    ServerConfig,
    SolveRequest,
)
from repro.telemetry import SummaryTracer

ROBOT = "dadu-12dof"
MAX_ITERATIONS = 300


def reachable_targets(robot: str, count: int, seed: int = 0) -> np.ndarray:
    chain = named_robot(robot)
    rng = np.random.default_rng(seed)
    return np.stack([
        chain.end_position(chain.random_configuration(rng))
        for _ in range(count)
    ])


def request(target, seed=0, **kwargs) -> SolveRequest:
    kwargs.setdefault("max_iterations", MAX_ITERATIONS)
    return SolveRequest(ROBOT, target, seed=seed, **kwargs)


class TestRoundTrip:
    def test_submit_returns_future_with_ikresult(self):
        (target,) = reachable_targets(ROBOT, 1)
        with IKServer(ServerConfig(max_wait_ms=50.0)) as srv:
            result = srv.submit(request(target)).result(timeout=60)
        assert isinstance(result, IKResult)
        assert result.converged
        assert result.dof == 12

    def test_full_group_coalesces_into_one_batch(self):
        targets = reachable_targets(ROBOT, 4)
        # Size trigger: 4 submissions land long before the 10 s age flush.
        config = ServerConfig(max_batch_size=4, max_wait_ms=10_000.0)
        with IKServer(config) as srv:
            futures = [
                srv.submit(request(t, seed=i)) for i, t in enumerate(targets)
            ]
            results = [f.result(timeout=60) for f in futures]
        assert all(r.converged for r in results)
        stats = srv.stats()
        assert stats.submitted == stats.completed == 4
        assert stats.batches == 1
        assert stats.occupancy_peak == 4
        assert stats.mean_occupancy == pytest.approx(4.0)
        assert stats.queue_depth_peak >= 1

    def test_incompatible_requests_never_share_a_batch(self):
        targets = reachable_targets(ROBOT, 2)
        other = reachable_targets("planar-8dof", 2, seed=1)
        config = ServerConfig(max_batch_size=32, max_wait_ms=10_000.0)
        with IKServer(config) as srv:
            futures = [srv.submit(request(t, seed=i))
                       for i, t in enumerate(targets)]
            futures += [
                srv.submit(SolveRequest("planar-8dof", t, seed=i,
                                        max_iterations=MAX_ITERATIONS))
                for i, t in enumerate(other)
            ]
            # Nothing is size- or age-ready; the context exit drains.
        dofs = [f.result(timeout=60).dof for f in futures]
        assert dofs == [12, 12, 8, 8]
        stats = srv.stats()
        assert stats.batches == 2
        assert stats.requests_batched == 4

    def test_solve_sugar_blocks_for_result(self):
        (target,) = reachable_targets(ROBOT, 1)
        with IKServer(ServerConfig(max_wait_ms=20.0)) as srv:
            result = srv.solve(request(target), timeout=60)
        assert result.converged

    def test_explicit_q0_is_honoured(self):
        (target,) = reachable_targets(ROBOT, 1)
        chain = named_robot(ROBOT)
        q0 = chain.random_configuration(np.random.default_rng(99))
        with IKServer(ServerConfig(max_wait_ms=20.0)) as srv:
            served = srv.solve(request(target, q0=q0), timeout=60)
        direct = api.solve(ROBOT, target, q0=q0,
                           max_iterations=MAX_ITERATIONS)
        assert served.iterations == direct.iterations
        np.testing.assert_allclose(served.q, direct.q, atol=1e-9, rtol=0.0)


class TestRejections:
    def test_overloaded_when_queue_full(self):
        targets = reachable_targets(ROBOT, 3)
        config = ServerConfig(
            max_batch_size=100, max_wait_ms=60_000.0, max_queue=2
        )
        srv = IKServer(config)
        try:
            futures = [srv.submit(request(t, seed=i))
                       for i, t in enumerate(targets[:2])]
            with pytest.raises(Overloaded) as excinfo:
                srv.submit(request(targets[2], seed=2))
            record = excinfo.value.record
            assert record.stage == "serving"
            assert record.kind == "overloaded"
            assert srv.stats().rejected_overloaded == 1
        finally:
            srv.close(drain=True)
        # Backpressure rejected the overflow; the admitted requests survive.
        assert all(f.result(timeout=60).converged for f in futures)

    def test_deadline_rejected_at_admission(self):
        (target,) = reachable_targets(ROBOT, 1)
        with IKServer(ServerConfig(max_wait_ms=20.0)) as srv:
            with pytest.raises(DeadlineExceeded) as excinfo:
                srv.submit(request(target, deadline_s=0.0))
            assert excinfo.value.record.kind == "deadline_exceeded"
            assert srv.stats().rejected_deadline == 1

    def test_deadline_expires_in_queue(self):
        (target,) = reachable_targets(ROBOT, 1)
        # The age flush (400 ms) fires long after the 1 ms budget expired,
        # so the entry is dead on dispatch.
        config = ServerConfig(max_batch_size=100, max_wait_ms=400.0)
        with IKServer(config) as srv:
            future = srv.submit(request(target, deadline_s=0.001))
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=60)
        assert srv.stats().expired_in_queue == 1

    def test_submit_after_close_raises_server_closed(self):
        srv = IKServer(ServerConfig())
        srv.close()
        (target,) = reachable_targets(ROBOT, 1)
        with pytest.raises(ServerClosed):
            srv.submit(request(target))

    def test_close_without_drain_fails_pending_futures(self):
        (target,) = reachable_targets(ROBOT, 1)
        srv = IKServer(
            ServerConfig(max_batch_size=100, max_wait_ms=60_000.0)
        ).start()
        future = srv.submit(request(target))
        srv.close(drain=False)
        with pytest.raises(ServerClosed):
            future.result(timeout=60)


class TestErrorSemantics:
    def test_on_error_skip_degrades_bad_request_only(self):
        (good,) = reachable_targets(ROBOT, 1)
        config = ServerConfig(
            max_batch_size=2, max_wait_ms=10_000.0, on_error="skip"
        )
        with IKServer(config) as srv:
            bad_future = srv.submit(request([np.nan, 0.0, 0.0]))
            good_future = srv.submit(request(good, seed=1))
            bad, ok = bad_future.result(timeout=60), good_future.result(timeout=60)
        assert not bad.converged
        assert bad.status == "nonfinite_target"
        assert ok.converged

    def test_on_error_raise_fails_the_whole_batch(self):
        targets = reachable_targets(ROBOT, 2)
        config = ServerConfig(
            max_batch_size=2, max_wait_ms=10_000.0, on_error="raise"
        )
        with IKServer(config) as srv:
            futures = [
                srv.submit(request(t, seed=i,
                                   options={"bogus_option": 1}))
                for i, t in enumerate(targets)
            ]
            errors = [f.exception(timeout=60) for f in futures]
        assert all(isinstance(e, TypeError) for e in errors)
        assert srv.stats().failed == 2


class TestWarmStart:
    def test_repeat_target_converges_instantly(self):
        (target,) = reachable_targets(ROBOT, 1)
        config = ServerConfig(max_wait_ms=20.0, warm_start=True)
        with IKServer(config) as srv:
            cold = srv.solve(request(target), timeout=60)
            warm = srv.solve(request(target, seed=1), timeout=60)
        assert cold.converged and warm.converged
        # q0 is the cached solution of the identical target: already within
        # tolerance, so the driver exits before iterating.
        assert warm.iterations == 0
        stats = srv.stats()
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.cache_hit_rate == pytest.approx(0.5)

    def test_request_overrides_server_policy(self):
        (target,) = reachable_targets(ROBOT, 1)
        config = ServerConfig(max_wait_ms=20.0, warm_start=True)
        with IKServer(config) as srv:
            srv.solve(request(target), timeout=60)
            opted_out = srv.solve(
                request(target, seed=0, warm_start=False), timeout=60
            )
        direct = api.solve(ROBOT, target, seed=0,
                           max_iterations=MAX_ITERATIONS)
        # warm_start=False restored the seeded draw, so the served result
        # matches the offline solve.
        assert opted_out.iterations == direct.iterations

    def test_cache_disabled_when_capacity_zero(self):
        (target,) = reachable_targets(ROBOT, 1)
        config = ServerConfig(
            max_wait_ms=20.0, warm_start=True, seed_cache_capacity=0
        )
        with IKServer(config) as srv:
            srv.solve(request(target), timeout=60)
            srv.solve(request(target, seed=1), timeout=60)
        stats = srv.stats()
        assert stats.cache_hits == 0 and stats.cache_misses == 0


class TestTelemetry:
    def test_counters_and_phases_flow_through_tracer(self):
        targets = reachable_targets(ROBOT, 3)
        tracer = SummaryTracer()
        config = ServerConfig(max_batch_size=3, max_wait_ms=10_000.0)
        with IKServer(config, tracer=tracer) as srv:
            futures = [srv.submit(request(t, seed=i))
                       for i, t in enumerate(targets)]
            [f.result(timeout=60) for f in futures]
        assert tracer.counters["serve_requests"] == 3
        assert tracer.counters["serve_batches"] == 1
        assert tracer.phase_seconds["serve_coalesce"] >= 0.0
        assert tracer.phase_seconds["serve_execute"] > 0.0
        # The underlying solves traced through the same sink.
        assert tracer.counters["fk_evaluations"] > 0

    def test_rejections_count(self):
        (target,) = reachable_targets(ROBOT, 1)
        tracer = SummaryTracer()
        with IKServer(ServerConfig(max_wait_ms=20.0), tracer=tracer) as srv:
            with pytest.raises(DeadlineExceeded):
                srv.submit(request(target, deadline_s=-1.0))
        assert tracer.counters["serve_deadline_expired"] == 1


class TestFacade:
    def test_api_serve_context_manager(self):
        (target,) = reachable_targets(ROBOT, 1)
        with api.serve(max_batch_size=8, max_wait_ms=20.0) as srv:
            assert isinstance(srv, IKServer)
            result = srv.solve(request(target), timeout=60)
        assert result.converged

    def test_api_serve_rejects_config_plus_overrides(self):
        with pytest.raises(ValueError, match="not both"):
            api.serve(ServerConfig(), max_batch_size=8)

    def test_api_serve_start_false_defers_worker(self):
        srv = api.serve(start=False, max_wait_ms=20.0)
        try:
            assert srv._threads == []
            (target,) = reachable_targets(ROBOT, 1)
            # submit auto-starts the loops.
            assert srv.solve(request(target), timeout=60).converged
            assert len(srv._threads) == srv.config.dispatch_workers
        finally:
            srv.close()

    def test_repro_top_level_export(self):
        import repro

        assert repro.serve is api.serve


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs", [
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"max_queue": 0},
            {"workers": 0},
            {"dispatch_workers": 0},
            {"on_error": "explode"},
            {"seed_cache_capacity": -1},
            {"seed_k": 0},
            {"seed_limit_penalty": -0.1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)

    def test_serving_defaults(self):
        # PR-7 defaults: warm-start on, adaptive batching on, predictive
        # shedding on, one dispatch loop.
        config = ServerConfig()
        assert config.warm_start is True
        assert config.adaptive is True
        assert config.slo_shedding is True
        assert config.dispatch_workers == 1
