"""Unit tests for the micro-batching flush policy.

The batcher is clock-free (callers pass ``now``), so every size/age trigger
is exercised here deterministically, with no sleeps and no threads.
"""

from __future__ import annotations

import pytest

from repro.serving import GroupKey, MicroBatcher, PendingEntry


def _key(tag: str) -> GroupKey:
    return GroupKey(robot_key=tag, solver="JT-Speculation",
                    config_key=None, options_key=())


def _entry(key: GroupKey, t: float, tag: object = None) -> PendingEntry:
    return PendingEntry(request=tag, chain=None, key=key, target=None,
                        q0=None, future=None, enqueue_t=t)


class TestValidation:
    def test_max_batch_size_floor(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(max_batch_size=0, max_wait_s=1.0)

    def test_negative_wait(self):
        with pytest.raises(ValueError, match="max_wait_s"):
            MicroBatcher(max_batch_size=4, max_wait_s=-0.1)


class TestGrouping:
    def test_entries_group_by_key(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_s=1.0)
        a, b = _key("robot-a"), _key("robot-b")
        for i in range(3):
            batcher.add(_entry(a, float(i)))
        batcher.add(_entry(b, 0.0))
        assert batcher.pending_count == 4

        batches = batcher.pop_ready(now=100.0)  # everything aged out
        assert {batch.key for batch in batches} == {a, b}
        sizes = {batch.key: len(batch) for batch in batches}
        assert sizes[a] == 3 and sizes[b] == 1
        assert batcher.pending_count == 0

    def test_distinct_solver_or_config_splits_groups(self):
        base = _key("robot")
        other_solver = GroupKey("robot", "JT-DLS", None, ())
        other_options = GroupKey("robot", "JT-Speculation", None,
                                 (("speculations", "8"),))
        assert len({base, other_solver, other_options}) == 3


class TestSizeTrigger:
    def test_full_group_flushes_immediately(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait_s=1000.0)
        key = _key("robot")
        for i in range(3):
            assert not batcher.has_ready(now=0.0)
            batcher.add(_entry(key, 0.0, tag=i))
        assert batcher.has_ready(now=0.0)

        (batch,) = batcher.pop_ready(now=0.0)
        assert [e.request for e in batch.entries] == [0, 1, 2]
        assert batcher.pending_count == 0

    def test_backlog_chunked_to_full_batches_partial_left(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait_s=1000.0)
        key = _key("robot")
        for i in range(7):
            batcher.add(_entry(key, 0.0, tag=i))

        batches = batcher.pop_ready(now=0.0)
        assert [len(b) for b in batches] == [3, 3]
        assert [e.request for b in batches for e in b.entries] == list(range(6))
        # The trailing partial chunk is not size-ready; it waits for age.
        assert batcher.pending_count == 1
        assert not batcher.has_ready(now=0.0)


class TestAgeTrigger:
    def test_lone_request_flushes_after_max_wait(self):
        batcher = MicroBatcher(max_batch_size=32, max_wait_s=2.0)
        batcher.add(_entry(_key("robot"), 10.0))
        assert not batcher.has_ready(now=11.9)
        assert batcher.has_ready(now=12.0)

        assert batcher.pop_ready(now=11.9) == []
        (batch,) = batcher.pop_ready(now=12.0)
        assert len(batch) == 1

    def test_aged_group_flushes_entirely_chunked(self):
        # Once the oldest request ages out, the whole group goes (its younger
        # members would only age out moments later), chunked to size.
        batcher = MicroBatcher(max_batch_size=3, max_wait_s=2.0)
        key = _key("robot")
        for i in range(5):
            batcher.add(_entry(key, 10.0 + 0.1 * i, tag=i))
        batches = batcher.pop_ready(now=12.0)
        assert [len(b) for b in batches] == [3, 2]
        assert batcher.pending_count == 0

    def test_next_flush_at_is_earliest_group_deadline(self):
        batcher = MicroBatcher(max_batch_size=32, max_wait_s=2.0)
        assert batcher.next_flush_at() is None
        batcher.add(_entry(_key("a"), 10.0))
        batcher.add(_entry(_key("b"), 5.0))
        assert batcher.next_flush_at() == pytest.approx(7.0)

    def test_zero_wait_means_always_ready(self):
        batcher = MicroBatcher(max_batch_size=32, max_wait_s=0.0)
        batcher.add(_entry(_key("robot"), 10.0))
        assert batcher.has_ready(now=10.0)
        (batch,) = batcher.pop_ready(now=10.0)
        assert len(batch) == 1


class TestOrderingAndDrain:
    def test_batches_pop_oldest_first_across_groups(self):
        batcher = MicroBatcher(max_batch_size=32, max_wait_s=1.0)
        batcher.add(_entry(_key("late"), 20.0, tag="late"))
        batcher.add(_entry(_key("early"), 10.0, tag="early"))
        batches = batcher.pop_ready(now=100.0)
        assert [b.entries[0].request for b in batches] == ["early", "late"]

    def test_force_pops_unready_groups(self):
        batcher = MicroBatcher(max_batch_size=32, max_wait_s=1000.0)
        batcher.add(_entry(_key("robot"), 0.0))
        assert batcher.pop_ready(now=0.0) == []
        (batch,) = batcher.pop_ready(now=0.0, force=True)
        assert len(batch) == 1 and batcher.pending_count == 0

    def test_drain_returns_arrival_order_across_groups(self):
        batcher = MicroBatcher(max_batch_size=32, max_wait_s=1000.0)
        batcher.add(_entry(_key("a"), 1.0, tag=1))
        batcher.add(_entry(_key("b"), 0.0, tag=0))
        batcher.add(_entry(_key("a"), 2.0, tag=2))
        drained = batcher.drain()
        assert [e.request for e in drained] == [0, 1, 2]
        assert batcher.pending_count == 0
        assert batcher.next_flush_at() is None
