"""Session-differential tier: streamed sessions == offline warm-started loops.

The contract under test (``repro.serving.sessions``): a
:class:`TrackingSession` resolves every tick's ``q0`` at the session layer
— tick ``N``'s seed is tick ``N-1``'s solution via the shared
:func:`~repro.control.trajectory.next_seed` contract, and tick 0 falls back
to the ranked seed cache, then to the same seeded draw a direct
``api.solve(..., seed=s)`` performs.  Because ``q0`` is explicit at
admission, the streamed results must be **bit-identical** to an offline
loop that solves the same targets sequentially with chained seeds —
invariant across ``dispatch_workers`` counts and concurrent interleaved
sessions.

Offline reference nuance: scalar-path solvers (JT-DLS, fdik, mdik) are
reproduced by ``api.solve``; lock-step engines (JT-Speculation) run the
batched formulation when served, so their reference is an
``api.solve_batch`` singleton (the conformance tier separately pins that
batch composition never changes per-problem numerics).

The differential runs disable the seed cache (``seed_cache_capacity=0``):
whether a tick-0 admission hits the cache depends on how far concurrent
execution has progressed — the one timing-dependent seed source.  Cache
fallback itself is covered by the lifecycle cases below with a controlled
single-session server.

Lifecycle policy (bounds, idle expiry, close-mid-stream) is tested
clock-free through ``SessionManager``'s injectable clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.control.trajectory import next_seed
from repro.kinematics.robots import named_robot
from repro.serving import (
    IKServer,
    ServerConfig,
    SessionClosed,
    SessionConfig,
    SessionExpired,
    SessionLimit,
    SessionManager,
)
from repro.telemetry import SummaryTracer

TOLERANCE = 1e-2
MAX_ITERATIONS = 300

#: (solver, lock_step) — lock-step engines are referenced via solve_batch.
SOLVERS = [
    ("JT-Speculation", True),
    ("JT-DLS", False),
    ("fdik", False),
    ("mdik", False),
]


def smooth_targets(chain, ticks: int, seed: int) -> np.ndarray:
    """A short reachable trajectory: FK of a joint-space random walk."""
    rng = np.random.default_rng(seed)
    q = chain.random_configuration(rng)
    targets = []
    for _ in range(ticks):
        q = chain.clamp(q + rng.normal(scale=0.04, size=chain.dof))
        targets.append(chain.end_position(q))
    return np.stack(targets)


def offline_reference(chain, solver, lock_step, targets, seed):
    """The sequential warm-started loop a session must reproduce."""
    q0 = chain.random_configuration(np.random.default_rng(seed))
    results = []
    for target in targets:
        if lock_step:
            batch = api.solve_batch(
                chain, target[None, :], solver, q0=q0[None, :],
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
            result = list(batch)[0]
        else:
            result = api.solve(
                chain, target, solver, q0=q0,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
        results.append(result)
        q0 = next_seed(result, q0)
    return results


def assert_bit_identical(served, direct) -> None:
    assert served.solver.removesuffix("-batched") == (
        direct.solver.removesuffix("-batched")
    )
    np.testing.assert_array_equal(served.q, direct.q)
    assert served.error == direct.error
    assert served.iterations == direct.iterations
    assert served.converged == direct.converged
    assert served.status == direct.status


def server_config(dispatch_workers: int = 1, **kwargs) -> ServerConfig:
    kwargs.setdefault("max_batch_size", 8)
    kwargs.setdefault("max_wait_ms", 1.0)
    kwargs.setdefault("seed_cache_capacity", 0)
    return ServerConfig(dispatch_workers=dispatch_workers, **kwargs)


class TestSessionDifferential:
    @pytest.mark.parametrize("dispatch_workers", [1, 4])
    @pytest.mark.parametrize("solver,lock_step", SOLVERS)
    def test_stream_matches_offline_loop(
        self, solver, lock_step, dispatch_workers
    ):
        chain = named_robot("dadu-12dof")
        targets = smooth_targets(chain, ticks=6, seed=11)
        with IKServer(server_config(dispatch_workers)) as srv:
            manager = SessionManager(srv)
            session = manager.open(
                chain, solver=solver, seed=901,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
            served = [session.tick(t).result(timeout=120) for t in targets]
            manager.close_all()

        reference = offline_reference(chain, solver, lock_step, targets, 901)
        for got, want in zip(served, reference):
            assert_bit_identical(got, want)

        assert session.stats.ticks == len(targets)
        assert session.stats.cold_ticks == 1
        assert session.stats.warm_ticks == len(targets) - 1

    @pytest.mark.parametrize("dispatch_workers", [1, 4])
    def test_concurrent_mixed_robot_sessions(self, dispatch_workers):
        # Several interleaved streams across robots and solver families
        # share one server; each must still match its own offline loop.
        cells = [
            ("dadu-12dof", "fdik", 21),
            ("planar-8dof", "mdik", 22),
            ("dadu-12dof", "JT-Speculation", 23),
            ("planar-8dof", "JT-DLS", 24),
        ]
        ticks = 5
        chains = {name: named_robot(name) for name, _, _ in cells}
        trajectories = [
            smooth_targets(chains[name], ticks, seed)
            for name, _, seed in cells
        ]
        with IKServer(server_config(dispatch_workers)) as srv:
            manager = SessionManager(srv)
            sessions = [
                manager.open(
                    chains[name], solver=solver, seed=3000 + j,
                    tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
                )
                for j, (name, solver, _) in enumerate(cells)
            ]
            # Round-robin: one tick per session per round, so ticks from
            # different sessions interleave (and may coalesce) freely.
            futures = [[] for _ in cells]
            for i in range(ticks):
                for j, session in enumerate(sessions):
                    futures[j].append(
                        session.tick(trajectories[j][i])
                    )
            served = [
                [f.result(timeout=120) for f in row] for row in futures
            ]
            manager.close_all()

        for j, (name, solver, _) in enumerate(cells):
            lock_step = solver == "JT-Speculation"
            reference = offline_reference(
                chains[name], solver, lock_step, trajectories[j], 3000 + j
            )
            for got, want in zip(served[j], reference):
                assert_bit_identical(got, want)

        stats = manager.stats()
        assert stats["ticks"] == ticks * len(cells)
        assert stats["cold_ticks"] == len(cells)

    def test_explicit_q0_pins_the_first_seed(self):
        chain = named_robot("dadu-12dof")
        targets = smooth_targets(chain, ticks=3, seed=31)
        q_start = chain.random_configuration(np.random.default_rng(77))

        with IKServer(server_config()) as srv:
            manager = SessionManager(srv)
            session = manager.open(
                chain, solver="JT-DLS", q0=q_start,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
            served = [session.tick(t).result(timeout=120) for t in targets]
            manager.close_all()

        # An explicit q0 counts as warm from tick 0 — no cold draw at all.
        assert session.stats.cold_ticks == 0
        assert session.stats.warm_ticks == len(targets)

        q0 = q_start
        for target, got in zip(targets, served):
            want = api.solve(
                chain, target, "JT-DLS", q0=q0,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
            assert_bit_identical(got, want)
            q0 = next_seed(want, q0)

    def test_first_tick_falls_back_to_seed_cache(self):
        # With the ranked cache enabled and a solution already recorded
        # near the first target, tick 0 is warm (cache hit), not a draw.
        chain = named_robot("dadu-12dof")
        targets = smooth_targets(chain, ticks=2, seed=41)
        config = server_config(seed_cache_capacity=64)
        with IKServer(config) as srv:
            # Prime the cache by serving the first target once.
            from repro.serving import SolveRequest

            srv.submit(SolveRequest(
                chain, targets[0], "JT-DLS", seed=5,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )).result(timeout=120)
            primed = srv.warm_seed(chain, targets[0])
            assert primed is not None

            manager = SessionManager(srv)
            session = manager.open(
                chain, solver="JT-DLS", seed=902,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
            first = session.tick(targets[0]).result(timeout=120)
            manager.close_all()

        want = api.solve(
            chain, targets[0], "JT-DLS", q0=primed,
            tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
        )
        assert_bit_identical(first, want)

    def test_unconverged_tick_keeps_previous_seed(self):
        # next_seed contract: a failed tick must not poison the stream —
        # the next tick re-solves from the last good seed.
        chain = named_robot("dadu-12dof")
        targets = smooth_targets(chain, ticks=3, seed=51)
        with IKServer(server_config()) as srv:
            manager = SessionManager(srv)
            session = manager.open(
                chain, solver="JT-DLS", seed=903,
                tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
            )
            session.tick(targets[0]).result(timeout=120)
            seed_before = session.last_q
            # An unreachable target cannot converge.
            far = np.array([50.0, 50.0, 50.0])
            failed = session.tick(far, deadline_s=None).result(timeout=120)
            assert not failed.converged
            np.testing.assert_array_equal(session.last_q, seed_before)
            manager.close_all()


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(scope="module")
def shared_server():
    with IKServer(server_config()) as srv:
        yield srv


class TestLifecycle:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(max_sessions=0)
        with pytest.raises(ValueError):
            SessionConfig(idle_expiry_s=0.0)
        assert SessionConfig(idle_expiry_s=None).idle_expiry_s is None

    def test_open_get_close(self, shared_server):
        manager = SessionManager(shared_server)
        session = manager.open("dadu-12dof")
        assert manager.get(session.session_id) is session
        assert manager.active_count == 1
        session.close()
        session.close()  # idempotent
        assert session.state == "closed"
        assert manager.get(session.session_id) is None
        assert manager.active_count == 0

    def test_session_limit_rejects_open(self, shared_server):
        manager = SessionManager(
            shared_server, SessionConfig(max_sessions=2, idle_expiry_s=None)
        )
        manager.open("dadu-12dof")
        manager.open("dadu-12dof")
        with pytest.raises(SessionLimit):
            manager.open("dadu-12dof")
        assert manager.active_count == 2

    def test_idle_expiry_is_lazy_and_clock_free(self, shared_server):
        clock = FakeClock()
        manager = SessionManager(
            shared_server,
            SessionConfig(max_sessions=4, idle_expiry_s=10.0),
            clock=clock,
        )
        session = manager.open("dadu-12dof")
        clock.advance(9.0)
        assert manager.expire_idle() == []
        clock.advance(2.0)  # 11 s idle > 10 s budget
        assert manager.expire_idle() == [session.session_id]
        assert session.state == "expired"
        assert manager.expired == 1
        with pytest.raises(SessionExpired):
            session.tick(np.zeros(3))

    def test_tick_refreshes_the_idle_timestamp(self, shared_server):
        clock = FakeClock()
        manager = SessionManager(
            shared_server,
            SessionConfig(max_sessions=4, idle_expiry_s=10.0),
            clock=clock,
        )
        chain = named_robot("dadu-12dof")
        target = smooth_targets(chain, 1, seed=61)[0]
        session = manager.open(
            chain, solver="JT-DLS", seed=904,
            tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
        )
        clock.advance(8.0)
        session.tick(target).result(timeout=120)
        clock.advance(8.0)  # 8 s since the tick — still live
        assert manager.expire_idle() == []
        assert session.state == "open"

    def test_open_evicts_expired_to_make_room(self, shared_server):
        clock = FakeClock()
        manager = SessionManager(
            shared_server,
            SessionConfig(max_sessions=1, idle_expiry_s=5.0),
            clock=clock,
        )
        stale = manager.open("dadu-12dof")
        clock.advance(6.0)
        fresh = manager.open("dadu-12dof")  # evicts the stale one
        assert stale.state == "expired"
        assert fresh.state == "open"
        assert manager.active_count == 1

    def test_close_mid_stream_keeps_inflight_future(self, shared_server):
        chain = named_robot("dadu-12dof")
        target = smooth_targets(chain, 1, seed=71)[0]
        manager = SessionManager(shared_server)
        session = manager.open(
            chain, solver="JT-DLS", seed=905,
            tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
        )
        future = session.tick(target)
        session.close()
        # Admitted work is never abandoned: the future still resolves.
        result = future.result(timeout=120)
        assert result.converged
        with pytest.raises(SessionClosed):
            session.tick(target)

    def test_manager_stats_survive_session_churn(self, shared_server):
        chain = named_robot("dadu-12dof")
        targets = smooth_targets(chain, 3, seed=81)
        manager = SessionManager(shared_server)
        session = manager.open(
            chain, solver="JT-DLS", seed=906,
            tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
        )
        for target in targets:
            session.tick(target).result(timeout=120)
        session.drain()
        live = manager.stats()
        assert live["ticks"] == 3
        assert live["cold_ticks"] == 1
        assert live["warm_ticks"] == 2
        assert live["warm_reduction"] is not None

        manager.close_all()
        retired = manager.stats()
        assert retired["active"] == 0
        # The aggregate is folded into the retired totals, not lost.
        for key in ("ticks", "converged", "warm_ticks", "cold_ticks"):
            assert retired[key] == live[key]

    def test_session_counters_reach_the_tracer(self, shared_server):
        chain = named_robot("dadu-12dof")
        targets = smooth_targets(chain, 2, seed=91)
        clock = FakeClock()
        tracer = SummaryTracer()
        manager = SessionManager(
            shared_server,
            SessionConfig(max_sessions=1, idle_expiry_s=5.0),
            clock=clock,
            tracer=tracer,
        )
        session = manager.open(
            chain, solver="JT-DLS", seed=907,
            tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
        )
        for target in targets:
            session.tick(target).result(timeout=120)
        with pytest.raises(SessionLimit):
            manager.open(chain)
        clock.advance(6.0)
        manager.expire_idle()

        counters = tracer.counters
        assert counters["serve_session_opened"] == 1
        assert counters["serve_session_ticks"] == 2
        assert counters["serve_session_cold_ticks"] == 1
        assert counters["serve_session_warm_ticks"] == 1
        assert counters["serve_session_rejected"] == 1
        assert counters["serve_session_expired"] == 1

    def test_bad_q0_shape_rejected_at_open(self, shared_server):
        manager = SessionManager(shared_server)
        with pytest.raises(ValueError, match="q0 must have shape"):
            manager.open("dadu-12dof", q0=np.zeros(5))
