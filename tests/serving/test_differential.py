"""Acceptance: served results == equivalent direct ``api.solve`` calls.

A mixed-robot, mixed-solver request stream goes through the micro-batching
server; every response is compared one-to-one against the offline solve with
the same robot / target / solver / seed / config.  Scalar-path solvers
(JT-DLS here) must be **bit-identical**; lock-step engines (Quick-IK) run
the batched einsum formulation whose per-problem numerics the conformance
tier pins to the scalar driver at 1e-9, so q is compared at that bound while
the discrete outcome (iterations / converged / status / FK count) must match
exactly.

The guarantee is *dispatch-count invariant*: ``q0`` is fixed at admission
and per-problem numerics are independent of batch composition, so the same
stream through ``dispatch_workers=4`` must produce the same per-request
results as through the single loop — pinned here across {1, 4}.

Warm starting is explicitly disabled throughout: it replaces the seeded
``q0`` draw with a cached solution (by design not offline-comparable), and
whether a given admission hits the cache depends on how far concurrent
execution has progressed — the one timing-dependent piece of the pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.kinematics.robots import named_robot
from repro.serving import IKServer, ServerConfig, SolveRequest

#: (solver, lock_step) — lock-step engines get the 1e-9 q bound.
SOLVERS = [("JT-Speculation", True), ("JT-DLS", False)]
ROBOTS = ["dadu-12dof", "planar-8dof"]
MAX_ITERATIONS = 200
TOLERANCE = 1e-2


def _stream(per_cell: int = 2):
    """Interleaved requests across every (robot, solver) cell."""
    chains = {name: named_robot(name) for name in ROBOTS}
    requests = []
    seed = 500
    for i in range(per_cell):
        for robot in ROBOTS:
            for solver, lock_step in SOLVERS:
                chain = chains[robot]
                rng = np.random.default_rng(seed)
                target = chain.end_position(chain.random_configuration(rng))
                # The solve seed must differ from the target-generation
                # seed, or q0 would be the very configuration that produced
                # the target and every problem would converge in 0 steps.
                requests.append((
                    SolveRequest(
                        robot, target, solver, seed=seed + 10_000,
                        tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
                    ),
                    lock_step,
                ))
                seed += 1
    return requests


def _assert_equivalent(served, direct, lock_step: bool) -> None:
    # Lock-step engines label their results "<solver>-batched".
    assert served.solver.removesuffix("-batched") == direct.solver
    assert served.dof == direct.dof
    assert served.iterations == direct.iterations
    assert served.converged == direct.converged
    assert served.status == direct.status
    assert served.fk_evaluations == direct.fk_evaluations
    if lock_step:
        np.testing.assert_allclose(served.q, direct.q, atol=1e-9, rtol=0.0)
        assert served.error == pytest.approx(direct.error, abs=1e-9)
    else:
        np.testing.assert_array_equal(served.q, direct.q)
        assert served.error == direct.error


@pytest.mark.parametrize("dispatch_workers", [1, 4])
def test_mixed_stream_matches_direct_solves(dispatch_workers):
    stream = _stream(per_cell=2)
    config = ServerConfig(
        max_batch_size=4, max_wait_ms=100.0, warm_start=False,
        dispatch_workers=dispatch_workers,
    )
    with IKServer(config) as srv:
        futures = [srv.submit(req) for req, _ in stream]
        served = [f.result(timeout=120) for f in futures]

    for (req, lock_step), result in zip(stream, served):
        direct = api.solve(
            req.robot, req.target, req.solver, seed=req.seed,
            tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
        )
        _assert_equivalent(result, direct, lock_step)

    # The stream actually coalesced: fewer batches than requests.
    stats = srv.stats()
    assert stats.completed == len(stream)
    assert stats.batches < len(stream)
    assert stats.mean_occupancy > 1.0


def test_served_results_independent_of_batch_composition():
    # The same request must solve identically whether it rides a singleton
    # batch or shares one with strangers.
    chain = named_robot("dadu-12dof")
    rng = np.random.default_rng(42)
    targets = [
        chain.end_position(chain.random_configuration(rng)) for _ in range(3)
    ]

    def run(server_config, indices):
        with IKServer(server_config) as srv:
            futures = [
                srv.submit(SolveRequest(
                    "dadu-12dof", targets[i], seed=1000 + i,
                    tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
                ))
                for i in indices
            ]
            return [f.result(timeout=120) for f in futures]

    coalesced = run(ServerConfig(max_batch_size=3, max_wait_ms=10_000.0,
                                 warm_start=False),
                    [0, 1, 2])
    singletons = run(ServerConfig(max_batch_size=1, max_wait_ms=0.0,
                                  warm_start=False),
                     [0, 1, 2])
    for a, b in zip(coalesced, singletons):
        np.testing.assert_array_equal(a.q, b.q)
        assert a.iterations == b.iterations
        assert a.status == b.status


def test_served_results_identical_across_dispatch_worker_counts():
    # The tentpole acceptance pin: the same request stream through 1 and 4
    # dispatch loops yields bit-identical per-request results — concurrent
    # dispatch may change which batch a request rides, never its answer.
    chain = named_robot("dadu-12dof")
    rng = np.random.default_rng(11)
    targets = [
        chain.end_position(chain.random_configuration(rng)) for _ in range(8)
    ]

    def run(dispatch_workers):
        config = ServerConfig(
            max_batch_size=3, max_wait_ms=5.0, warm_start=False,
            dispatch_workers=dispatch_workers,
        )
        with IKServer(config) as srv:
            futures = [
                srv.submit(SolveRequest(
                    "dadu-12dof", t, seed=3000 + i,
                    tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
                ))
                for i, t in enumerate(targets)
            ]
            return [f.result(timeout=120) for f in futures]

    single = run(1)
    multi = run(4)
    for a, b in zip(single, multi):
        np.testing.assert_array_equal(a.q, b.q)
        assert a.iterations == b.iterations
        assert a.status == b.status
        assert a.fk_evaluations == b.fk_evaluations


def test_sharded_serving_matches_inline():
    # workers=2 shards every micro-batch across processes; PR 2's
    # bit-identity guarantee must survive the serving layer.
    chain = named_robot("dadu-12dof")
    rng = np.random.default_rng(7)
    targets = [
        chain.end_position(chain.random_configuration(rng)) for _ in range(4)
    ]

    def run(workers):
        config = ServerConfig(
            max_batch_size=4, max_wait_ms=10_000.0, workers=workers,
            warm_start=False,
        )
        with IKServer(config) as srv:
            futures = [
                srv.submit(SolveRequest(
                    "dadu-12dof", t, seed=2000 + i,
                    tolerance=TOLERANCE, max_iterations=MAX_ITERATIONS,
                ))
                for i, t in enumerate(targets)
            ]
            return [f.result(timeout=300) for f in futures]

    inline = run(workers=None)
    sharded = run(workers=2)
    for a, b in zip(inline, sharded):
        np.testing.assert_array_equal(a.q, b.q)
        assert a.iterations == b.iterations
        assert a.fk_evaluations == b.fk_evaluations
