"""IKServer lifecycle under concurrency: close races, future accounting.

The contract these tests pin down:

* every future returned by a successful ``submit`` terminates exactly once
  — with a result (drain) or with ``ServerClosed`` (no-drain) — never lost,
  never completed twice;
* ``submit`` racing ``close(drain=True)`` either succeeds (and its future
  resolves) or raises ``ServerClosed`` — no third outcome;
* ``close`` is idempotent and safe to call from several threads at once.

The seeded stress test runs under ``-m slow`` (nightly tier) for
``dispatch_workers`` in {1, 4}.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.kinematics.robots import named_robot
from repro.serving import IKServer, ServerClosed, ServerConfig, SolveRequest

ROBOT = "dadu-12dof"
MAX_ITERATIONS = 300


def reachable_targets(count: int, seed: int = 0) -> np.ndarray:
    chain = named_robot(ROBOT)
    rng = np.random.default_rng(seed)
    return np.stack([
        chain.end_position(chain.random_configuration(rng))
        for _ in range(count)
    ])


def request(target, seed=0, **kwargs) -> SolveRequest:
    kwargs.setdefault("max_iterations", MAX_ITERATIONS)
    return SolveRequest(ROBOT, target, seed=seed, **kwargs)


class TestCloseRaces:
    def test_submit_racing_drain_close_never_loses_a_future(self):
        # One thread streams submissions while the main thread closes with
        # drain: every accepted future must resolve, every rejected submit
        # must raise ServerClosed, and their counts must cover the stream.
        targets = reachable_targets(24)
        srv = IKServer(ServerConfig(
            max_batch_size=4, max_wait_ms=2.0, dispatch_workers=2,
            warm_start=False,
        )).start()
        futures, rejected = [], []
        started = threading.Event()

        def submitter():
            for i, t in enumerate(targets):
                try:
                    futures.append(srv.submit(request(t, seed=i)))
                except ServerClosed:
                    rejected.append(i)
                if i == 3:
                    started.set()

        thread = threading.Thread(target=submitter)
        thread.start()
        started.wait(timeout=30)
        srv.close(drain=True)
        thread.join(timeout=60)
        assert not thread.is_alive()

        assert len(futures) + len(rejected) == len(targets)
        assert len(futures) >= 4  # the pre-close prefix was accepted
        results = [f.result(timeout=60) for f in futures]
        assert all(r.dof == 12 for r in results)
        stats = srv.stats()
        assert stats.submitted == len(futures)
        assert stats.completed == len(futures)

    def test_concurrent_and_double_close_are_safe(self):
        targets = reachable_targets(6, seed=1)
        srv = IKServer(ServerConfig(
            max_batch_size=3, max_wait_ms=50.0, dispatch_workers=2,
            warm_start=False,
        )).start()
        futures = [srv.submit(request(t, seed=i))
                   for i, t in enumerate(targets)]

        closers = [threading.Thread(target=srv.close) for _ in range(4)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in closers)
        srv.close()  # double close after the race: still a no-op
        assert all(f.result(timeout=60).dof == 12 for f in futures)

    def test_submit_after_close_raises_for_every_worker_count(self):
        (target,) = reachable_targets(1, seed=2)
        for dispatch_workers in (1, 4):
            srv = IKServer(ServerConfig(
                dispatch_workers=dispatch_workers, warm_start=False,
            )).start()
            srv.close()
            with pytest.raises(ServerClosed):
                srv.submit(request(target))

    def test_no_drain_close_fails_pending_not_inflight_semantics(self):
        # close(drain=False) fails queued futures with ServerClosed; the
        # futures list is fully accounted either way.
        targets = reachable_targets(5, seed=3)
        srv = IKServer(ServerConfig(
            max_batch_size=100, max_wait_ms=60_000.0, dispatch_workers=2,
            warm_start=False,
        )).start()
        futures = [srv.submit(request(t, seed=i))
                   for i, t in enumerate(targets)]
        srv.close(drain=False)
        outcomes = [f.exception(timeout=60) for f in futures]
        assert all(isinstance(exc, ServerClosed) for exc in outcomes)


@pytest.mark.slow
class TestStress:
    @pytest.mark.parametrize("dispatch_workers", [1, 4])
    def test_multithreaded_stream_loses_nothing(self, dispatch_workers):
        # 4 submitter threads x 25 requests against a small-batch server;
        # every future resolves exactly once and the server's own books
        # agree with the client-side count.
        threads_n, per_thread = 4, 25
        targets = reachable_targets(threads_n * per_thread, seed=7)
        srv = IKServer(ServerConfig(
            max_batch_size=8, max_wait_ms=1.0,
            dispatch_workers=dispatch_workers, warm_start=False,
        ))
        futures: list = [None] * (threads_n * per_thread)

        def submitter(worker: int):
            for j in range(per_thread):
                idx = worker * per_thread + j
                futures[idx] = srv.submit(
                    request(targets[idx], seed=idx, max_iterations=100)
                )

        with srv:
            workers = [
                threading.Thread(target=submitter, args=(w,))
                for w in range(threads_n)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in workers)
            results = [f.result(timeout=120) for f in futures]

        assert len(results) == threads_n * per_thread
        assert all(r.dof == 12 for r in results)
        stats = srv.stats()
        assert stats.submitted == threads_n * per_thread
        assert stats.completed == threads_n * per_thread
        assert stats.failed == 0
        assert stats.requests_batched == threads_n * per_thread
        if dispatch_workers > 1:
            assert stats.inflight_peak >= 1
