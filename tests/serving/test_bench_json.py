"""Every bench payload must be *strict* JSON: no NaN/Infinity ever.

Python's ``json`` emits bare ``NaN`` tokens by default, which most strict
parsers (and the JSON spec) reject — a dashboard ingesting
``BENCH_serving.json`` would fail on the first idle-server snapshot, whose
undefined ratios used to render as ``NaN``.  These tests hold both the
committed artifacts and freshly-generated payloads to ``json.loads`` with
a *raising* ``parse_constant``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.serving import ServingStats, run_serve_bench
from repro.serving.seeds import SeedCacheStats

REPO_ROOT = Path(__file__).resolve().parents[2]


def strict_loads(text: str):
    """``json.loads`` that rejects NaN/Infinity/-Infinity tokens."""
    def reject(token: str):
        raise ValueError(f"non-strict JSON constant: {token}")
    return json.loads(text, parse_constant=reject)


class TestCommittedArtifacts:
    @pytest.mark.parametrize(
        "path",
        sorted(REPO_ROOT.glob("BENCH_*.json")),
        ids=lambda p: p.name,
    )
    def test_committed_bench_payloads_are_strict_json(self, path):
        strict_loads(path.read_text(encoding="utf-8"))


class TestFreshPayloads:
    def test_idle_server_stats_snapshot_is_strict(self):
        # Before any traffic every ratio is undefined: the snapshot must
        # say null, not NaN.
        snapshot = ServingStats().to_dict()
        parsed = strict_loads(json.dumps(snapshot, allow_nan=False))
        assert parsed["mean_occupancy"] is None
        assert parsed["cache_hit_rate"] is None
        assert parsed["warm_iteration_reduction"] is None

    def test_empty_seed_cache_stats_are_strict(self):
        parsed = strict_loads(
            json.dumps(SeedCacheStats().to_dict(), allow_nan=False)
        )
        assert parsed["hit_rate"] is None

    def test_serve_bench_payload_round_trips_strict(self):
        payload = run_serve_bench(
            robot="dadu-12dof", requests=6, rate_hz=200.0,
            max_batch_size=4, max_wait_ms=4.0, max_iterations=2000,
            workload="tracking", seed=11,
        )
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
        parsed = strict_loads(text)
        assert parsed["completed"] == 6
        assert parsed["workload"] == "tracking"
        # The lag/latency split is present and disjoint.
        assert parsed["scheduler_lag_s"]["mean"] is not None
        assert parsed["server_latency_s"]["p50"] is not None
        assert (
            parsed["server_latency_s"]["p50"] <= parsed["latency_s"]["p50"]
        )
        assert parsed["warm_start"]["enabled"] is True
        for value in parsed["serving"].values():
            if isinstance(value, float):
                assert math.isfinite(value)

    def test_warm_start_off_payload_is_strict(self):
        payload = run_serve_bench(
            robot="dadu-12dof", requests=4, rate_hz=200.0,
            max_batch_size=4, max_wait_ms=4.0, max_iterations=2000,
            warm_start=False, seed=12,
        )
        parsed = strict_loads(json.dumps(payload, allow_nan=False))
        assert parsed["warm_start"]["enabled"] is False
        assert "cold_baseline" not in parsed["warm_start"]
        assert parsed["serving"]["cache_hit_rate"] is None
