"""Warm-start seed cache: nearest lookup, bounds, fingerprint invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kinematics.robots import named_robot
from repro.serving import SeedCache, chain_fingerprint


@pytest.fixture
def chain():
    return named_robot("planar-8dof")


def _q(value: float, dof: int = 8) -> np.ndarray:
    return np.full(dof, value)


class TestFingerprint:
    def test_identically_built_chains_share_fingerprint(self):
        assert chain_fingerprint(named_robot("planar-8dof")) == \
            chain_fingerprint(named_robot("planar-8dof"))

    def test_different_geometry_differs(self):
        assert chain_fingerprint(named_robot("planar-8dof")) != \
            chain_fingerprint(named_robot("dadu-12dof"))

    def test_in_place_mutation_changes_fingerprint(self, chain):
        before = chain_fingerprint(chain)
        chain._const[0, 0, 3] += 0.25  # lengthen one link in place
        assert chain_fingerprint(chain) != before


class TestLookup:
    def test_miss_on_empty(self, chain):
        cache = SeedCache()
        assert cache.lookup(chain, np.zeros(3)) is None
        assert cache.stats.misses == 1

    def test_nearest_target_wins(self, chain):
        cache = SeedCache()
        cache.record(chain, [0.0, 0.0, 0.0], _q(0.0))
        cache.record(chain, [1.0, 0.0, 0.0], _q(1.0))
        got = cache.lookup(chain, [0.9, 0.0, 0.0])
        np.testing.assert_array_equal(got, _q(1.0))
        assert cache.stats.hits == 1 and cache.stats.records == 2

    def test_lookup_returns_copy(self, chain):
        cache = SeedCache()
        cache.record(chain, np.zeros(3), _q(0.5))
        got = cache.lookup(chain, np.zeros(3))
        got[:] = 99.0
        np.testing.assert_array_equal(cache.lookup(chain, np.zeros(3)), _q(0.5))

    def test_max_distance_radius(self, chain):
        cache = SeedCache(max_distance=0.1)
        cache.record(chain, [0.0, 0.0, 0.0], _q(0.0))
        assert cache.lookup(chain, [0.05, 0.0, 0.0]) is not None
        assert cache.lookup(chain, [0.5, 0.0, 0.0]) is None

    def test_mutated_chain_never_warm_starts_stale_geometry(self, chain):
        cache = SeedCache()
        cache.record(chain, np.zeros(3), _q(0.0))
        assert cache.lookup(chain, np.zeros(3)) is not None
        chain._theta_offset[0] += 0.1  # geometry changed under the cache
        assert cache.lookup(chain, np.zeros(3)) is None


class TestBounds:
    def test_capacity_evicts_fifo(self, chain):
        cache = SeedCache(capacity=2)
        cache.record(chain, [0.0, 0.0, 0.0], _q(0.0))
        cache.record(chain, [5.0, 0.0, 0.0], _q(5.0))
        cache.record(chain, [9.0, 0.0, 0.0], _q(9.0))
        assert len(cache) == 2
        # The oldest entry is gone: its exact target now resolves to the
        # nearest survivor.
        np.testing.assert_array_equal(
            cache.lookup(chain, [0.0, 0.0, 0.0]), _q(5.0)
        )

    def test_max_robots_evicts_least_recent(self):
        cache = SeedCache(max_robots=1)
        a, b = named_robot("planar-8dof"), named_robot("dadu-12dof")
        cache.record(a, np.zeros(3), _q(1.0, 8))
        cache.record(b, np.zeros(3), _q(2.0, 12))
        assert cache.lookup(a, np.zeros(3)) is None
        np.testing.assert_array_equal(cache.lookup(b, np.zeros(3)), _q(2.0, 12))

    def test_invalidate_drops_entries_keeps_stats(self, chain):
        cache = SeedCache()
        cache.record(chain, np.zeros(3), _q(0.0))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.lookup(chain, np.zeros(3)) is None
        assert cache.stats.records == 1

    @pytest.mark.parametrize(
        "kwargs", [
            {"capacity": 0},
            {"max_robots": 0},
            {"max_distance": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SeedCache(**kwargs)


class TestRankedSelection:
    """IKSel-style scoring: k-NN pool, limit penalty, deterministic ties."""

    def test_tied_distances_resolve_to_most_recent(self, chain):
        # Two cached solutions for the *same* target: identical distance,
        # identical limit proximity -> the later recording wins (trajectory
        # locality), deterministically.
        cache = SeedCache()
        cache.record(chain, np.zeros(3), _q(0.2))
        cache.record(chain, np.zeros(3), _q(-0.2))
        np.testing.assert_array_equal(
            cache.lookup(chain, np.zeros(3)), _q(-0.2)
        )
        # Repeat lookups stay stable.
        np.testing.assert_array_equal(
            cache.lookup(chain, np.zeros(3)), _q(-0.2)
        )

    def test_limit_penalty_prefers_centred_seed(self, chain):
        # Equidistant candidates (mirror targets around the query): the
        # seed pinned against its +/-pi limits loses to the centred one
        # even though it was recorded more recently.
        cache = SeedCache()
        cache.record(chain, [0.1, 0.0, 0.0], _q(0.0))       # centred
        cache.record(chain, [-0.1, 0.0, 0.0], _q(3.14159))  # on the limits
        np.testing.assert_array_equal(
            cache.lookup(chain, np.zeros(3)), _q(0.0)
        )

    def test_zero_penalty_restores_pure_distance_ranking(self, chain):
        cache = SeedCache(limit_penalty=0.0)
        cache.record(chain, [0.1, 0.0, 0.0], _q(0.0))
        cache.record(chain, [-0.05, 0.0, 0.0], _q(3.14159))
        # The clamped seed is strictly nearer and nothing penalises it.
        np.testing.assert_array_equal(
            cache.lookup(chain, np.zeros(3)), _q(3.14159)
        )

    def test_k_bounds_the_candidate_pool(self, chain):
        # With k=1 only the single nearest target is scored, so the
        # limit penalty cannot rescue the centred-but-farther seed.
        cache = SeedCache(k=1)
        cache.record(chain, [0.1, 0.0, 0.0], _q(0.0))
        cache.record(chain, [-0.05, 0.0, 0.0], _q(3.14159))
        np.testing.assert_array_equal(
            cache.lookup(chain, np.zeros(3)), _q(3.14159)
        )

    def test_nonfinite_cached_target_is_never_selected(self, chain):
        cache = SeedCache()
        cache.record(chain, [np.nan, 0.0, 0.0], _q(9.0))
        cache.record(chain, [0.2, 0.0, 0.0], _q(1.0))
        np.testing.assert_array_equal(
            cache.lookup(chain, np.zeros(3)), _q(1.0)
        )

    @pytest.mark.parametrize(
        "kwargs", [{"k": 0}, {"limit_penalty": -0.5}],
    )
    def test_ranking_knob_validation(self, kwargs):
        with pytest.raises(ValueError):
            SeedCache(**kwargs)


class TestMixedRobotStreams:
    def test_interleaved_robots_stay_isolated(self):
        # A mixed stream must never cross-pollinate: each robot's lookups
        # only ever see its own recordings.
        cache = SeedCache()
        a, b = named_robot("planar-8dof"), named_robot("dadu-12dof")
        for i in range(4):
            cache.record(a, [0.1 * i, 0.0, 0.0], _q(float(i), 8))
            cache.record(b, [0.1 * i, 0.0, 0.0], _q(float(-i), 12))
        got_a = cache.lookup(a, [0.3, 0.0, 0.0])
        got_b = cache.lookup(b, [0.3, 0.0, 0.0])
        assert got_a.shape == (8,) and got_b.shape == (12,)
        np.testing.assert_array_equal(got_a, _q(3.0, 8))
        np.testing.assert_array_equal(got_b, _q(-3.0, 12))

    def test_mid_stream_mutation_invalidates_only_that_robot(self):
        cache = SeedCache()
        a, b = named_robot("planar-8dof"), named_robot("dadu-12dof")
        cache.record(a, np.zeros(3), _q(1.0, 8))
        cache.record(b, np.zeros(3), _q(2.0, 12))
        a._const[0, 0, 3] += 0.25  # a's geometry changes under the cache
        assert cache.lookup(a, np.zeros(3)) is None
        np.testing.assert_array_equal(
            cache.lookup(b, np.zeros(3)), _q(2.0, 12)
        )
        # Recording under the mutated geometry starts a fresh entry set.
        cache.record(a, np.zeros(3), _q(5.0, 8))
        np.testing.assert_array_equal(
            cache.lookup(a, np.zeros(3)), _q(5.0, 8)
        )

    def test_eviction_is_fifo_within_the_ranked_pool(self, chain):
        # Capacity 3, four recordings: the oldest falls out, and ranked
        # selection over the survivors returns the nearest of the three
        # newest — eviction order is insertion order, not score order.
        cache = SeedCache(capacity=3)
        for i in range(4):
            cache.record(chain, [float(i), 0.0, 0.0], _q(float(i)))
        np.testing.assert_array_equal(
            cache.lookup(chain, [0.0, 0.0, 0.0]), _q(1.0)
        )
        np.testing.assert_array_equal(
            cache.lookup(chain, [3.0, 0.0, 0.0]), _q(3.0)
        )


class TestStats:
    def test_hit_rate(self, chain):
        cache = SeedCache()
        assert np.isnan(cache.stats.hit_rate)
        cache.record(chain, np.zeros(3), _q(0.0))
        cache.lookup(chain, np.zeros(3))
        cache.lookup(named_robot("dadu-12dof"), np.zeros(3))
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.to_dict() == {
            "hits": 1, "misses": 1, "records": 1, "hit_rate": 0.5,
        }
