"""Differential kernel conformance tier: vectorized vs the scalar oracle.

The vectorized kernel layer (:mod:`repro.kinematics.kernels`) replaces the
link-by-link FK/Jacobian loops with stacked-matmul kernels; the scalar path
is kept verbatim as the oracle.  This tier holds the fast path to it:

* **Primitive agreement** — FK frames, end positions, Jacobians and batch
  variants agree within 1e-12 for every registered robot and for the
  paper's DOF sweep (12/25/50/75/100).
* **Candidate-error agreement** — the speculative-sweep quantity Quick-IK
  branches on (``||X_t - f(theta + alpha_k dtheta)||`` over all ``Max``
  candidates) agrees within 1e-12, so step selection cannot silently
  diverge.
* **Solver equivalence** — every registered solver (and every lock-step
  batch engine) run under ``kernel="vectorized"`` terminates with the same
  iteration count, status and convergence verdict as under
  ``kernel="scalar"``, with final ``q`` equal up to float associativity
  (the same 1e-9 bound the cross-engine tier uses).

Tolerances are absolute: the workload geometry has ~1 m reach, so 1e-12 is
~4 decimal orders tighter than double-precision accumulation noise would
excuse and ~10 orders below the paper's 1e-2 accuracy constraint.
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.kinematics.kernels import KERNEL_MODES
from repro.kinematics.robots import ROBOT_NAMES, named_robot
from repro.solvers.registry import (
    BATCH_REGISTRY,
    SOLVER_REGISTRY,
    make_batch_solver,
    make_solver,
)

#: ISSUE acceptance bound for vectorized-vs-scalar agreement.
ATOL = 1e-12

#: The paper's DOF sweep (Section 6.2), exercised via generated robots.
SWEEP_DOFS = (12, 25, 50, 75, 100)

#: Every fixed named robot plus the generated families across the sweep.
ROBOTS = tuple(ROBOT_NAMES) + tuple(f"dadu-{dof}dof" for dof in SWEEP_DOFS)

SEED = 20170619
N_CONFIGS = 5
MAX_CANDIDATES = 32


def _twins(robot: str):
    """The scalar and vectorized twins of one registered robot."""
    scalar = named_robot(robot)
    return scalar, scalar.with_kernel("vectorized")


def _configurations(chain, n: int = N_CONFIGS) -> np.ndarray:
    rng = np.random.default_rng((SEED, chain.dof))
    return np.stack([chain.random_configuration(rng) for _ in range(n)])


def test_kernel_modes_cover_both_paths():
    assert set(KERNEL_MODES) == {"scalar", "vectorized"}


@pytest.mark.parametrize("robot", ROBOTS)
def test_fk_agrees(robot):
    """Full 4x4 FK and end positions: single and batch entry points."""
    scalar, vectorized = _twins(robot)
    qs = _configurations(scalar)
    for q in qs:
        np.testing.assert_allclose(
            vectorized.fk(q), scalar.fk(q), atol=ATOL, rtol=0.0
        )
        np.testing.assert_allclose(
            vectorized.end_position(q), scalar.end_position(q),
            atol=ATOL, rtol=0.0,
        )
    np.testing.assert_allclose(
        vectorized.fk_batch(qs), scalar.fk_batch(qs), atol=ATOL, rtol=0.0
    )
    np.testing.assert_allclose(
        vectorized.end_positions_batch(qs), scalar.end_positions_batch(qs),
        atol=ATOL, rtol=0.0,
    )


@pytest.mark.parametrize("robot", ROBOTS)
def test_jacobian_agrees(robot):
    """Position Jacobians: single and batch entry points."""
    scalar, vectorized = _twins(robot)
    qs = _configurations(scalar)
    for q in qs:
        np.testing.assert_allclose(
            vectorized.jacobian_position(q), scalar.jacobian_position(q),
            atol=ATOL, rtol=0.0,
        )
    np.testing.assert_allclose(
        vectorized.jacobian_position_batch(qs),
        scalar.jacobian_position_batch(qs),
        atol=ATOL, rtol=0.0,
    )


@pytest.mark.parametrize("robot", ROBOTS)
def test_candidate_errors_agree(robot):
    """The speculative sweep's selection quantity agrees across kernels.

    Reproduces exactly what Quick-IK evaluates each iteration: ``Max``
    candidate configurations ``theta + alpha_k dtheta`` along the Jacobian
    transpose direction, scored by distance to the target.  Equal errors
    (to 1e-12) mean the first-below-tolerance / argmin selection sees the
    same landscape under both kernels.
    """
    scalar, vectorized = _twins(robot)
    rng = np.random.default_rng((SEED + 1, scalar.dof))
    q = scalar.random_configuration(rng)
    target = scalar.end_position(scalar.random_configuration(rng))

    direction = scalar.jacobian_position(q).T @ (target - scalar.end_position(q))
    alphas = np.geomspace(1e-3, 1.0, MAX_CANDIDATES)
    candidates = q[None, :] + alphas[:, None] * direction[None, :]

    err_scalar = np.linalg.norm(
        target - scalar.end_positions_batch(candidates), axis=1
    )
    err_vectorized = np.linalg.norm(
        target - vectorized.end_positions_batch(candidates), axis=1
    )
    np.testing.assert_allclose(err_vectorized, err_scalar, atol=ATOL, rtol=0.0)


# -- solver-level equivalence ------------------------------------------

SOLVER_CONFIGS = {
    mode: SolverConfig(
        tolerance=1e-2, max_iterations=120, record_history=False, kernel=mode
    )
    for mode in KERNEL_MODES
}


def _solver_workload(dof: int = 25, n: int = 4):
    chain = named_robot(f"dadu-{dof}dof")
    rng = np.random.default_rng((SEED + 2, dof))
    targets = np.stack(
        [chain.end_position(chain.random_configuration(rng)) for _ in range(n)]
    )
    return chain, targets


def _assert_same_result(a, b):
    """Same termination, trajectory-equal up to float associativity."""
    assert a.iterations == b.iterations
    assert a.status == b.status
    assert a.converged == b.converged
    assert a.fk_evaluations == b.fk_evaluations
    np.testing.assert_allclose(a.q, b.q, atol=1e-9, rtol=0.0)
    assert a.error == pytest.approx(b.error, abs=1e-9)


@pytest.mark.parametrize("name", sorted(SOLVER_REGISTRY))
def test_solver_results_identical_across_kernels(name):
    """Every SOLVER_REGISTRY name: scalar and vectorized kernels converge
    identically (iterations, status, q) on the same seeded workload."""
    chain, targets = _solver_workload()
    runs = {}
    for mode in KERNEL_MODES:
        solver = make_solver(name, chain, config=SOLVER_CONFIGS[mode])
        assert solver.chain.kernel == mode
        runs[mode] = [
            solver.solve(t, rng=np.random.default_rng((SEED + 3, i)))
            for i, t in enumerate(targets)
        ]
    for scalar_run, vectorized_run in zip(runs["scalar"], runs["vectorized"]):
        _assert_same_result(scalar_run, vectorized_run)


@pytest.mark.parametrize("name", sorted(BATCH_REGISTRY))
def test_lockstep_engines_identical_across_kernels(name):
    """Lock-step batch engines agree across kernels, problem by problem."""
    chain, targets = _solver_workload()
    runs = {}
    for mode in KERNEL_MODES:
        engine = make_batch_solver(name, chain, config=SOLVER_CONFIGS[mode])
        runs[mode] = engine.solve_batch(
            targets, rng=np.random.default_rng((SEED + 4,))
        )
    for scalar_run, vectorized_run in zip(runs["scalar"], runs["vectorized"]):
        _assert_same_result(scalar_run, vectorized_run)


def test_api_kernel_switch_round_trip():
    """api.solve(kernel=...) reaches the kernel layer and agrees."""
    from repro import api

    chain, targets = _solver_workload(dof=12, n=1)
    results = {
        mode: api.solve(
            chain, targets[0], seed=7, tolerance=1e-2,
            max_iterations=120, kernel=mode,
        )
        for mode in KERNEL_MODES
    }
    _assert_same_result(results["scalar"], results["vectorized"])
