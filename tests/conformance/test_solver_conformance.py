"""Differential conformance tier: every batch path computes the same solves.

Three execution paths exist for a batch of IK problems — the scalar driver
loop, the lock-step vectorised engines, and the process-sharded pool — and
they must agree per problem:

* across *worker counts* (sharded ``workers=2`` vs ``workers=1`` vs the
  unsharded engine): **bit-for-bit identical** — same iteration counts,
  same final ``q`` arrays, same error floats, same FK-evaluation counts;
* across *engines* (lock-step vs scalar driver): identical iteration
  counts and trajectories up to floating-point associativity (the batched
  einsum contractions reorder additions; 1e-9 on ``q``).

Chains are seeded random geometries at 12/25/50 DOF, so conformance is not
an artefact of one benign manipulator.  ``max_iterations`` is capped well
below convergence for the slow serial methods: agreement of *unconverged*
trajectories is exactly as binding.
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.parallel import ShardedBatchSolver
from repro.solvers.registry import (
    BATCH_REGISTRY,
    SOLVER_REGISTRY,
    make_batch_solver,
    make_solver,
)
from repro.kinematics.robots import random_chain

DOFS = (12, 25, 50)
N_TARGETS = 6
CONFIG = SolverConfig(tolerance=1e-2, max_iterations=120, record_history=False)
SEED = 20170618


def _workload(dof: int, n: int = N_TARGETS):
    """Seeded random chain plus reachable targets for it."""
    chain = random_chain(dof, np.random.default_rng((SEED, dof)))
    rng = np.random.default_rng((SEED + 1, dof))
    targets = np.stack(
        [chain.end_position(chain.random_configuration(rng)) for _ in range(n)]
    )
    return chain, targets


def _assert_bit_identical(batch_a, batch_b):
    """Same solves, bit for bit (the cross-worker-count guarantee)."""
    assert len(batch_a) == len(batch_b)
    for a, b in zip(batch_a, batch_b):
        assert a.iterations == b.iterations
        assert np.array_equal(a.q, b.q)
        assert a.error == b.error
        assert a.converged == b.converged
        assert a.fk_evaluations == b.fk_evaluations
        assert np.array_equal(a.target, b.target)


def _assert_equivalent(batch_a, batch_b, q_atol=1e-9):
    """Same solves up to float associativity (the cross-engine guarantee)."""
    assert len(batch_a) == len(batch_b)
    for a, b in zip(batch_a, batch_b):
        assert a.iterations == b.iterations
        assert np.allclose(a.q, b.q, atol=q_atol)
        assert a.error == pytest.approx(b.error, abs=1e-9)
        assert a.converged == b.converged


@pytest.mark.parametrize("dof", DOFS)
@pytest.mark.parametrize("name", sorted(SOLVER_REGISTRY))
def test_sharded_pool_matches_workers_1(name, dof):
    """Every SOLVER_REGISTRY name: workers=2 == workers=1 == unsharded."""
    chain, targets = _workload(dof)
    seed = (SEED + 2, dof)

    unsharded = make_batch_solver(name, chain, config=CONFIG).solve_batch(
        targets, rng=np.random.default_rng(seed)
    )
    inline = ShardedBatchSolver(
        make_batch_solver(name, chain, config=CONFIG), workers=1
    ).solve_batch(targets, rng=np.random.default_rng(seed))
    pooled = ShardedBatchSolver(
        make_batch_solver(name, chain, config=CONFIG), workers=2
    ).solve_batch(targets, rng=np.random.default_rng(seed))

    _assert_bit_identical(unsharded, inline)
    _assert_bit_identical(inline, pooled)


@pytest.mark.parametrize("dof", DOFS)
@pytest.mark.parametrize("name", sorted(BATCH_REGISTRY))
def test_lockstep_engine_matches_scalar_driver_and_pool(name, dof):
    """BATCH_REGISTRY names: lock-step == scalar driver == sharded pool."""
    chain, targets = _workload(dof)
    seed = (SEED + 3, dof)

    scalar = make_solver(name, chain, config=CONFIG).solve_batch(
        targets, rng=np.random.default_rng(seed)
    )
    lockstep = make_batch_solver(name, chain, config=CONFIG).solve_batch(
        targets, rng=np.random.default_rng(seed)
    )
    pooled = ShardedBatchSolver(
        make_batch_solver(name, chain, config=CONFIG), workers=2
    ).solve_batch(targets, rng=np.random.default_rng(seed))

    _assert_equivalent(scalar, lockstep)
    _assert_bit_identical(lockstep, pooled)


@pytest.mark.parametrize("name", sorted(SOLVER_REGISTRY))
def test_api_workers_identical(name):
    """api.solve_batch(workers=4) == api.solve_batch(workers=1), all solvers."""
    from repro import api

    chain, targets = _workload(25)
    kwargs = dict(
        solver=name, seed=11, tolerance=1e-2, max_iterations=120
    )
    one = api.solve_batch(chain, targets, workers=1, **kwargs)
    four = api.solve_batch(chain, targets, workers=4, **kwargs)
    _assert_bit_identical(one, four)


def test_order_preserved_under_sharding():
    """Merged results keep input order: result[i].target is targets[i]."""
    chain, targets = _workload(12, n=9)
    batch = ShardedBatchSolver(
        make_batch_solver("JT-Speculation", chain, config=CONFIG), workers=4
    ).solve_batch(targets, rng=np.random.default_rng(0))
    for i, result in enumerate(batch):
        assert np.array_equal(result.target, targets[i])


def test_explicit_q0_rows_conform_across_all_paths():
    """Per-problem q0 rows: scalar loop, lock-step and pool all agree."""
    chain, targets = _workload(12)
    q0 = np.stack(
        [
            chain.random_configuration(np.random.default_rng((SEED + 4, i)))
            for i in range(len(targets))
        ]
    )
    lockstep = make_batch_solver("JT-Speculation", chain, config=CONFIG).solve_batch(
        targets, q0=q0
    )
    pooled = ShardedBatchSolver(
        make_batch_solver("JT-Speculation", chain, config=CONFIG), workers=3
    ).solve_batch(targets, q0=q0)
    scalar_solver = make_solver("JT-Speculation", chain, config=CONFIG)
    scalar = [scalar_solver.solve(t, q0=q0[i]) for i, t in enumerate(targets)]

    _assert_bit_identical(lockstep, pooled)
    _assert_equivalent(scalar, lockstep)
