"""Golden-fixture regression test for the telemetry JSONL trace schema.

``--trace-out`` consumers parse these files offline; a silently renamed
event or dropped field breaks them without failing any unit test.  The
committed fixture ``data/golden_trace.jsonl`` pins the schema: event names,
the exact key set of every event shape, and the JSON serialisation format.

Regenerate the fixture (after an *intentional* schema change) with::

    PYTHONPATH=src python -m tests.conformance.test_trace_golden

and commit the diff — the diff *is* the schema-change review.
"""

import json
from pathlib import Path

from repro.telemetry import JsonlTracer, read_jsonl_trace

GOLDEN = Path(__file__).parent / "data" / "golden_trace.jsonl"

#: Fields whose *values* are wall-clock/timing noise; their presence is part
#: of the schema, their values are not.
TIMING_FIELDS = {"t", "wall_time", "phase_seconds"}


def generate_trace(path) -> None:
    """The fixture workload: one scalar solve, one lock-step batch, one
    sharded batch, one skip-mode batch with a guarded target, one resilient
    solve that exhausts its fallback chain, and a two-tick streaming session
    — covering every event shape the solve and serving paths emit (including
    the ``serve_session_*`` counters)."""
    import numpy as np

    from repro import api
    from repro.resilience import ResilienceConfig
    from repro.serving import IKServer, ServerConfig, SessionManager

    chain = api.resolve_robot("dadu-12dof")
    rng = np.random.default_rng(1)
    targets = np.stack(
        [chain.end_position(chain.random_configuration(rng)) for _ in range(4)]
    )
    guarded = np.vstack([targets, [[float("nan"), 0.0, 0.0]]])
    with JsonlTracer(path) as tracer:
        api.solve(chain, targets[0], "JT-Speculation", seed=2, tracer=tracer)
        api.solve_batch(chain, targets, "JT-Speculation", seed=2, tracer=tracer)
        api.solve_batch(
            chain, targets, "JT-Speculation", seed=2, workers=2, tracer=tracer
        )
        # Resilient paths: a skip-mode batch rejecting a NaN target (adds
        # the "failed" field to the merged solve_end), and a scalar
        # resilient solve whose every chained attempt fails (emits the
        # fallback_used / solve_failed counters).
        api.solve_batch(
            chain, guarded, "JT-Speculation", seed=2, on_error="skip",
            tracer=tracer,
        )
        api.solve(
            chain, targets[0], "JT-Speculation", seed=2, max_iterations=1,
            resilience=ResilienceConfig(), tracer=tracer,
        )
        # Streaming session: sequential awaited ticks against a single
        # dispatch loop (no adaptive tuning, no seed cache) keep the
        # per-event counter snapshots deterministic — the server emits all
        # batch telemetry before completing futures.
        server_config = ServerConfig(
            max_batch_size=4, max_wait_ms=1.0, dispatch_workers=1,
            adaptive=False, warm_start=False, seed_cache_capacity=0,
        )
        with IKServer(server_config, tracer=tracer) as server:
            manager = SessionManager(server)
            session = manager.open(
                chain, solver="JT-DLS", seed=3,
                tolerance=1e-2, max_iterations=60,
            )
            for target in targets[:2]:
                session.tick(target).result(timeout=120)
            session.drain()
            manager.close_all()


def _schema(events):
    """The trace's shape: every (event name, exact key set) that occurs."""
    return {(e["event"], frozenset(e)) for e in events}


def test_reader_round_trips_golden_unchanged():
    """read_jsonl_trace parses the fixture and the writer's serialisation
    (compact separators, one object per line) reproduces it byte for byte."""
    events = read_jsonl_trace(GOLDEN)
    assert events, "golden fixture is empty"
    lines = GOLDEN.read_text(encoding="utf-8").strip().split("\n")
    assert len(events) == len(lines)
    for event, line in zip(events, lines):
        assert json.dumps(event, separators=(",", ":")) == line


def test_live_trace_matches_golden_schema(tmp_path):
    """A freshly generated trace has exactly the golden's event shapes."""
    fresh_path = tmp_path / "trace.jsonl"
    generate_trace(fresh_path)
    golden_schema = _schema(read_jsonl_trace(GOLDEN))
    fresh_schema = _schema(read_jsonl_trace(fresh_path))
    assert fresh_schema == golden_schema, (
        "telemetry JSONL schema drifted from the golden fixture; if the "
        "change is intentional, regenerate it: PYTHONPATH=src python -m "
        "tests.conformance.test_trace_golden"
    )


def test_golden_covers_every_solve_event_type():
    names = {e["event"] for e in read_jsonl_trace(GOLDEN)}
    assert {"solve_start", "iteration", "solve_end"} <= names


def test_non_timing_payload_is_deterministic(tmp_path):
    """Seeded solves reproduce the golden's non-timing values exactly."""
    fresh_path = tmp_path / "trace.jsonl"
    generate_trace(fresh_path)
    golden = read_jsonl_trace(GOLDEN)
    fresh = read_jsonl_trace(fresh_path)
    assert len(golden) == len(fresh)
    for a, b in zip(golden, fresh):
        for key in set(a) - TIMING_FIELDS:
            if key == "counters":
                assert a[key] == b[key]
            else:
                assert a[key] == b[key], f"field {key!r} drifted"


if __name__ == "__main__":
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    generate_trace(GOLDEN)
    print(f"regenerated {GOLDEN} ({len(read_jsonl_trace(GOLDEN))} events)")
