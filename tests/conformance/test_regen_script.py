"""The golden-trace fixture must match what its regen script produces.

``scripts/regen_golden_trace.py --check`` is the CI gate for fixture
freshness; this tier runs the same comparison in-process (and the script
end-to-end) so a stale committed fixture — or a script that drifts from the
test module's workload — fails before review.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO / "scripts" / "regen_golden_trace.py"


def _load_script_module():
    import importlib.util

    spec = importlib.util.spec_from_file_location("regen_golden_trace", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_golden_matches_fresh_regeneration():
    module = _load_script_module()
    assert module.check() == 0


def test_check_detects_injected_drift(tmp_path, monkeypatch):
    module = _load_script_module()
    # Point the script at a doctored copy of the fixture: one non-timing
    # field changed must flip the exit code.
    doctored = tmp_path / "golden_trace.jsonl"
    text = module.GOLDEN.read_text(encoding="utf-8")
    assert '"solver":"JT-Speculation"' in text
    doctored.write_text(
        text.replace('"solver":"JT-Speculation"', '"solver":"JT-Imposter"', 1),
        encoding="utf-8",
    )
    monkeypatch.setattr(module, "GOLDEN", doctored)
    assert module.check() == 1


def test_script_check_mode_exits_0_end_to_end():
    result = subprocess.run(
        [sys.executable, str(SCRIPT), "--check"],
        capture_output=True, text=True, cwd=REPO, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "matches a fresh regeneration" in result.stdout
