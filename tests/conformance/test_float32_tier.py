"""Conformance tier: the float32 kernel variant stays inside its
documented accuracy envelope.

float32 is a throughput tier, not an oracle: forward kinematics drift is
bounded (documented bound 1e-5 absolute over the paper sweep; measured
~3e-7 at 100 DOF) and the solver converges at the same rate as float64 on
the paper workload — it may take marginally different iteration counts,
but it must not lose problems.
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.execution import KernelSpec
from repro.kinematics.robots import paper_chain
from repro.solvers.batched import BatchedQuickIK

SEED = 20170619
SWEEP_DOFS = (12, 25, 50, 75, 100)
N_CONFIGS = 32

#: Documented absolute FK bound for float32 vs the float64 oracle
#: (docs/performance.md).  Measured worst case is ~two orders below.
FK_ATOL_F32 = 1e-5


def _configurations(chain, n=N_CONFIGS):
    rng = np.random.default_rng((SEED, chain.dof))
    return np.stack([chain.random_configuration(rng) for _ in range(n)])


@pytest.mark.parametrize("dof", SWEEP_DOFS)
def test_float32_fk_within_documented_bound(dof):
    oracle = KernelSpec(name="vectorized", dtype="float64").apply(
        paper_chain(dof)
    )
    f32 = KernelSpec(name="vectorized", dtype="float32").apply(
        paper_chain(dof)
    )
    qs = _configurations(oracle)
    expected = oracle.end_positions_batch(qs)
    got = f32.end_positions_batch(qs.astype(np.float32))
    assert got.dtype == np.float32
    deviation = np.max(np.abs(got.astype(np.float64) - expected))
    assert deviation <= FK_ATOL_F32


def test_float32_convergence_rate_matches_float64():
    """The paper's headline workload (50 DOF) must not lose problems when
    demoted to float32: same convergence rate, iteration counts within a
    small factor of the float64 oracle."""
    dof, batch = 50, 64
    base = paper_chain(dof)
    rng = np.random.default_rng((SEED, dof, "targets".__hash__() & 0xFFFF))
    targets = np.stack([
        base.end_position(base.random_configuration(rng))
        for _ in range(batch)
    ])

    def run(dtype):
        chain = KernelSpec(name="vectorized", dtype=dtype).apply(
            paper_chain(dof)
        )
        engine = BatchedQuickIK(
            chain,
            config=SolverConfig(tolerance=1e-2, max_iterations=200),
            speculations=32,
        )
        out = engine.solve_batch(
            targets, rng=np.random.default_rng(SEED + 1)
        )
        rate = sum(r.converged for r in out) / batch
        iters = np.mean([r.iterations for r in out])
        return rate, iters

    rate64, iters64 = run("float64")
    rate32, iters32 = run("float32")
    assert rate64 >= 0.9  # the workload itself must be healthy
    # Convergence-rate bound: float32 may not trail float64 by more than
    # one problem in the 64-target batch.
    assert rate32 >= rate64 - 1.0 / batch
    # Iteration-count bound: same convergence behaviour, not a different
    # algorithm.  Allow 20% slack for single-step tolerance straddling.
    assert iters32 <= iters64 * 1.2 + 1.0


def test_float32_sweep_is_tagged_but_results_stay_float64():
    """The engine sweeps in float32 (telemetry tags the dtype) while the
    public ``IKResult`` keeps the float64 result contract."""
    from repro.telemetry.sinks import SummaryTracer

    chain = KernelSpec(name="vectorized", dtype="float32").apply(
        paper_chain(25)
    )
    engine = BatchedQuickIK(
        chain, config=SolverConfig(tolerance=1e-2, max_iterations=100)
    )
    base = paper_chain(25)
    rng = np.random.default_rng(SEED)
    targets = np.stack([
        base.end_position(base.random_configuration(rng)) for _ in range(4)
    ])
    tracer = SummaryTracer()
    out = engine.solve_batch(
        targets, rng=np.random.default_rng(SEED + 1), tracer=tracer
    )
    starts = [e for e in tracer.events if e["event"] == "solve_start"]
    assert starts and starts[0]["dtype"] == "float32"
    for r in out:
        assert r.q.dtype == np.float64
