"""Conformance tier: active-set compaction is bit-invisible.

The compacted lock-step layout (dense survivor blocks, scatter-at-retirement)
and the historical layout (gather/scatter against the full arrays every
iteration) feed identical C-contiguous inputs to identical numpy ops, so
every per-problem trajectory must be bit-for-bit equal — not merely close.
This tier pins that across the paper's DOF sweep, both lock-step engines,
both kernel modes and both dtypes.

Any deviation here means the compaction bookkeeping reordered or aliased an
operation, which the 1e-12 vectorized-vs-scalar tier could mask.
"""

import numpy as np
import pytest

from repro.core.result import SolverConfig
from repro.execution import KernelSpec
from repro.kinematics.robots import paper_chain
from repro.solvers.batched import BatchedJacobianTranspose, BatchedQuickIK

SEED = 20170407
BATCH = 8

#: Paper sweep minus 100 DOF (covered by the kernel tier; this matrix is
#: already engines x dofs x kernels x dtypes).
SWEEP_DOFS = (12, 25, 50, 75)


def _workload(dof: int, kernel: str, dtype: str):
    chain = KernelSpec(name=kernel, dtype=dtype).apply(paper_chain(dof))
    rng = np.random.default_rng((SEED, dof))
    base = paper_chain(dof)
    targets = np.stack([
        base.end_position(base.random_configuration(rng))
        for _ in range(BATCH)
    ])
    return chain, targets


def _solve(engine_cls, chain, targets, compaction, **kwargs):
    engine = engine_cls(
        chain,
        config=SolverConfig(tolerance=1e-2, max_iterations=300),
        compaction=compaction,
        **kwargs,
    )
    return engine.solve_batch(
        targets, rng=np.random.default_rng(SEED + 1)
    )


def _assert_bit_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.iterations == rb.iterations
        assert ra.converged == rb.converged
        assert ra.status == rb.status
        assert ra.fk_evaluations == rb.fk_evaluations
        # Bit-for-bit, not allclose: both layouts run the same ops on the
        # same dense blocks.  equal_nan keeps the check meaningful for rows
        # that retire through the non-finite path.
        assert np.array_equal(ra.q, rb.q, equal_nan=True)
        assert np.array_equal(ra.error, rb.error, equal_nan=True)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
@pytest.mark.parametrize("dof", SWEEP_DOFS)
def test_quick_ik_compaction_bit_identical(dof, kernel, dtype):
    chain, targets = _workload(dof, kernel, dtype)
    compacted = _solve(
        BatchedQuickIK, chain, targets, True, speculations=16
    )
    baseline = _solve(
        BatchedQuickIK, chain, targets, False, speculations=16
    )
    _assert_bit_identical(compacted, baseline)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("dof", (12, 25))
def test_jacobian_transpose_compaction_bit_identical(dof, dtype):
    # JT-Serial's lock-step engine runs thousands of iterations; two DOF
    # points suffice — the layout plumbing is engine-independent.
    chain, targets = _workload(dof, "vectorized", dtype)
    compacted = _solve(BatchedJacobianTranspose, chain, targets, True)
    baseline = _solve(BatchedJacobianTranspose, chain, targets, False)
    _assert_bit_identical(compacted, baseline)


def test_compaction_handles_nonfinite_rows():
    """A target that goes non-finite mid-loop retires through the compacted
    scatter path with the same typed status as the historical layout."""
    chain, targets = _workload(25, "vectorized", "float64")
    targets = targets.copy()
    targets[3] = [np.inf, 0.0, 0.0]
    compacted = _solve(
        BatchedQuickIK, chain, targets, True, speculations=16
    )
    baseline = _solve(
        BatchedQuickIK, chain, targets, False, speculations=16
    )
    _assert_bit_identical(compacted, baseline)
    assert compacted[3].status == "nonfinite"


def test_default_is_compacted():
    chain, _ = _workload(12, "vectorized", "float64")
    assert BatchedQuickIK(chain).compaction is True
    assert BatchedQuickIK(chain, compaction=False).compaction is False
