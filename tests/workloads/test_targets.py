"""Tests for the target generators."""

import numpy as np
import pytest

from repro.kinematics.robots import hyper_redundant_chain, paper_chain
from repro.workloads.targets import (
    TARGET_GENERATORS,
    extended_pose_targets,
    make_targets,
    reachable_targets,
    shell_targets,
)


@pytest.fixture
def chain():
    return paper_chain(12)


class TestReachableTargets:
    def test_shape(self, chain, rng):
        assert reachable_targets(chain, 7, rng).shape == (7, 3)

    def test_within_reach(self, chain, rng):
        targets = reachable_targets(chain, 50, rng)
        assert np.all(np.linalg.norm(targets, axis=1) <= chain.total_reach() + 1e-9)

    def test_actually_reachable(self, chain, rng):
        """By construction every target is the FK of some configuration, so
        Quick-IK must solve them."""
        from repro.core.quick_ik import QuickIKSolver
        from repro.core.result import SolverConfig

        targets = reachable_targets(chain, 5, rng)
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=3000))
        for target in targets:
            assert solver.solve(target, rng=rng).converged

    def test_deterministic_given_rng(self, chain):
        a = reachable_targets(chain, 5, np.random.default_rng(3))
        b = reachable_targets(chain, 5, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_invalid_count(self, chain, rng):
        with pytest.raises(ValueError):
            reachable_targets(chain, 0, rng)


class TestShellTargets:
    def test_radii_within_fractions(self, chain, rng):
        targets = shell_targets(chain, 100, rng, min_fraction=0.3, max_fraction=0.6)
        radii = np.linalg.norm(targets, axis=1) / chain.total_reach()
        assert np.all(radii >= 0.3 - 1e-9)
        assert np.all(radii <= 0.6 + 1e-9)

    def test_directions_cover_sphere(self, chain, rng):
        targets = shell_targets(chain, 300, rng, max_fraction=0.5)
        mean_direction = (targets / np.linalg.norm(targets, axis=1, keepdims=True)).mean(
            axis=0
        )
        assert np.linalg.norm(mean_direction) < 0.2

    def test_respects_base_offset(self, rng):
        from repro.kinematics import transforms as tf
        from repro.kinematics.chain import KinematicChain

        plain = paper_chain(12)
        moved = KinematicChain(plain.joints, base=tf.trans(5.0, 0.0, 0.0))
        targets = shell_targets(moved, 20, rng, max_fraction=0.5)
        assert np.all(np.linalg.norm(targets - [5.0, 0.0, 0.0], axis=1)
                      <= 0.5 * moved.total_reach() + 1e-9)

    def test_invalid_fractions(self, chain, rng):
        with pytest.raises(ValueError):
            shell_targets(chain, 5, rng, min_fraction=0.8, max_fraction=0.5)
        with pytest.raises(ValueError):
            shell_targets(chain, 5, rng, max_fraction=1.5)


class TestExtendedPoseTargets:
    def test_farther_than_random_on_snake(self, rng):
        """Narrow joint ranges keep the snake nearly straight, so targets sit
        much farther out than full-range random ones."""
        chain = hyper_redundant_chain(25)
        near = reachable_targets(chain, 50, rng)
        far = extended_pose_targets(chain, 50, rng, range_fraction=0.1)
        assert np.mean(np.linalg.norm(far, axis=1)) > np.mean(
            np.linalg.norm(near, axis=1)
        )

    def test_full_fraction_equals_reachable_distribution_support(self, chain, rng):
        targets = extended_pose_targets(chain, 20, rng, range_fraction=1.0)
        assert np.all(np.linalg.norm(targets, axis=1) <= chain.total_reach() + 1e-9)

    def test_invalid_fraction(self, chain, rng):
        with pytest.raises(ValueError):
            extended_pose_targets(chain, 5, rng, range_fraction=0.0)
        with pytest.raises(ValueError):
            extended_pose_targets(chain, 5, rng, range_fraction=1.5)


class TestDispatch:
    def test_known_kinds(self, chain, rng):
        for kind in TARGET_GENERATORS:
            assert make_targets(kind, chain, 3, rng).shape == (3, 3)

    def test_kwargs_forwarded(self, chain, rng):
        targets = make_targets("shell", chain, 50, rng, max_fraction=0.2)
        assert np.all(
            np.linalg.norm(targets, axis=1) <= 0.2 * chain.total_reach() + 1e-9
        )

    def test_unknown_kind(self, chain, rng):
        with pytest.raises(KeyError):
            make_targets("teleport", chain, 3, rng)
