"""Tests for the evaluation suite."""

import numpy as np
import pytest

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import IKResult, SolverConfig
from repro.workloads.suite import (
    EvaluationSuite,
    aggregate_results,
    default_target_count,
)


class TestDefaults:
    def test_paper_dofs_default(self):
        assert EvaluationSuite().dofs == (12, 25, 50, 75, 100)

    def test_env_var_overrides_target_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_TARGETS", "7")
        assert default_target_count() == 7
        assert EvaluationSuite().targets_per_dof == 7

    def test_env_var_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TARGETS", "0")
        with pytest.raises(ValueError):
            default_target_count()

    def test_explicit_count_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TARGETS", "7")
        assert EvaluationSuite(targets_per_dof=3).targets_per_dof == 3

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EvaluationSuite(dofs=())
        with pytest.raises(ValueError):
            EvaluationSuite(targets_per_dof=0)


class TestDeterminism:
    def test_targets_deterministic(self):
        a = EvaluationSuite(dofs=(12,), targets_per_dof=4)
        b = EvaluationSuite(dofs=(12,), targets_per_dof=4)
        assert np.array_equal(a.targets(12), b.targets(12))

    def test_targets_cached(self):
        suite = EvaluationSuite(dofs=(12,), targets_per_dof=4)
        assert suite.targets(12) is suite.targets(12)

    def test_chains_cached(self):
        suite = EvaluationSuite(dofs=(12,), targets_per_dof=4)
        assert suite.chain(12) is suite.chain(12)

    def test_different_seed_different_targets(self):
        a = EvaluationSuite(dofs=(12,), targets_per_dof=4, seed=1)
        b = EvaluationSuite(dofs=(12,), targets_per_dof=4, seed=2)
        assert not np.array_equal(a.targets(12), b.targets(12))

    def test_run_solver_deterministic(self):
        def run():
            suite = EvaluationSuite(dofs=(12,), targets_per_dof=4)
            solver = QuickIKSolver(
                suite.chain(12), config=SolverConfig(max_iterations=2000)
            )
            return suite.run_solver(solver, 12)

        assert run().mean_iterations == run().mean_iterations


class TestRunSolver:
    def test_rejects_foreign_chain(self):
        from repro.kinematics.robots import paper_chain

        suite = EvaluationSuite(dofs=(12,), targets_per_dof=2)
        foreign = QuickIKSolver(paper_chain(12))  # same geometry, not the cached object
        with pytest.raises(ValueError):
            suite.run_solver(foreign, 12)

    def test_stats_fields(self):
        suite = EvaluationSuite(dofs=(12,), targets_per_dof=3)
        solver = QuickIKSolver(
            suite.chain(12), config=SolverConfig(max_iterations=2000)
        )
        stats = suite.run_solver(solver, 12)
        assert stats.n_targets == 3
        assert stats.solver == "JT-Speculation"
        assert stats.dof == 12
        assert stats.speculations == 64
        assert 0.0 <= stats.success_rate <= 1.0
        assert stats.iterations.shape == (3,)
        assert stats.mean_work == pytest.approx(64 * stats.mean_iterations)

    def test_run_results_returns_raw(self):
        suite = EvaluationSuite(dofs=(12,), targets_per_dof=2)
        solver = QuickIKSolver(
            suite.chain(12), config=SolverConfig(max_iterations=2000)
        )
        results = suite.run_results(solver, 12)
        assert len(results) == 2
        assert all(hasattr(r, "iterations") for r in results)


class TestAggregate:
    def _result(self, iterations, converged=True):
        return IKResult(
            q=np.zeros(3),
            converged=converged,
            iterations=iterations,
            error=1e-3,
            target=np.zeros(3),
            solver="x",
            dof=3,
            speculations=4,
            fk_evaluations=iterations * 4,
        )

    def test_aggregate_statistics(self):
        stats = aggregate_results([self._result(10), self._result(30)])
        assert stats.mean_iterations == 20.0
        assert stats.median_iterations == 20.0
        assert stats.max_iterations == 30
        assert stats.mean_work == 80.0
        assert stats.success_rate == 1.0

    def test_aggregate_failure_rate(self):
        stats = aggregate_results(
            [self._result(10), self._result(99, converged=False)]
        )
        assert stats.success_rate == 0.5

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_row_keys(self):
        row = aggregate_results([self._result(10)]).row()
        assert {"solver", "dof", "mean_iterations", "success_rate"} <= set(row)
