"""Unit tests for the DH link parameterisation."""

import math

import numpy as np
import pytest

from repro.kinematics import transforms as tf
from repro.kinematics.dh import DHConvention, DHLink, dh_transform


class TestDHTransformStandard:
    def test_all_zero_is_identity(self):
        assert np.allclose(dh_transform(0, 0, 0, 0), np.eye(4))

    def test_pure_theta_is_rot_z(self):
        assert np.allclose(dh_transform(0, 0, 0, 0.7), tf.rot_z(0.7))

    def test_pure_d_is_trans_z(self):
        assert np.allclose(dh_transform(0, 0, 0.3, 0), tf.trans_z(0.3))

    def test_pure_a_is_trans_x(self):
        assert np.allclose(dh_transform(0.5, 0, 0, 0), tf.trans_x(0.5))

    def test_pure_alpha_is_rot_x(self):
        assert np.allclose(dh_transform(0, 0.9, 0, 0), tf.rot_x(0.9))

    def test_matches_explicit_product(self):
        a, alpha, d, theta = 0.2, 0.5, 0.1, -0.7
        expected = (
            tf.rot_z(theta) @ tf.trans_z(d) @ tf.trans_x(a) @ tf.rot_x(alpha)
        )
        assert np.allclose(dh_transform(a, alpha, d, theta), expected, atol=1e-12)

    def test_is_rigid_transform(self, rng):
        for _ in range(20):
            a, alpha, d, theta = rng.uniform(-1, 1, 4)
            assert tf.is_transform(dh_transform(a, alpha, d, theta))


class TestDHTransformModified:
    def test_all_zero_is_identity(self):
        matrix = dh_transform(0, 0, 0, 0, convention=DHConvention.MODIFIED)
        assert np.allclose(matrix, np.eye(4))

    def test_matches_explicit_product(self):
        a, alpha, d, theta = 0.2, 0.5, 0.1, -0.7
        expected = (
            tf.rot_x(alpha) @ tf.trans_x(a) @ tf.rot_z(theta) @ tf.trans_z(d)
        )
        matrix = dh_transform(a, alpha, d, theta, convention=DHConvention.MODIFIED)
        assert np.allclose(matrix, expected, atol=1e-12)

    def test_differs_from_standard_generically(self):
        standard = dh_transform(0.3, 0.4, 0.1, 0.2)
        modified = dh_transform(0.3, 0.4, 0.1, 0.2, convention=DHConvention.MODIFIED)
        assert not np.allclose(standard, modified)


class TestDHLink:
    def test_constant_part_standard_factorisation(self):
        link = DHLink(a=0.2, alpha=0.5, d=0.1, theta=0.3)
        # T = Rz(theta) @ constant for revolute standard links.
        reconstructed = tf.rot_z(link.theta) @ link.constant_part()
        assert np.allclose(
            reconstructed, dh_transform(link.a, link.alpha, link.d, link.theta)
        )

    def test_constant_part_modified_factorisation(self):
        link = DHLink(a=0.2, alpha=0.5, d=0.1, theta=0.3)
        constant = link.constant_part(DHConvention.MODIFIED)
        reconstructed = constant @ tf.rot_z(link.theta) @ tf.trans_z(link.d)
        expected = dh_transform(
            link.a, link.alpha, link.d, link.theta, convention=DHConvention.MODIFIED
        )
        assert np.allclose(reconstructed, expected)

    def test_unknown_convention_rejected(self):
        with pytest.raises(ValueError):
            DHLink().constant_part("bogus")
        with pytest.raises(ValueError):
            dh_transform(0, 0, 0, 0, convention="bogus")

    def test_link_is_frozen(self):
        link = DHLink(a=1.0)
        with pytest.raises(AttributeError):
            link.a = 2.0

    def test_half_pi_twist_swaps_axes(self):
        matrix = dh_transform(0.0, math.pi / 2, 0.0, 0.0)
        mapped = tf.transform_point(matrix, [0.0, 1.0, 0.0])
        assert np.allclose(mapped, [0.0, 0.0, 1.0], atol=1e-12)
