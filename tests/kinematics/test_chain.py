"""Unit tests for KinematicChain: FK, batching, frames, structure, dtype."""

import math

import numpy as np
import pytest

from repro.kinematics import transforms as tf
from repro.kinematics.chain import KinematicChain
from repro.kinematics.dh import DHConvention, dh_transform
from repro.kinematics.joint import Joint, JointLimits
from repro.kinematics.robots import planar_chain, random_chain, stanford_arm


class TestConstruction:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            KinematicChain([])

    def test_bad_convention_rejected(self):
        with pytest.raises(ValueError):
            KinematicChain([Joint.revolute()], convention="weird")

    def test_bad_base_shape_rejected(self):
        with pytest.raises(ValueError):
            KinematicChain([Joint.revolute()], base=np.eye(3))

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ValueError):
            KinematicChain([Joint.revolute()], dtype=np.int32)

    def test_dof_and_len(self):
        chain = planar_chain(4)
        assert chain.dof == 4
        assert chain.n_joints == 4
        assert len(chain) == 4

    def test_repr_mentions_name_and_dof(self):
        chain = planar_chain(4)
        assert "4" in repr(chain)
        assert chain.name in repr(chain)


class TestForwardKinematicsPlanar:
    """The planar arm has hand-computable positions."""

    def test_straight_arm_reaches_full_length(self, planar3):
        position = planar3.end_position(np.zeros(3))
        assert np.allclose(position, [1.0, 0.0, 0.0], atol=1e-12)

    def test_first_joint_rotates_whole_arm(self, planar3):
        position = planar3.end_position([math.pi / 2, 0.0, 0.0])
        assert np.allclose(position, [0.0, 1.0, 0.0], atol=1e-12)

    def test_elbow_bend_geometry(self, planar3):
        # Two straight links then fold the last one back by pi.
        position = planar3.end_position([0.0, 0.0, math.pi])
        assert np.allclose(position, [1.0 / 3.0, 0.0, 0.0], atol=1e-12)

    def test_planar_chain_stays_in_plane(self, planar3, rng):
        for _ in range(20):
            q = planar3.random_configuration(rng)
            assert abs(planar3.end_position(q)[2]) < 1e-12

    def test_position_equals_sum_of_link_vectors(self, planar3, rng):
        q = planar3.random_configuration(rng)
        cumulative = np.cumsum(q)
        expected = np.zeros(3)
        for angle in cumulative:
            expected += np.array([math.cos(angle), math.sin(angle), 0.0]) / 3.0
        assert np.allclose(planar3.end_position(q), expected, atol=1e-12)


class TestForwardKinematicsGeneral:
    def test_fk_matches_product_of_dh_transforms(self, dadu12, rng):
        q = dadu12.random_configuration(rng)
        expected = np.eye(4)
        for joint, value in zip(dadu12.joints, q):
            expected = expected @ dh_transform(
                joint.link.a, joint.link.alpha, joint.link.d, joint.link.theta + value
            )
        assert np.allclose(dadu12.fk(q), expected, atol=1e-10)

    def test_prismatic_joint_moves_along_axis(self):
        chain = KinematicChain([Joint.prismatic(limits=JointLimits(0.0, 2.0))])
        p0 = chain.end_position(np.array([0.0]))
        p1 = chain.end_position(np.array([1.5]))
        assert np.allclose(p1 - p0, [0.0, 0.0, 1.5], atol=1e-12)

    def test_stanford_arm_fk_with_prismatic(self, rng):
        chain = stanford_arm()
        q = chain.random_configuration(rng)
        expected = np.eye(4)
        for joint, value in zip(chain.joints, q):
            theta = joint.link.theta + (value if joint.is_revolute else 0.0)
            d = joint.link.d + (value if joint.is_prismatic else 0.0)
            expected = expected @ dh_transform(joint.link.a, joint.link.alpha, d, theta)
        assert np.allclose(chain.fk(q), expected, atol=1e-10)

    def test_base_transform_is_applied(self, rng):
        base = tf.trans(0.0, 0.0, 0.5)
        plain = planar_chain(3)
        raised = KinematicChain(plain.joints, base=base)
        q = plain.random_configuration(rng)
        assert np.allclose(
            raised.end_position(q), plain.end_position(q) + [0.0, 0.0, 0.5]
        )

    def test_tool_transform_is_applied(self, rng):
        plain = planar_chain(3)
        with_tool = plain.with_tool(tf.trans_x(0.1))
        q = plain.random_configuration(rng)
        # Tool extends along the last link's x axis.
        frames = plain.link_frames(q)
        direction = frames[-1][:3, 0]
        assert np.allclose(
            with_tool.end_position(q), plain.end_position(q) + 0.1 * direction
        )

    def test_modified_convention_fk_matches_reference(self, rng):
        joints = [
            Joint.revolute(a=0.2, alpha=0.4, d=0.1),
            Joint.revolute(a=0.3, alpha=-0.5, d=0.0),
            Joint.revolute(a=0.1, alpha=1.0, d=0.2),
        ]
        chain = KinematicChain(joints, convention=DHConvention.MODIFIED)
        q = chain.random_configuration(rng)
        expected = np.eye(4)
        for joint, value in zip(joints, q):
            expected = expected @ dh_transform(
                joint.link.a,
                joint.link.alpha,
                joint.link.d,
                joint.link.theta + value,
                convention=DHConvention.MODIFIED,
            )
        assert np.allclose(chain.fk(q), expected, atol=1e-10)

    def test_fk_output_is_rigid(self, dadu12, rng):
        q = dadu12.random_configuration(rng)
        assert tf.is_transform(dadu12.fk(q), tol=1e-8)

    def test_wrong_q_shape_rejected(self, planar3):
        with pytest.raises(ValueError):
            planar3.end_position(np.zeros(4))


class TestBatchedFK:
    def test_batch_matches_individual(self, dadu12, rng):
        qs = np.stack([dadu12.random_configuration(rng) for _ in range(9)])
        batched = dadu12.end_positions_batch(qs)
        for i in range(9):
            assert np.allclose(batched[i], dadu12.end_position(qs[i]), atol=1e-12)

    def test_fk_batch_full_poses(self, dadu12, rng):
        qs = np.stack([dadu12.random_configuration(rng) for _ in range(4)])
        poses = dadu12.fk_batch(qs)
        assert poses.shape == (4, 4, 4)
        for i in range(4):
            assert np.allclose(poses[i], dadu12.fk(qs[i]), atol=1e-12)

    def test_batch_of_one(self, planar3):
        out = planar3.end_positions_batch(np.zeros((1, 3)))
        assert out.shape == (1, 3)
        assert np.allclose(out[0], [1.0, 0.0, 0.0])

    def test_bad_batch_shape_rejected(self, planar3):
        with pytest.raises(ValueError):
            planar3.end_positions_batch(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            planar3.end_positions_batch(np.zeros(3))

    def test_mixed_chain_batch(self, mixed_chain, rng):
        qs = np.stack([mixed_chain.random_configuration(rng) for _ in range(6)])
        batched = mixed_chain.end_positions_batch(qs)
        for i in range(6):
            assert np.allclose(batched[i], mixed_chain.end_position(qs[i]), atol=1e-12)


class TestLinkFrames:
    def test_first_frame_is_base(self, dadu12, rng):
        frames = dadu12.link_frames(dadu12.random_configuration(rng))
        assert np.allclose(frames[0], dadu12.base)

    def test_last_frame_times_tool_is_fk(self, dadu12, rng):
        q = dadu12.random_configuration(rng)
        frames = dadu12.link_frames(q)
        assert np.allclose(frames[-1] @ dadu12.tool, dadu12.fk(q), atol=1e-12)

    def test_frames_count(self, dadu12, rng):
        frames = dadu12.link_frames(dadu12.random_configuration(rng))
        assert frames.shape == (13, 4, 4)

    def test_all_frames_rigid(self, dadu12, rng):
        frames = dadu12.link_frames(dadu12.random_configuration(rng))
        for frame in frames:
            assert tf.is_transform(frame, tol=1e-8)


class TestLimitsAndSampling:
    def test_random_configuration_within_limits(self, mixed_chain, rng):
        for _ in range(50):
            assert mixed_chain.within_limits(mixed_chain.random_configuration(rng))

    def test_clamp(self):
        chain = KinematicChain(
            [Joint.revolute(limits=JointLimits(-0.5, 0.5)) for _ in range(2)]
        )
        clamped = chain.clamp(np.array([2.0, -2.0]))
        assert np.allclose(clamped, [0.5, -0.5])

    def test_within_limits_tolerance(self):
        chain = KinematicChain([Joint.revolute(limits=JointLimits(-1.0, 1.0))])
        assert not chain.within_limits(np.array([1.001]))
        assert chain.within_limits(np.array([1.001]), tol=0.01)

    def test_limit_arrays_are_copies(self, planar3):
        planar3.lower_limits[0] = 99.0
        assert planar3.lower_limits[0] != 99.0


class TestTotalReach:
    def test_planar_total_reach(self):
        assert math.isclose(planar_chain(5, total_reach=2.0).total_reach(), 2.0)

    def test_reach_is_upper_bound(self, rng):
        chain = random_chain(8, rng)
        reach = chain.total_reach()
        for _ in range(50):
            q = chain.random_configuration(rng)
            assert np.linalg.norm(chain.end_position(q)) <= reach + 1e-9

    def test_tool_extends_reach(self, planar3):
        extended = planar3.with_tool(tf.trans_x(0.5))
        assert math.isclose(extended.total_reach(), planar3.total_reach() + 0.5)


class TestStructureHelpers:
    def test_subchain_prefix_fk(self, dadu12, rng):
        sub = dadu12.subchain(5)
        q = dadu12.random_configuration(rng)
        frames = dadu12.link_frames(q)
        assert np.allclose(sub.fk(q[:5]), frames[5], atol=1e-12)

    def test_subchain_bounds(self, dadu12):
        with pytest.raises(ValueError):
            dadu12.subchain(0)
        with pytest.raises(ValueError):
            dadu12.subchain(13)

    def test_joint_names_autogenerated(self):
        chain = KinematicChain([Joint.revolute(), Joint.revolute(name="elbow")])
        names = chain.joint_names()
        assert names[0] == "joint0"
        assert names[1] == "elbow"

    def test_count_joints(self, mixed_chain):
        revolute = mixed_chain.count_joints("revolute")
        prismatic = mixed_chain.count_joints("prismatic")
        assert revolute + prismatic == mixed_chain.dof

    def test_count_joints_bad_type(self, planar3):
        with pytest.raises(ValueError):
            planar3.count_joints("spherical")

    def test_joint_types(self, planar3):
        assert list(planar3.joint_types()) == ["revolute"] * 3


class TestDtype:
    def test_astype_float32_outputs_float32(self, dadu12, rng):
        chain32 = dadu12.astype(np.float32)
        q = dadu12.random_configuration(rng)
        assert chain32.end_position(q).dtype == np.float32
        assert chain32.jacobian_position(q).dtype == np.float32
        assert chain32.fk(q).dtype == np.float32

    def test_float32_close_to_float64(self, dadu12, rng):
        chain32 = dadu12.astype(np.float32)
        for _ in range(10):
            q = dadu12.random_configuration(rng)
            p64 = dadu12.end_position(q)
            p32 = chain32.end_position(q).astype(np.float64)
            assert np.linalg.norm(p64 - p32) < 1e-5

    def test_astype_preserves_structure(self, dadu12):
        chain32 = dadu12.astype(np.float32)
        assert chain32.dof == dadu12.dof
        assert chain32.convention == dadu12.convention
        assert chain32.name == dadu12.name

    def test_default_dtype_is_float64(self, dadu12):
        assert dadu12.dtype == np.float64
