"""Tests for the SVG visualisation helpers."""

import numpy as np
import pytest

from repro.kinematics.robots import paper_chain, planar_chain
from repro.kinematics.viz import (
    chain_skeleton,
    project_orthographic,
    render_chain_svg,
    render_history_svg,
    save_svg,
)


class TestProjection:
    def test_xy_plane(self):
        points = np.array([[1.0, 2.0, 3.0]])
        assert np.array_equal(project_orthographic(points, "xy"), [[1.0, 2.0]])

    def test_xz_and_yz(self):
        points = np.array([[1.0, 2.0, 3.0]])
        assert np.array_equal(project_orthographic(points, "xz"), [[1.0, 3.0]])
        assert np.array_equal(project_orthographic(points, "yz"), [[2.0, 3.0]])

    def test_unknown_plane(self):
        with pytest.raises(ValueError):
            project_orthographic(np.zeros((1, 3)), "uv")


class TestSkeleton:
    def test_starts_at_base_ends_at_effector(self, rng):
        chain = paper_chain(12)
        q = chain.random_configuration(rng)
        skeleton = chain_skeleton(chain, q)
        assert skeleton.shape == (14, 3)
        assert np.allclose(skeleton[0], chain.base[:3, 3])
        assert np.allclose(skeleton[-1], chain.end_position(q))

    def test_segment_lengths_bounded_by_links(self, rng):
        chain = planar_chain(5, total_reach=1.0)
        q = chain.random_configuration(rng)
        skeleton = chain_skeleton(chain, q)
        gaps = np.linalg.norm(np.diff(skeleton, axis=0), axis=1)
        assert np.all(gaps <= 0.2 + 1e-9)


class TestChainSVG:
    def test_valid_svg_with_expected_elements(self, rng):
        chain = paper_chain(12)
        qs = [chain.random_configuration(rng) for _ in range(2)]
        svg = render_chain_svg(chain, qs, targets=np.array([[0.1, 0.2, 0.0]]))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # Two skeletons + two cross strokes per target.
        assert svg.count("<polyline") == 2 + 2
        # Dots per pose: N + 1 frame origins plus the end-effector dot.
        assert svg.count("<circle") == 2 * (12 + 2)

    def test_viewbox_present_and_finite(self, rng):
        chain = planar_chain(3)
        svg = render_chain_svg(chain, [np.zeros(3)])
        assert 'viewBox="' in svg
        assert "inf" not in svg
        assert "nan" not in svg

    def test_parses_as_xml(self, rng):
        import xml.etree.ElementTree as ET

        chain = paper_chain(12)
        svg = render_chain_svg(chain, [chain.random_configuration(rng)])
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")


class TestHistorySVG:
    def test_renders_curves_and_labels(self):
        svg = render_history_svg(
            {"a": [1.0, 0.1, 0.01], "b": [1.0, 0.5]}, tolerance=1e-2
        )
        assert svg.count("<text") == 3  # two labels + tolerance
        assert svg.count("<polyline") == 3  # two curves + tolerance line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_history_svg({})

    def test_zero_errors_do_not_break_log(self):
        svg = render_history_svg({"a": [1.0, 0.0]})
        assert "nan" not in svg and "inf" not in svg

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        svg = render_history_svg({"solver": [1.0, 0.1]})
        ET.fromstring(svg)


class TestSave:
    def test_save_roundtrip(self, tmp_path, rng):
        chain = planar_chain(3)
        svg = render_chain_svg(chain, [np.zeros(3)])
        path = tmp_path / "out.svg"
        save_svg(svg, str(path))
        assert path.read_text() == svg
