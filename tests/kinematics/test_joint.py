"""Unit tests for the joint model."""

import math

import numpy as np
import pytest

from repro.kinematics.joint import Joint, JointLimits, JointType


class TestJointLimits:
    def test_default_is_full_circle(self):
        limits = JointLimits()
        assert limits.lower == -math.pi
        assert limits.upper == math.pi
        assert math.isclose(limits.span, 2 * math.pi)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            JointLimits(1.0, -1.0)

    def test_degenerate_interval_allowed(self):
        limits = JointLimits(0.5, 0.5)
        assert limits.span == 0.0
        assert limits.clamp(3.0) == 0.5

    def test_clamp_scalar(self):
        limits = JointLimits(-1.0, 2.0)
        assert limits.clamp(-5.0) == -1.0
        assert limits.clamp(5.0) == 2.0
        assert limits.clamp(0.3) == 0.3

    def test_clamp_array(self):
        limits = JointLimits(-1.0, 1.0)
        clamped = limits.clamp_array(np.array([-3.0, 0.0, 3.0]))
        assert np.array_equal(clamped, [-1.0, 0.0, 1.0])

    def test_contains_with_tolerance(self):
        limits = JointLimits(0.0, 1.0)
        assert limits.contains(0.5)
        assert not limits.contains(1.1)
        assert limits.contains(1.05, tol=0.1)

    def test_sample_stays_inside(self, rng):
        limits = JointLimits(-0.3, 0.8)
        for _ in range(100):
            assert limits.contains(limits.sample(rng))


class TestJoint:
    def test_revolute_constructor(self):
        joint = Joint.revolute(a=0.1, alpha=0.2, d=0.3, theta_offset=0.4, name="j")
        assert joint.is_revolute and not joint.is_prismatic
        assert joint.link.a == 0.1
        assert joint.link.theta == 0.4
        assert joint.variable_offset() == 0.4
        assert joint.name == "j"

    def test_prismatic_constructor(self):
        joint = Joint.prismatic(a=0.1, alpha=0.2, d_offset=0.3, theta=0.4)
        assert joint.is_prismatic and not joint.is_revolute
        assert joint.link.d == 0.3
        assert joint.variable_offset() == 0.3

    def test_prismatic_default_limits_are_bounded(self):
        joint = Joint.prismatic()
        assert joint.limits.lower == 0.0
        assert joint.limits.upper == 1.0

    def test_unknown_joint_type_rejected(self):
        from repro.kinematics.dh import DHLink

        with pytest.raises(ValueError):
            Joint(link=DHLink(), joint_type="helical")

    def test_joint_type_constants(self):
        assert set(JointType.ALL) == {JointType.REVOLUTE, JointType.PRISMATIC}

    def test_joint_is_frozen(self):
        joint = Joint.revolute()
        with pytest.raises(AttributeError):
            joint.name = "other"
