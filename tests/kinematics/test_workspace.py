"""Tests for the workspace analysis."""

import numpy as np
import pytest

from repro.kinematics.robots import hyper_redundant_chain, paper_chain, planar_chain
from repro.kinematics.workspace import safe_shell_fraction, sample_workspace


class TestSampleWorkspace:
    def test_radii_bounded_by_nominal_reach(self):
        report = sample_workspace(paper_chain(25), samples=500)
        assert report.max_radius <= report.nominal_reach + 1e-9
        assert report.effective_reach_fraction <= 1.0

    def test_percentiles_monotone(self):
        report = sample_workspace(paper_chain(12), samples=500)
        values = [report.percentiles[p] for p in sorted(report.percentiles)]
        assert values == sorted(values)
        assert report.mean_radius <= report.max_radius

    def test_planar_chain_can_nearly_extend(self):
        """A planar arm straightens, so its observed reach approaches the
        nominal bound with enough samples."""
        report = sample_workspace(planar_chain(3), samples=3000)
        assert report.effective_reach_fraction > 0.8

    def test_random_chain_reaches_less_than_snake(self):
        random_report = sample_workspace(paper_chain(25), samples=1000)
        snake_report = sample_workspace(hyper_redundant_chain(25), samples=1000)
        # Random twists prevent straightening; the snake extends further
        # relative to its nominal reach.
        assert (
            snake_report.effective_reach_fraction
            > random_report.effective_reach_fraction
        )

    def test_deterministic_with_rng(self):
        a = sample_workspace(paper_chain(12), samples=100, rng=np.random.default_rng(3))
        b = sample_workspace(paper_chain(12), samples=100, rng=np.random.default_rng(3))
        assert a.max_radius == b.max_radius

    def test_centroid_near_origin_for_symmetric_sampling(self):
        report = sample_workspace(hyper_redundant_chain(12), samples=3000)
        assert np.linalg.norm(report.centroid) < 0.35 * report.nominal_reach

    def test_radius_at_unknown_percentile(self):
        report = sample_workspace(paper_chain(12), samples=50)
        with pytest.raises(KeyError):
            report.radius_at(42)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            sample_workspace(paper_chain(12), samples=0)


class TestSafeShellFraction:
    def test_in_unit_interval(self):
        fraction = safe_shell_fraction(paper_chain(25), samples=500)
        assert 0.0 < fraction < 1.0

    def test_higher_coverage_larger_fraction(self):
        chain = paper_chain(25)
        rng = lambda: np.random.default_rng(1)
        low = safe_shell_fraction(chain, coverage=0.5, samples=500, rng=rng())
        high = safe_shell_fraction(chain, coverage=0.95, samples=500, rng=rng())
        assert high >= low

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            safe_shell_fraction(paper_chain(12), coverage=1.5)
