"""Tests for the URDF loader."""

import math

import numpy as np
import pytest

from repro.kinematics.urdf import UrdfError, chain_to_urdf, load_urdf, load_urdf_file

TWO_LINK = """
<robot name="two-link">
  <link name="base"/>
  <link name="upper"/>
  <link name="hand"/>
  <joint name="shoulder" type="revolute">
    <origin xyz="0 0 0.1" rpy="0 0 0"/>
    <parent link="base"/>
    <child link="upper"/>
    <axis xyz="0 0 1"/>
    <limit lower="-1.5" upper="1.5"/>
  </joint>
  <joint name="elbow" type="revolute">
    <origin xyz="0.5 0 0" rpy="0 0 0"/>
    <parent link="upper"/>
    <child link="hand"/>
    <axis xyz="0 1 0"/>
    <limit lower="-2.0" upper="2.0"/>
  </joint>
</robot>
"""

WITH_FIXED_AND_PRISMATIC = """
<robot name="gantry">
  <link name="world"/>
  <link name="rail"/>
  <link name="cart"/>
  <link name="arm"/>
  <joint name="mount" type="fixed">
    <origin xyz="0 0 1.0" rpy="0 0 1.5707963267948966"/>
    <parent link="world"/>
    <child link="rail"/>
  </joint>
  <joint name="slide" type="prismatic">
    <parent link="rail"/>
    <child link="cart"/>
    <axis xyz="1 0 0"/>
    <limit lower="0" upper="2.0"/>
  </joint>
  <joint name="swing" type="continuous">
    <origin xyz="0 0 -0.2"/>
    <parent link="cart"/>
    <child link="arm"/>
    <axis xyz="0 0 1"/>
  </joint>
</robot>
"""

BRANCHED = """
<robot name="branched">
  <link name="torso"/>
  <link name="left"/>
  <link name="right"/>
  <joint name="l" type="revolute">
    <parent link="torso"/><child link="left"/>
    <axis xyz="0 0 1"/><limit lower="-1" upper="1"/>
  </joint>
  <joint name="r" type="revolute">
    <parent link="torso"/><child link="right"/>
    <axis xyz="0 0 1"/><limit lower="-1" upper="1"/>
  </joint>
</robot>
"""


class TestLoading:
    def test_two_link_structure(self):
        chain = load_urdf(TWO_LINK)
        assert chain.dof == 2
        assert chain.name == "two-link"
        assert [j.name for j in chain.joints] == ["shoulder", "elbow"]

    def test_limits_parsed(self):
        chain = load_urdf(TWO_LINK)
        assert chain.joints[0].limits.lower == -1.5
        assert chain.joints[1].limits.upper == 2.0

    def test_fk_geometry(self):
        chain = load_urdf(TWO_LINK)
        # Zero pose: base lift 0.1 in z, elbow at x=0.5.
        assert np.allclose(chain.end_position(np.zeros(2)), [0.5, 0.0, 0.1])
        # Shoulder a quarter turn about z moves the elbow to +y.
        p = chain.end_position(np.array([math.pi / 2, 0.0]))
        assert np.allclose(p, [0.0, 0.5, 0.1], atol=1e-12)

    def test_fixed_and_prismatic(self):
        chain = load_urdf(WITH_FIXED_AND_PRISMATIC)
        assert chain.dof == 2  # fixed mount consumes no dof
        assert chain.n_structural_joints == 3
        # Slide 1 m along the rail x axis, which the fixed mount rotated to
        # world +y.
        p0 = chain.end_position(np.zeros(2))
        p1 = chain.end_position(np.array([1.0, 0.0]))
        assert np.allclose(p1 - p0, [0.0, 1.0, 0.0], atol=1e-9)

    def test_continuous_maps_to_revolute_with_pi_limits(self):
        chain = load_urdf(WITH_FIXED_AND_PRISMATIC)
        swing = chain.joints[-1]
        assert swing.joint_type == "revolute"
        assert swing.limits.lower == pytest.approx(-math.pi)

    def test_branched_requires_tip(self):
        with pytest.raises(UrdfError):
            load_urdf(BRANCHED)
        chain = load_urdf(BRANCHED, tip_link="left")
        assert chain.dof == 1
        assert chain.joints[0].name == "l"

    def test_base_and_tip_selection(self):
        chain = load_urdf(TWO_LINK, base_link="upper", tip_link="hand")
        assert chain.dof == 1
        assert chain.joints[0].name == "elbow"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "robot.urdf"
        path.write_text(TWO_LINK)
        assert load_urdf_file(str(path)).dof == 2


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(UrdfError):
            load_urdf("<robot><link name='a'>")

    def test_wrong_root(self):
        with pytest.raises(UrdfError):
            load_urdf("<machine/>")

    def test_no_joints(self):
        with pytest.raises(UrdfError):
            load_urdf('<robot name="x"><link name="a"/></robot>')

    def test_unknown_joint_type(self):
        bad = TWO_LINK.replace('type="revolute"', 'type="planar"', 1)
        with pytest.raises(UrdfError):
            load_urdf(bad)

    def test_unknown_tip(self):
        with pytest.raises(UrdfError):
            load_urdf(TWO_LINK, tip_link="nonexistent")

    def test_prismatic_without_limit(self):
        bad = """
        <robot name="x"><link name="a"/><link name="b"/>
          <joint name="j" type="prismatic">
            <parent link="a"/><child link="b"/><axis xyz="1 0 0"/>
          </joint>
        </robot>"""
        with pytest.raises(UrdfError):
            load_urdf(bad)

    def test_kinematic_loop_detected(self):
        loop = """
        <robot name="x"><link name="a"/><link name="b"/>
          <joint name="j1" type="revolute">
            <parent link="a"/><child link="b"/>
            <axis xyz="0 0 1"/><limit lower="-1" upper="1"/>
          </joint>
          <joint name="j2" type="revolute">
            <parent link="b"/><child link="a"/>
            <axis xyz="0 0 1"/><limit lower="-1" upper="1"/>
          </joint>
        </robot>"""
        with pytest.raises(UrdfError):
            load_urdf(loop, base_link="a")


class TestRoundTrip:
    def test_chain_to_urdf_and_back(self, rng):
        original = load_urdf(WITH_FIXED_AND_PRISMATIC)
        rebuilt = load_urdf(chain_to_urdf(original))
        assert rebuilt.dof == original.dof
        for _ in range(10):
            q = original.random_configuration(rng)
            assert np.allclose(
                original.end_position(q), rebuilt.end_position(q), atol=1e-9
            )

    def test_urdf_chain_is_solvable(self, rng):
        from repro.core.quick_ik import QuickIKSolver
        from repro.core.result import SolverConfig

        chain = load_urdf(WITH_FIXED_AND_PRISMATIC)
        target = chain.end_position(chain.random_configuration(rng))
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=2000))
        assert solver.solve(target, rng=rng).converged
