"""Jacobian correctness against finite differences, plus conditioning metrics."""

import math

import numpy as np
import pytest

from repro.kinematics import transforms as tf
from repro.kinematics.chain import KinematicChain
from repro.kinematics.dh import DHConvention
from repro.kinematics.jacobian import (
    condition_number,
    is_near_singular,
    manipulability,
    min_singular_value,
    numerical_jacobian,
    numerical_jacobian_position,
)
from repro.kinematics.joint import Joint
from repro.kinematics.robots import (
    paper_chain,
    planar_chain,
    puma560,
    random_chain,
    stanford_arm,
)


class TestPositionJacobian:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: planar_chain(4),
            puma560,
            stanford_arm,
            lambda: paper_chain(12),
            lambda: paper_chain(25),
        ],
    )
    def test_matches_finite_differences(self, factory, rng):
        chain = factory()
        for _ in range(5):
            q = chain.random_configuration(rng)
            analytic = chain.jacobian_position(q)
            numeric = numerical_jacobian_position(chain, q)
            assert np.allclose(analytic, numeric, atol=1e-6)

    def test_random_chains_with_prismatic(self, rng):
        for _ in range(5):
            chain = random_chain(7, rng, prismatic_probability=0.5)
            q = chain.random_configuration(rng)
            assert np.allclose(
                chain.jacobian_position(q),
                numerical_jacobian_position(chain, q),
                atol=1e-6,
            )

    def test_modified_convention(self, rng):
        joints = [Joint.revolute(a=0.2, alpha=0.3 * i) for i in range(1, 5)]
        chain = KinematicChain(joints, convention=DHConvention.MODIFIED)
        q = chain.random_configuration(rng)
        assert np.allclose(
            chain.jacobian_position(q),
            numerical_jacobian_position(chain, q),
            atol=1e-6,
        )

    def test_shape(self, rng):
        chain = paper_chain(25)
        jac = chain.jacobian_position(chain.random_configuration(rng))
        assert jac.shape == (3, 25)

    def test_tool_offset_included(self, rng):
        plain = planar_chain(3)
        chain = plain.with_tool(tf.trans_x(0.4))
        q = chain.random_configuration(rng)
        assert np.allclose(
            chain.jacobian_position(q),
            numerical_jacobian_position(chain, q),
            atol=1e-6,
        )

    def test_base_offset_does_not_change_jacobian(self, rng):
        plain = planar_chain(3)
        moved = KinematicChain(plain.joints, base=tf.trans(0.1, 0.2, 0.3))
        q = plain.random_configuration(rng)
        # Pure base translation: same joint axes, same relative geometry.
        assert np.allclose(
            plain.jacobian_position(q), moved.jacobian_position(q), atol=1e-12
        )


class TestFullJacobian:
    @pytest.mark.parametrize("factory", [puma560, stanford_arm, lambda: paper_chain(12)])
    def test_matches_finite_differences(self, factory, rng):
        chain = factory()
        for _ in range(3):
            q = chain.random_configuration(rng)
            assert np.allclose(
                chain.jacobian(q), numerical_jacobian(chain, q), atol=1e-5
            )

    def test_top_rows_equal_position_jacobian(self, dadu12, rng):
        q = dadu12.random_configuration(rng)
        assert np.allclose(dadu12.jacobian(q)[:3], dadu12.jacobian_position(q))

    def test_prismatic_has_zero_angular_rows(self, rng):
        chain = stanford_arm()
        q = chain.random_configuration(rng)
        full = chain.jacobian(q)
        prismatic_index = [j.is_prismatic for j in chain.joints].index(True)
        assert np.allclose(full[3:, prismatic_index], 0.0)

    def test_revolute_angular_rows_are_unit_axes(self, dadu12, rng):
        q = dadu12.random_configuration(rng)
        angular = dadu12.jacobian(q)[3:]
        norms = np.linalg.norm(angular, axis=0)
        assert np.allclose(norms, 1.0, atol=1e-10)


class TestConditioningMetrics:
    def test_manipulability_zero_at_singularity(self):
        chain = planar_chain(3)
        # Fully stretched planar arm: singular (no radial motion).
        jac = chain.jacobian_position(np.zeros(3))
        assert manipulability(jac) < 1e-12
        assert is_near_singular(jac)

    def test_manipulability_positive_generic(self, rng):
        chain = paper_chain(12)
        jac = chain.jacobian_position(chain.random_configuration(rng))
        assert manipulability(jac) > 0.0

    def test_condition_number_at_least_one(self, dadu12, rng):
        jac = dadu12.jacobian_position(dadu12.random_configuration(rng))
        assert condition_number(jac) >= 1.0

    def test_condition_number_infinite_at_rank_deficiency(self):
        jac = np.zeros((3, 4))
        jac[0, 0] = 1.0
        assert math.isinf(condition_number(jac))

    def test_min_singular_value_matches_svd(self, dadu12, rng):
        jac = dadu12.jacobian_position(dadu12.random_configuration(rng))
        svals = np.linalg.svd(jac, compute_uv=False)
        assert math.isclose(min_singular_value(jac), float(svals[-1]))

    def test_near_singular_threshold(self):
        jac = np.diag([1.0, 1.0, 1e-9])[:, :3]
        assert is_near_singular(jac, threshold=1e-6)
        assert not is_near_singular(jac, threshold=1e-12)
