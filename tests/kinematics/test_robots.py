"""Tests for the robot zoo."""

import numpy as np
import pytest

from repro.kinematics.robots import (
    PAPER_DOFS,
    hyper_redundant_chain,
    named_robot,
    paper_chain,
    planar_chain,
    puma560,
    random_chain,
    seven_dof_arm,
    stanford_arm,
)


class TestGeneratedChains:
    @pytest.mark.parametrize("dof", PAPER_DOFS)
    def test_paper_chain_dofs(self, dof):
        assert paper_chain(dof).dof == dof

    def test_paper_chain_is_deterministic(self):
        a = paper_chain(25)
        b = paper_chain(25)
        q = np.linspace(-1, 1, 25)
        assert np.allclose(a.end_position(q), b.end_position(q))

    def test_paper_chains_differ_across_dof(self):
        # Different DOF => genuinely different geometry (different seeds).
        a = paper_chain(12)
        b = paper_chain(25)
        assert not np.allclose(
            a.end_position(np.zeros(12)), b.end_position(np.zeros(25))
        )

    def test_paper_chain_link_lengths_sum_to_reach(self):
        chain = paper_chain(50, total_reach=1.2)
        assert np.isclose(sum(abs(j.link.a) for j in chain.joints), 1.2)
        # total_reach additionally counts the small random d offsets.
        assert 1.2 <= chain.total_reach() <= 1.2 + 0.06 * 50

    def test_planar_chain_link_lengths_sum_to_reach(self):
        chain = planar_chain(8, total_reach=2.0)
        assert np.isclose(sum(j.link.a for j in chain.joints), 2.0)

    def test_hyper_redundant_alternating_twists(self):
        chain = hyper_redundant_chain(6)
        twists = [j.link.alpha for j in chain.joints]
        assert twists[0] > 0 > twists[1]
        assert np.allclose(np.abs(twists), np.pi / 2)

    def test_invalid_dof_rejected(self):
        for factory in (planar_chain, hyper_redundant_chain, paper_chain):
            with pytest.raises(ValueError):
                factory(0)

    def test_random_chain_reproducible_with_seeded_rng(self):
        a = random_chain(10, np.random.default_rng(3))
        b = random_chain(10, np.random.default_rng(3))
        q = np.linspace(-1, 1, 10)
        assert np.allclose(a.end_position(q), b.end_position(q))

    def test_random_chain_prismatic_probability_one(self):
        chain = random_chain(6, np.random.default_rng(0), prismatic_probability=1.0)
        assert chain.count_joints("prismatic") == 6


class TestClassicArms:
    def test_puma_has_six_revolute_joints(self):
        chain = puma560()
        assert chain.dof == 6
        assert chain.count_joints("revolute") == 6

    def test_stanford_has_one_prismatic(self):
        chain = stanford_arm()
        assert chain.dof == 6
        assert chain.count_joints("prismatic") == 1

    def test_seven_dof_arm(self):
        chain = seven_dof_arm()
        assert chain.dof == 7

    def test_puma_zero_pose_position(self):
        # At the zero pose the arm reaches a2 + a3 along x-ish and the
        # offsets along the remaining axes; just sanity-check magnitude.
        reach = np.linalg.norm(puma560().end_position(np.zeros(6)))
        assert 0.4 < reach < 1.1


class TestNamedRobot:
    @pytest.mark.parametrize("name", ["puma560", "stanford", "7dof-arm"])
    def test_classic_names(self, name):
        assert named_robot(name).dof in (6, 7)

    def test_generated_names(self):
        assert named_robot("dadu-25dof").dof == 25
        assert named_robot("snake-10dof").dof == 10
        assert named_robot("planar-4dof").dof == 4

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            named_robot("terminator")

    def test_malformed_generated_name_raises(self):
        with pytest.raises(KeyError):
            named_robot("dadu-xdof")
        with pytest.raises(KeyError):
            named_robot("dadu-0dof")
