"""Tests for chain JSON serialisation."""

import numpy as np
import pytest

from repro.kinematics import transforms as tf
from repro.kinematics.generic import GenericChain, GenericJoint
from repro.kinematics.io import chain_from_dict, chain_to_dict, load_chain, save_chain
from repro.kinematics.joint import JointLimits
from repro.kinematics.robots import paper_chain, random_chain, stanford_arm


class TestDHRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [lambda: paper_chain(12), stanford_arm,
         lambda: random_chain(6, np.random.default_rng(2), prismatic_probability=0.3)],
    )
    def test_fk_identical_after_roundtrip(self, factory, rng):
        original = factory()
        rebuilt = chain_from_dict(chain_to_dict(original))
        for _ in range(10):
            q = original.random_configuration(rng)
            assert np.allclose(original.fk(q), rebuilt.fk(q), atol=1e-12)

    def test_metadata_preserved(self):
        original = paper_chain(12)
        rebuilt = chain_from_dict(chain_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.convention == original.convention
        assert rebuilt.dof == original.dof
        assert np.array_equal(rebuilt.lower_limits, original.lower_limits)

    def test_base_and_tool_preserved(self, rng):
        from repro.kinematics.chain import KinematicChain

        base = tf.trans(0.1, 0.2, 0.3) @ tf.rot_z(0.4)
        original = KinematicChain(
            paper_chain(5).joints, base=base, tool=tf.trans_x(0.05)
        )
        rebuilt = chain_from_dict(chain_to_dict(original))
        q = original.random_configuration(rng)
        assert np.allclose(original.fk(q), rebuilt.fk(q), atol=1e-12)


class TestGenericRoundTrip:
    def test_generic_chain_roundtrip(self, rng):
        joints = [
            GenericJoint(origin=tf.trans_x(0.2), axis=np.array([0, 0, 1.0])),
            GenericJoint(
                origin=tf.rot_x(0.3) @ tf.trans(0.1, 0.0, 0.2),
                axis=np.array([0, 1.0, 0]),
                joint_type="prismatic",
                limits=JointLimits(0.0, 0.5),
            ),
            GenericJoint(origin=tf.trans_y(0.1), joint_type="fixed"),
            GenericJoint(origin=np.eye(4), axis=np.array([1.0, 1.0, 0])),
        ]
        original = GenericChain(joints, tool=tf.trans_z(0.05), name="mixed")
        rebuilt = chain_from_dict(chain_to_dict(original))
        assert rebuilt.dof == original.dof
        assert rebuilt.n_structural_joints == original.n_structural_joints
        for _ in range(10):
            q = original.random_configuration(rng)
            assert np.allclose(original.fk(q), rebuilt.fk(q), atol=1e-12)


class TestFiles:
    def test_save_and_load(self, tmp_path, rng):
        original = paper_chain(8)
        path = tmp_path / "robot.json"
        save_chain(original, str(path))
        rebuilt = load_chain(str(path))
        q = original.random_configuration(rng)
        assert np.allclose(original.end_position(q), rebuilt.end_position(q))

    def test_json_is_human_readable(self, tmp_path):
        path = tmp_path / "robot.json"
        save_chain(paper_chain(3), str(path))
        text = path.read_text()
        assert '"kind": "dh"' in text
        assert '"joints"' in text


class TestErrors:
    def test_unknown_format_version(self):
        data = chain_to_dict(paper_chain(3))
        data["format"] = 99
        with pytest.raises(ValueError):
            chain_from_dict(data)

    def test_unknown_kind(self):
        data = chain_to_dict(paper_chain(3))
        data["kind"] = "hexapod"
        with pytest.raises(ValueError):
            chain_from_dict(data)

    def test_unknown_object(self):
        with pytest.raises(TypeError):
            chain_to_dict(object())
