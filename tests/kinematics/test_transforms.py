"""Unit tests for SE(3)/SO(3) primitives."""

import math

import numpy as np
import pytest

from repro.kinematics import transforms as tf


class TestBasicRotations:
    def test_identity_is_4x4_identity(self):
        assert np.array_equal(tf.identity(), np.eye(4))

    def test_rot_x_quarter_turn_maps_y_to_z(self):
        rotated = tf.transform_point(tf.rot_x(math.pi / 2), [0.0, 1.0, 0.0])
        assert np.allclose(rotated, [0.0, 0.0, 1.0], atol=1e-12)

    def test_rot_y_quarter_turn_maps_z_to_x(self):
        rotated = tf.transform_point(tf.rot_y(math.pi / 2), [0.0, 0.0, 1.0])
        assert np.allclose(rotated, [1.0, 0.0, 0.0], atol=1e-12)

    def test_rot_z_quarter_turn_maps_x_to_y(self):
        rotated = tf.transform_point(tf.rot_z(math.pi / 2), [1.0, 0.0, 0.0])
        assert np.allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    def test_rotation_by_zero_is_identity(self):
        for rot in (tf.rot_x, tf.rot_y, tf.rot_z):
            assert np.allclose(rot(0.0), np.eye(4))

    def test_rotations_are_valid_transforms(self):
        for rot in (tf.rot_x, tf.rot_y, tf.rot_z):
            assert tf.is_transform(rot(0.7))

    def test_rotation_composition_adds_angles(self):
        combined = tf.rot_z(0.3) @ tf.rot_z(0.4)
        assert np.allclose(combined, tf.rot_z(0.7))

    def test_rotation_inverse_is_negative_angle(self):
        assert np.allclose(tf.invert_transform(tf.rot_y(0.5)), tf.rot_y(-0.5))


class TestTranslations:
    def test_trans_moves_origin(self):
        moved = tf.transform_point(tf.trans(1.0, 2.0, 3.0), [0.0, 0.0, 0.0])
        assert np.allclose(moved, [1.0, 2.0, 3.0])

    def test_axis_translations_match_general(self):
        assert np.allclose(tf.trans_x(2.0), tf.trans(2.0, 0.0, 0.0))
        assert np.allclose(tf.trans_y(2.0), tf.trans(0.0, 2.0, 0.0))
        assert np.allclose(tf.trans_z(2.0), tf.trans(0.0, 0.0, 2.0))

    def test_translation_composition_adds(self):
        assert np.allclose(
            tf.trans(1, 0, 0) @ tf.trans(0, 2, 0), tf.trans(1, 2, 0)
        )


class TestRPY:
    def test_zero_rpy_is_identity(self):
        assert np.allclose(tf.rpy_to_rotation(0, 0, 0), np.eye(3))

    def test_roundtrip_generic(self):
        angles = (0.2, -0.4, 1.1)
        rotation = tf.rpy_to_rotation(*angles)
        assert np.allclose(tf.rotation_to_rpy(rotation), angles, atol=1e-10)

    def test_roundtrip_many_random(self, rng):
        for _ in range(50):
            roll, yaw = rng.uniform(-math.pi, math.pi, 2)
            pitch = rng.uniform(-math.pi / 2 + 0.05, math.pi / 2 - 0.05)
            rotation = tf.rpy_to_rotation(roll, pitch, yaw)
            recovered = tf.rotation_to_rpy(rotation)
            assert np.allclose(recovered, (roll, pitch, yaw), atol=1e-9)

    def test_pitch_singularity_reconstructs_rotation(self):
        rotation = tf.rpy_to_rotation(0.3, math.pi / 2, 0.5)
        recovered = tf.rpy_to_rotation(*tf.rotation_to_rpy(rotation))
        assert np.allclose(rotation, recovered, atol=1e-9)

    def test_pure_yaw_matches_rot_z(self):
        assert np.allclose(tf.rpy_to_rotation(0, 0, 0.8), tf.rot_z(0.8)[:3, :3])


class TestAxisAngle:
    def test_z_axis_matches_rot_z(self):
        rotation = tf.axis_angle_to_rotation([0, 0, 1], 0.6)
        assert np.allclose(rotation, tf.rot_z(0.6)[:3, :3])

    def test_axis_not_normalised_is_accepted(self):
        a = tf.axis_angle_to_rotation([0, 0, 10.0], 0.6)
        b = tf.axis_angle_to_rotation([0, 0, 1.0], 0.6)
        assert np.allclose(a, b)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            tf.axis_angle_to_rotation([0, 0, 0], 0.5)

    def test_roundtrip_generic(self, rng):
        for _ in range(50):
            axis = rng.normal(size=3)
            axis /= np.linalg.norm(axis)
            angle = rng.uniform(0.01, math.pi - 0.01)
            rotation = tf.axis_angle_to_rotation(axis, angle)
            recovered_axis, recovered_angle = tf.rotation_to_axis_angle(rotation)
            assert math.isclose(recovered_angle, angle, rel_tol=1e-9)
            assert np.allclose(recovered_axis, axis, atol=1e-8)

    def test_identity_gives_zero_angle(self):
        axis, angle = tf.rotation_to_axis_angle(np.eye(3))
        assert angle == 0.0
        assert np.allclose(np.linalg.norm(axis), 1.0)

    def test_half_turn_recovers_axis_up_to_sign(self, rng):
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        rotation = tf.axis_angle_to_rotation(axis, math.pi)
        recovered_axis, recovered_angle = tf.rotation_to_axis_angle(rotation)
        assert math.isclose(recovered_angle, math.pi, rel_tol=1e-6)
        assert np.allclose(
            tf.axis_angle_to_rotation(recovered_axis, math.pi), rotation, atol=1e-6
        )


class TestHomogeneous:
    def test_assemble_and_extract(self, rng):
        rotation = tf.random_rotation(rng)
        translation = rng.normal(size=3)
        transform = tf.homogeneous(rotation, translation)
        assert np.allclose(tf.rotation_of(transform), rotation)
        assert np.allclose(tf.translation_of(transform), translation)
        assert tf.is_transform(transform)

    def test_invert_transform_roundtrip(self, rng):
        transform = tf.homogeneous(tf.random_rotation(rng), rng.normal(size=3))
        assert np.allclose(
            transform @ tf.invert_transform(transform), np.eye(4), atol=1e-12
        )

    def test_transform_points_matches_pointwise(self, rng):
        transform = tf.homogeneous(tf.random_rotation(rng), rng.normal(size=3))
        points = rng.normal(size=(7, 3))
        batched = tf.transform_points(transform, points)
        for i in range(7):
            assert np.allclose(batched[i], tf.transform_point(transform, points[i]))


class TestValidation:
    def test_is_rotation_accepts_random_rotation(self, rng):
        assert tf.is_rotation(tf.random_rotation(rng))

    def test_is_rotation_rejects_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        assert not tf.is_rotation(reflection)

    def test_is_rotation_rejects_scaled(self):
        assert not tf.is_rotation(2.0 * np.eye(3))

    def test_is_rotation_rejects_wrong_shape(self):
        assert not tf.is_rotation(np.eye(4))

    def test_is_transform_rejects_bad_last_row(self):
        bad = np.eye(4)
        bad[3, 0] = 0.1
        assert not tf.is_transform(bad)

    def test_random_rotation_is_uniformish(self, rng):
        # The mean rotation of many samples applied to a vector ~ 0.
        vectors = np.array(
            [tf.random_rotation(rng) @ np.array([1.0, 0.0, 0.0]) for _ in range(500)]
        )
        assert np.linalg.norm(vectors.mean(axis=0)) < 0.2


class TestOrientationError:
    def test_zero_for_equal_rotations(self, rng):
        rotation = tf.random_rotation(rng)
        assert np.allclose(tf.orientation_error(rotation, rotation), 0.0)

    def test_small_rotation_approximates_axis_times_angle(self, rng):
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        angle = 1e-4
        target = tf.axis_angle_to_rotation(axis, angle)
        error = tf.orientation_error(np.eye(3), target)
        assert np.allclose(error, axis * angle, rtol=1e-3)

    def test_direction_points_from_current_to_target(self):
        target = tf.rot_z(0.2)[:3, :3]
        error = tf.orientation_error(np.eye(3), target)
        assert error[2] > 0.0  # positive z rotation needed


class TestBatched:
    def test_batch_rot_z_matches_scalar(self, rng):
        angles = rng.uniform(-math.pi, math.pi, size=6)
        batch = tf.batch_rot_z(angles)
        for i, angle in enumerate(angles):
            assert np.allclose(batch[i], tf.rot_z(angle))

    def test_batch_rot_z_2d_shape(self):
        out = tf.batch_rot_z(np.zeros((3, 5)))
        assert out.shape == (3, 5, 4, 4)
        assert np.allclose(out[1, 2], np.eye(4))

    def test_batch_matmul_chain_matches_reduce(self, rng):
        locals_ = np.stack(
            [tf.homogeneous(tf.random_rotation(rng), rng.normal(size=3)) for _ in range(5)]
        )
        chained = tf.batch_matmul_chain(locals_)
        manual = np.eye(4)
        for i in range(5):
            manual = manual @ locals_[i]
            assert np.allclose(chained[i], manual)

    def test_batch_matmul_chain_batched_leading_dim(self, rng):
        locals_ = rng.normal(size=(2, 4, 4, 4))
        out = tf.batch_matmul_chain(locals_)
        assert out.shape == (2, 4, 4, 4)
        assert np.allclose(out[0, 0], locals_[0, 0])
