"""Tests for the generic (non-DH) chain."""

import math

import numpy as np
import pytest

from repro.kinematics import transforms as tf
from repro.kinematics.generic import GenericChain, GenericJoint, GenericJointType
from repro.kinematics.joint import JointLimits


def z_revolute(xyz=(0, 0, 0), axis=(0, 0, 1), name=""):
    return GenericJoint(origin=tf.trans(*xyz), axis=np.array(axis), name=name)


@pytest.fixture
def planar_generic():
    """Two 0.5 m links rotating about z — same geometry as planar_chain(2, 1.0)
    but expressed generically (origin offsets instead of DH a-parameters)."""
    return GenericChain(
        [
            z_revolute(name="j0"),
            z_revolute(xyz=(0.5, 0, 0), name="j1"),
        ],
        tool=tf.trans_x(0.5),
        name="generic-planar",
    )


@pytest.fixture
def spatial_generic(rng):
    """A 6-DOF chain with arbitrary (non-principal) axes."""
    joints = []
    for i in range(6):
        axis = rng.normal(size=3)
        origin = tf.homogeneous(tf.random_rotation(rng), 0.2 * rng.normal(size=3))
        joints.append(GenericJoint(origin=origin, axis=axis, name=f"g{i}"))
    return GenericChain(joints, name="generic-spatial")


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GenericChain([])

    def test_rejects_all_fixed(self):
        fixed = GenericJoint(origin=np.eye(4), joint_type=GenericJointType.FIXED)
        with pytest.raises(ValueError):
            GenericChain([fixed])

    def test_rejects_zero_axis(self):
        with pytest.raises(ValueError):
            GenericJoint(origin=np.eye(4), axis=np.zeros(3))

    def test_rejects_bad_origin(self):
        with pytest.raises(ValueError):
            GenericJoint(origin=np.eye(3))

    def test_axis_normalised(self):
        joint = GenericJoint(origin=np.eye(4), axis=np.array([0.0, 0.0, 5.0]))
        assert np.allclose(joint.axis, [0, 0, 1])

    def test_fixed_joints_consume_no_dof(self):
        chain = GenericChain(
            [
                z_revolute(),
                GenericJoint(
                    origin=tf.trans_x(0.3), joint_type=GenericJointType.FIXED
                ),
                z_revolute(),
            ]
        )
        assert chain.dof == 2
        assert chain.n_structural_joints == 3


class TestForwardKinematics:
    def test_planar_geometry(self, planar_generic):
        assert np.allclose(
            planar_generic.end_position(np.zeros(2)), [1.0, 0.0, 0.0], atol=1e-12
        )
        p = planar_generic.end_position(np.array([math.pi / 2, 0.0]))
        assert np.allclose(p, [0.0, 1.0, 0.0], atol=1e-12)

    def test_matches_dh_planar_chain(self, rng):
        """The generic formulation must agree with the DH one on a chain both
        can express."""
        from repro.kinematics.robots import planar_chain

        dh = planar_chain(3, total_reach=0.9)
        generic = GenericChain(
            [
                z_revolute(),
                z_revolute(xyz=(0.3, 0, 0)),
                z_revolute(xyz=(0.3, 0, 0)),
            ],
            tool=tf.trans_x(0.3),
        )
        for _ in range(10):
            q = dh.random_configuration(rng)
            assert np.allclose(
                dh.end_position(q), generic.end_position(q), atol=1e-10
            )

    def test_fk_is_rigid(self, spatial_generic, rng):
        q = spatial_generic.random_configuration(rng)
        assert tf.is_transform(spatial_generic.fk(q), tol=1e-8)

    def test_prismatic_motion(self):
        slider = GenericJoint(
            origin=np.eye(4),
            axis=np.array([0.0, 1.0, 0.0]),
            joint_type=GenericJointType.PRISMATIC,
            limits=JointLimits(0.0, 2.0),
        )
        chain = GenericChain([slider])
        p0 = chain.end_position(np.array([0.0]))
        p1 = chain.end_position(np.array([1.2]))
        assert np.allclose(p1 - p0, [0.0, 1.2, 0.0], atol=1e-12)

    def test_arbitrary_axis_rotation(self):
        axis = np.array([1.0, 1.0, 0.0]) / math.sqrt(2.0)
        joint = GenericJoint(origin=np.eye(4), axis=axis)
        chain = GenericChain([joint], tool=tf.trans_z(1.0))
        pose = chain.fk(np.array([0.7]))
        expected_rot = tf.axis_angle_to_rotation(axis, 0.7)
        assert np.allclose(pose[:3, :3], expected_rot, atol=1e-12)

    def test_batch_matches_scalar(self, spatial_generic, rng):
        qs = np.stack([spatial_generic.random_configuration(rng) for _ in range(7)])
        batched = spatial_generic.end_positions_batch(qs)
        for i in range(7):
            assert np.allclose(
                batched[i], spatial_generic.end_position(qs[i]), atol=1e-10
            )

    def test_batch_with_fixed_joints(self, rng):
        chain = GenericChain(
            [
                z_revolute(),
                GenericJoint(origin=tf.trans_x(0.4), joint_type="fixed"),
                z_revolute(axis=(0, 1, 0)),
            ],
            tool=tf.trans_x(0.2),
        )
        qs = np.stack([chain.random_configuration(rng) for _ in range(4)])
        batched = chain.end_positions_batch(qs)
        for i in range(4):
            assert np.allclose(batched[i], chain.end_position(qs[i]), atol=1e-10)

    def test_wrong_q_shape(self, planar_generic):
        with pytest.raises(ValueError):
            planar_generic.end_position(np.zeros(3))


class TestJacobian:
    def test_matches_finite_differences(self, spatial_generic, rng):
        eps = 1e-7
        for _ in range(5):
            q = spatial_generic.random_configuration(rng)
            analytic = spatial_generic.jacobian_position(q)
            numeric = np.empty_like(analytic)
            for i in range(spatial_generic.dof):
                dq = np.zeros(spatial_generic.dof)
                dq[i] = eps
                numeric[:, i] = (
                    spatial_generic.end_position(q + dq)
                    - spatial_generic.end_position(q - dq)
                ) / (2 * eps)
            assert np.allclose(analytic, numeric, atol=1e-6)

    def test_prismatic_column_is_axis(self):
        slider = GenericJoint(
            origin=tf.rot_x(0.4),
            axis=np.array([0.0, 0.0, 1.0]),
            joint_type=GenericJointType.PRISMATIC,
            limits=JointLimits(0.0, 1.0),
        )
        chain = GenericChain([slider], tool=tf.trans_x(0.2))
        jac = chain.jacobian_position(np.array([0.3]))
        world_axis = tf.rot_x(0.4)[:3, :3] @ np.array([0, 0, 1.0])
        assert np.allclose(jac[:, 0], world_axis, atol=1e-12)

    def test_full_jacobian_angular_rows(self, spatial_generic, rng):
        q = spatial_generic.random_configuration(rng)
        full = spatial_generic.jacobian(q)
        assert full.shape == (6, 6)
        assert np.allclose(np.linalg.norm(full[3:], axis=0), 1.0, atol=1e-10)


class TestSolverCompatibility:
    def test_quick_ik_solves_generic_chain(self, rng):
        from repro.core.quick_ik import QuickIKSolver
        from repro.core.result import SolverConfig

        joints = []
        for i in range(10):
            axis = (0, 0, 1) if i % 2 == 0 else (0, 1, 0)
            joints.append(z_revolute(xyz=(0.12, 0, 0), axis=axis, name=f"s{i}"))
        chain = GenericChain(joints, tool=tf.trans_x(0.12))
        solver = QuickIKSolver(chain, config=SolverConfig(max_iterations=3000))
        target = chain.end_position(chain.random_configuration(rng))
        result = solver.solve(target, rng=rng)
        assert result.converged

    def test_jt_classic_gain_works(self, spatial_generic):
        from repro.solvers.jacobian_transpose import classic_transpose_gain

        gain = classic_transpose_gain(spatial_generic)
        assert gain > 0.0

    def test_classic_gain_is_stable_bound(self, spatial_generic, rng):
        from repro.solvers.jacobian_transpose import classic_transpose_gain

        gain = classic_transpose_gain(spatial_generic)
        for _ in range(30):
            jac = spatial_generic.jacobian_position(
                spatial_generic.random_configuration(rng)
            )
            sigma = np.linalg.svd(jac, compute_uv=False)[0]
            assert gain * sigma**2 < 2.0

    def test_ikacc_simulates_generic_chain(self, rng):
        from repro.ikacc.accelerator import IKAccSimulator

        joints = [
            z_revolute(xyz=(0.15, 0, 0), axis=(0, 0, 1) if i % 2 else (0, 1, 0))
            for i in range(8)
        ]
        chain = GenericChain(joints, tool=tf.trans_x(0.15))
        sim = IKAccSimulator(chain)
        target = chain.end_position(chain.random_configuration(rng))
        result = sim.solve(target, rng=rng)
        assert result.converged


class TestDtype:
    def test_astype_float32(self, spatial_generic, rng):
        chain32 = spatial_generic.astype(np.float32)
        q = spatial_generic.random_configuration(rng)
        p32 = chain32.end_position(q)
        assert p32.dtype == np.float32
        assert np.linalg.norm(
            p32.astype(float) - spatial_generic.end_position(q)
        ) < 1e-5
