#!/usr/bin/env sh
# Lint gate: ruff over the configured paths (config in pyproject.toml).
#
# Usage: scripts/lint.sh [--fix]
#
# Exits non-zero on lint findings.  In environments without ruff installed
# (the offline test image ships only numpy + pytest) the gate degrades to a
# skip with a warning rather than failing the build; CI images that do have
# ruff enforce it.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    RUFF=ruff
elif python -c "import ruff" >/dev/null 2>&1; then
    RUFF="python -m ruff"
else
    echo "lint: ruff not installed; skipping (pip install ruff to enforce)" >&2
    exit 0
fi

if [ "${1:-}" = "--fix" ]; then
    exec $RUFF check --fix src tests benchmarks examples
fi
exec $RUFF check src tests benchmarks examples
