#!/usr/bin/env python
"""Regenerate (or verify) the golden telemetry trace fixture.

The fixture ``tests/conformance/data/golden_trace.jsonl`` pins the JSONL
trace schema; the workload that produces it lives next to the tests that
consume it (``tests.conformance.test_trace_golden.generate_trace``), and
this script is the one supported way to refresh it::

    python scripts/regen_golden_trace.py            # rewrite the fixture
    python scripts/regen_golden_trace.py --check    # verify, exit 1 on drift

``--check`` regenerates into a temp file and compares against the committed
fixture: the event sequence and every non-timing field must match exactly
(wall-clock fields — ``t`` / ``wall_time`` / ``phase_seconds`` — are noise
by design).  CI and the conformance tier run this mode, so a schema change
that forgets to refresh the fixture fails loudly with a field-level diff.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
for entry in (str(REPO / "src"), str(REPO)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.telemetry import read_jsonl_trace  # noqa: E402
from tests.conformance.test_trace_golden import (  # noqa: E402
    GOLDEN,
    TIMING_FIELDS,
    generate_trace,
)


def _drift(golden: list[dict], fresh: list[dict]) -> list[str]:
    """Human-readable list of non-timing differences (empty == identical)."""
    problems: list[str] = []
    if len(golden) != len(fresh):
        problems.append(
            f"event count: committed {len(golden)}, regenerated {len(fresh)}"
        )
    for i, (a, b) in enumerate(zip(golden, fresh)):
        keys_a, keys_b = set(a) - TIMING_FIELDS, set(b) - TIMING_FIELDS
        if keys_a != keys_b:
            problems.append(
                f"event {i} ({a.get('event')}): key set differs "
                f"({sorted(keys_a ^ keys_b)})"
            )
            continue
        for key in sorted(keys_a):
            if a[key] != b[key]:
                problems.append(
                    f"event {i} ({a.get('event')}): field {key!r} "
                    f"committed={a[key]!r} regenerated={b[key]!r}"
                )
    return problems


def check() -> int:
    if not GOLDEN.exists():
        print(f"missing fixture: {GOLDEN}", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory() as tmp:
        fresh_path = Path(tmp) / "trace.jsonl"
        generate_trace(fresh_path)
        problems = _drift(
            read_jsonl_trace(GOLDEN), read_jsonl_trace(fresh_path)
        )
    if problems:
        print(f"golden trace drifted from {GOLDEN}:", file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        if len(problems) > 20:
            print(f"  ... and {len(problems) - 20} more", file=sys.stderr)
        print(
            "if the schema change is intentional, refresh the fixture: "
            "python scripts/regen_golden_trace.py", file=sys.stderr,
        )
        return 1
    print(f"{GOLDEN.relative_to(REPO)} matches a fresh regeneration")
    return 0


def regenerate() -> int:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    generate_trace(GOLDEN)
    events = read_jsonl_trace(GOLDEN)
    print(
        f"regenerated {GOLDEN.relative_to(REPO)} ({len(events)} events); "
        "commit the diff — the diff is the schema-change review"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed fixture instead of rewriting it",
    )
    args = parser.parse_args(argv)
    return check() if args.check else regenerate()


if __name__ == "__main__":
    sys.exit(main())
