"""Warm-start seed cache: reuse nearby solutions as initial configurations.

IKSel (arXiv:2503.22234) shows seed quality dominates iteration count; an
online server sees streams of *correlated* targets (trajectories, repeated
poses), so the solution of the nearest previously-served target is usually a
far better ``q0`` than a random draw.

The cache is keyed per robot by a **parameter fingerprint** — a digest of
every chain array an FK result depends on, the same invalidation discipline
as the PR-4 vectorized prefix cache: mutate a link length in place and the
fingerprint changes, so stale solutions for the old geometry are simply
never consulted (and are evicted by capacity pressure).  Entries live in a
bounded FIFO ring per robot.

Warm starting trades bit-comparability with offline solves for iteration
count, so the server only consults the cache when asked
(``warm_start=True``); recording successful solves is unconditional and
costs one small copy per converged result.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

__all__ = ["chain_fingerprint", "SeedCache", "SeedCacheStats"]

#: Default per-robot entry capacity.
DEFAULT_CAPACITY = 256

#: Bound on distinct robot fingerprints tracked before the least recently
#: used robot's entries are dropped (a server that churns through generated
#: chains must not grow without bound).
DEFAULT_MAX_ROBOTS = 32


def chain_fingerprint(chain) -> bytes:
    """Digest of every chain parameter array an IK solution depends on.

    Mirrors the vectorized kernels' ``_chain_fingerprint``: convention,
    dtype and the raw bytes of the offset / mask / constant-transform /
    base / tool arrays.  In-place mutation of any of them changes the
    digest, which is what invalidates cached solutions for the old
    geometry.
    """
    h = hashlib.sha1()
    h.update(chain.convention.encode())
    h.update(str(chain.dtype).encode())
    for arr in (
        chain._theta_offset,
        chain._d_offset,
        chain._revolute_mask,
        chain._const,
        chain.base,
        chain.tool,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.digest()


@dataclass
class SeedCacheStats:
    """Hit/miss accounting for one :class:`SeedCache`."""

    hits: int = 0
    misses: int = 0
    records: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "records": self.records,
            "hit_rate": self.hit_rate,
        }


class _RobotEntries:
    """Bounded FIFO of (target, solution) pairs for one robot fingerprint."""

    def __init__(self, capacity: int) -> None:
        self.targets: deque[np.ndarray] = deque(maxlen=capacity)
        self.solutions: deque[np.ndarray] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self.targets)

    def add(self, target: np.ndarray, q: np.ndarray) -> None:
        self.targets.append(target)
        self.solutions.append(q)

    def nearest(
        self, target: np.ndarray, max_distance: float | None
    ) -> np.ndarray | None:
        if not self.targets:
            return None
        stacked = np.stack(self.targets)
        d2 = np.sum((stacked - target) ** 2, axis=1)
        best = int(np.argmin(d2))
        if max_distance is not None and d2[best] > max_distance**2:
            return None
        return self.solutions[best]


class SeedCache:
    """Nearest-target warm-start store, keyed per robot fingerprint.

    Not thread-safe on its own; the server serialises access under its
    queue lock.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_robots: int = DEFAULT_MAX_ROBOTS,
        max_distance: float | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_robots < 1:
            raise ValueError("max_robots must be >= 1")
        if max_distance is not None and max_distance < 0:
            raise ValueError("max_distance must be >= 0 (or None)")
        self.capacity = int(capacity)
        self.max_robots = int(max_robots)
        self.max_distance = max_distance
        self.stats = SeedCacheStats()
        self._robots: OrderedDict[bytes, _RobotEntries] = OrderedDict()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._robots.values())

    def _entries(self, fingerprint: bytes) -> _RobotEntries:
        entries = self._robots.get(fingerprint)
        if entries is None:
            entries = _RobotEntries(self.capacity)
            self._robots[fingerprint] = entries
            while len(self._robots) > self.max_robots:
                self._robots.popitem(last=False)
        else:
            self._robots.move_to_end(fingerprint)
        return entries

    def record(self, chain, target: np.ndarray, q: np.ndarray) -> None:
        """Store a solved (target, q) pair for ``chain``'s current geometry."""
        self._entries(chain_fingerprint(chain)).add(
            np.asarray(target, dtype=float).copy(),
            np.asarray(q, dtype=float).copy(),
        )
        self.stats.records += 1

    def lookup(self, chain, target: np.ndarray) -> np.ndarray | None:
        """The solution of the nearest cached target, or ``None`` on a miss.

        The fingerprint is recomputed per lookup, so a chain mutated in
        place since its solutions were recorded simply misses — stale
        geometry is never warm-started from.
        """
        entries = self._robots.get(chain_fingerprint(chain))
        q = (
            entries.nearest(np.asarray(target, dtype=float), self.max_distance)
            if entries is not None
            else None
        )
        if q is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return q.copy()

    def invalidate(self) -> None:
        """Drop every entry (stats are kept)."""
        self._robots.clear()
