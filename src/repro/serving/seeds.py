"""Warm-start seed cache: ranked reuse of nearby solutions as ``q0``.

IKSel (arXiv:2503.22234) shows seed quality dominates iteration count; an
online server sees streams of *correlated* targets (trajectories, repeated
poses), so the solution of a nearby previously-served target is usually a
far better ``q0`` than a random draw.

Seed **selection** follows IKSel's shape rather than plain nearest-neighbour
lookup: the ``k`` nearest cached targets become candidates, each candidate
is scored — workspace distance (the dominant predictor of remaining
iterations) plus a joint-limit-proximity penalty (a seed parked against its
limits starts in the clamped/degenerate region and converges worse than its
distance suggests) — and the best score wins.  Ties break deterministically
toward the **most recently recorded** candidate, which favours trajectory
locality (the freshest solution on a track is the closest in time, hence
usually in configuration space too).

The cache is keyed per robot by a **parameter fingerprint** — a digest of
every chain array an FK result depends on, the same invalidation discipline
as the PR-4 vectorized prefix cache: mutate a link length in place and the
fingerprint changes, so stale solutions for the old geometry are simply
never consulted (and are evicted by capacity pressure).  Entries live in a
bounded FIFO ring per robot.

Warm starting trades bit-comparability with offline solves for iteration
count; the server consults the cache by default (``warm_start=True``,
overridable per request) and records every converged solve at the cost of
one small copy.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

__all__ = ["chain_fingerprint", "SeedCache", "SeedCacheStats"]

#: Default per-robot entry capacity.
DEFAULT_CAPACITY = 256

#: Bound on distinct robot fingerprints tracked before the least recently
#: used robot's entries are dropped (a server that churns through generated
#: chains must not grow without bound).
DEFAULT_MAX_ROBOTS = 32

#: Candidate pool size for ranked selection: the k nearest cached targets
#: are scored, not just the single nearest.
DEFAULT_K = 8

#: Weight of the joint-limit-proximity penalty relative to workspace
#: distance (metres of equivalent distance for a seed sitting exactly on a
#: limit).  Small by design: distance dominates, the penalty only breaks
#: near-ties away from clamped seeds.
DEFAULT_LIMIT_PENALTY = 0.05


def chain_fingerprint(chain) -> bytes:
    """Digest of every chain parameter array an IK solution depends on.

    Mirrors the vectorized kernels' ``_chain_fingerprint``: convention,
    dtype and the raw bytes of the offset / mask / constant-transform /
    base / tool arrays.  In-place mutation of any of them changes the
    digest, which is what invalidates cached solutions for the old
    geometry.
    """
    h = hashlib.sha1()
    h.update(chain.convention.encode())
    h.update(str(chain.dtype).encode())
    for arr in (
        chain._theta_offset,
        chain._d_offset,
        chain._revolute_mask,
        chain._const,
        chain.base,
        chain.tool,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.digest()


@dataclass
class SeedCacheStats:
    """Hit/miss accounting for one :class:`SeedCache`."""

    hits: int = 0
    misses: int = 0
    records: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    def to_dict(self) -> dict:
        rate = self.hit_rate
        return {
            "hits": self.hits,
            "misses": self.misses,
            "records": self.records,
            # None, not NaN: the snapshot must survive strict JSON even
            # before the first lookup.
            "hit_rate": rate if np.isfinite(rate) else None,
        }


class _RobotEntries:
    """Bounded FIFO of (target, solution) pairs for one robot fingerprint."""

    def __init__(self, capacity: int) -> None:
        self.targets: deque[np.ndarray] = deque(maxlen=capacity)
        self.solutions: deque[np.ndarray] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self.targets)

    def add(self, target: np.ndarray, q: np.ndarray) -> None:
        self.targets.append(target)
        self.solutions.append(q)

    def select(
        self,
        target: np.ndarray,
        k: int,
        max_distance: float | None,
        limit_penalty: float,
        lower: np.ndarray | None,
        upper: np.ndarray | None,
    ) -> np.ndarray | None:
        """IKSel-style ranked selection over the ``k`` nearest candidates.

        Candidates are the ``k`` cached targets nearest ``target`` (within
        ``max_distance`` when set); each is scored ``distance +
        limit_penalty * limit_proximity(q)`` and the minimum wins.  Exactly
        tied scores resolve toward the most recently recorded candidate
        (trajectory locality), which also makes selection deterministic for
        duplicated targets.
        """
        if not self.targets:
            return None
        stacked = np.stack(self.targets)
        d2 = np.sum((stacked - target) ** 2, axis=1)
        finite = np.isfinite(d2)
        if max_distance is not None:
            finite &= d2 <= max_distance**2
        (eligible,) = np.nonzero(finite)
        if eligible.size == 0:
            return None
        if eligible.size > k:
            # k nearest among the eligible; order within the pool does not
            # matter — scoring re-ranks it.
            nearest = np.argpartition(d2[eligible], k - 1)[:k]
            eligible = eligible[nearest]
        distance = np.sqrt(d2[eligible])
        score = distance.copy()
        if limit_penalty > 0.0 and lower is not None and upper is not None:
            qs = np.stack([self.solutions[int(i)] for i in eligible])
            score = score + limit_penalty * _limit_proximity(qs, lower, upper)
        # Most recent on ties: entries index in insertion order, so among
        # equal scores the largest cache index wins.
        best_score = score.min()
        tied = eligible[score <= best_score]
        return self.solutions[int(tied.max())]


def _limit_proximity(
    qs: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Mean squared normalised displacement from each joint's mid-range.

    0 for a perfectly centred configuration, 1 for one pinned to its limits.
    Joints with non-finite (unbounded) limits contribute 0.
    """
    mid = 0.5 * (lower + upper)
    half = 0.5 * (upper - lower)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalised = (qs - mid) / half
    normalised = np.where(np.isfinite(normalised), normalised, 0.0)
    return np.mean(np.clip(normalised, -1.0, 1.0) ** 2, axis=-1)


class SeedCache:
    """Ranked warm-start store, keyed per robot fingerprint.

    Not thread-safe on its own; the server serialises access under its
    queue lock.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_robots: int = DEFAULT_MAX_ROBOTS,
        max_distance: float | None = None,
        k: int = DEFAULT_K,
        limit_penalty: float = DEFAULT_LIMIT_PENALTY,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_robots < 1:
            raise ValueError("max_robots must be >= 1")
        if max_distance is not None and max_distance < 0:
            raise ValueError("max_distance must be >= 0 (or None)")
        if k < 1:
            raise ValueError("k must be >= 1")
        if limit_penalty < 0:
            raise ValueError("limit_penalty must be >= 0")
        self.capacity = int(capacity)
        self.max_robots = int(max_robots)
        self.max_distance = max_distance
        self.k = int(k)
        self.limit_penalty = float(limit_penalty)
        self.stats = SeedCacheStats()
        self._robots: OrderedDict[bytes, _RobotEntries] = OrderedDict()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._robots.values())

    def _entries(self, fingerprint: bytes) -> _RobotEntries:
        entries = self._robots.get(fingerprint)
        if entries is None:
            entries = _RobotEntries(self.capacity)
            self._robots[fingerprint] = entries
            while len(self._robots) > self.max_robots:
                self._robots.popitem(last=False)
        else:
            self._robots.move_to_end(fingerprint)
        return entries

    def record(self, chain, target: np.ndarray, q: np.ndarray) -> None:
        """Store a solved (target, q) pair for ``chain``'s current geometry."""
        self._entries(chain_fingerprint(chain)).add(
            np.asarray(target, dtype=float).copy(),
            np.asarray(q, dtype=float).copy(),
        )
        self.stats.records += 1

    def lookup(self, chain, target: np.ndarray) -> np.ndarray | None:
        """The best-ranked cached solution for ``target``, or ``None``.

        Ranking is IKSel-style over the ``k`` nearest cached targets (see
        :meth:`_RobotEntries.select`).  The fingerprint is recomputed per
        lookup, so a chain mutated in place since its solutions were
        recorded simply misses — stale geometry is never warm-started from.
        """
        entries = self._robots.get(chain_fingerprint(chain))
        q = (
            entries.select(
                np.asarray(target, dtype=float),
                self.k,
                self.max_distance,
                self.limit_penalty,
                getattr(chain, "lower_limits", None),
                getattr(chain, "upper_limits", None),
            )
            if entries is not None
            else None
        )
        if q is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return q.copy()

    def invalidate(self) -> None:
        """Drop every entry (stats are kept)."""
        self._robots.clear()
