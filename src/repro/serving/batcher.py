"""Micro-batching scheduler: coalesce compatible requests, flush on triggers.

Dynamic batching exactly as an inference stack does it: requests arrive one
at a time, get grouped by a **compatibility key** — same robot, solver,
convergence config and solver options, i.e. everything that must agree for
the problems to advance through one vectorized lock-step batch — and each
group flushes when either trigger fires:

* **size** — the group reached ``max_batch_size`` (a full group flushes
  immediately; larger backlogs are chunked into full batches);
* **age** — the group's *oldest* request has waited ``max_wait_s`` (bounded
  coalesce latency: a lone request is never held hostage waiting for
  batch-mates).

The batcher is deliberately single-threaded and clock-free — callers pass
``now`` explicitly — so the flush policy is unit-testable without timing
sleeps; :class:`~repro.serving.server.IKServer` owns the lock and the
worker thread.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

__all__ = ["GroupKey", "PendingEntry", "MicroBatch", "MicroBatcher"]


@dataclass(frozen=True)
class GroupKey:
    """What must match for two requests to share a lock-step batch.

    ``robot_key`` is the robot name (or object id for ad-hoc chain
    instances); ``config_key`` / ``options_key`` are stable renderings of
    the resolved :class:`~repro.core.result.SolverConfig` and the solver
    options dict.
    """

    robot_key: Any
    solver: str
    config_key: Any
    options_key: Any


@dataclass
class PendingEntry:
    """One admitted request waiting to be batched.

    Everything the executor needs is resolved at admission: the chain, the
    per-request initial configuration ``q0`` (seed draw, warm-start hit or
    explicit), the absolute ``expiry`` (monotonic seconds, ``None`` for no
    deadline) and the caller's future.
    """

    request: Any
    chain: Any
    key: GroupKey
    target: Any
    q0: Any
    future: Any
    enqueue_t: float
    expiry: float | None = None
    warm_started: bool = False


@dataclass
class MicroBatch:
    """One flushed group slice, ready for lock-step execution."""

    key: GroupKey
    entries: list[PendingEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class MicroBatcher:
    """Per-group FIFO queues with size/age flush triggers."""

    def __init__(self, max_batch_size: int, max_wait_s: float) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self._groups: dict[GroupKey, list[PendingEntry]] = {}
        self._pending = 0

    @property
    def pending_count(self) -> int:
        """Admitted-but-unflushed requests across all groups."""
        return self._pending

    def add(self, entry: PendingEntry) -> None:
        self._groups.setdefault(entry.key, []).append(entry)
        self._pending += 1

    # -- flush policy ----------------------------------------------------

    def _group_ready(self, entries: list[PendingEntry], now: float) -> bool:
        return (
            len(entries) >= self.max_batch_size
            or now - entries[0].enqueue_t >= self.max_wait_s
        )

    def has_ready(self, now: float) -> bool:
        """Would :meth:`pop_ready` return anything at time ``now``?"""
        return any(
            self._group_ready(entries, now)
            for entries in self._groups.values()
        )

    def next_flush_at(self) -> float | None:
        """Earliest monotonic time an age trigger fires (None when empty)."""
        oldest = [
            entries[0].enqueue_t + self.max_wait_s
            for entries in self._groups.values()
        ]
        return min(oldest) if oldest else None

    def pop_ready(self, now: float, force: bool = False) -> list[MicroBatch]:
        """Remove and return every batch due at ``now``.

        A group flushes when full (chunked to ``max_batch_size``) or when
        its oldest request aged out — an aged group flushes *entirely*
        (chunked), since its younger members would only age out moments
        later.  ``force=True`` drains everything (shutdown).  Batches come
        back oldest-first across groups so a drain completes in arrival
        order.
        """
        batches: list[MicroBatch] = []
        for key in list(self._groups):
            entries = self._groups[key]
            aged = force or now - entries[0].enqueue_t >= self.max_wait_s
            take = (
                len(entries) if aged
                else (len(entries) // self.max_batch_size) * self.max_batch_size
            )
            if take == 0:
                continue
            taken, rest = entries[:take], entries[take:]
            if rest:
                self._groups[key] = rest
            else:
                del self._groups[key]
            self._pending -= take
            for lo in range(0, take, self.max_batch_size):
                batches.append(MicroBatch(
                    key=key, entries=taken[lo:lo + self.max_batch_size]
                ))
        batches.sort(key=lambda b: b.entries[0].enqueue_t)
        return batches

    def drain(self) -> list[PendingEntry]:
        """Remove and return every pending entry, oldest first (no batching)."""
        entries = list(heapq.merge(
            *self._groups.values(), key=lambda e: e.enqueue_t
        ))
        self._groups.clear()
        self._pending = 0
        return entries
