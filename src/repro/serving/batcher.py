"""Micro-batching scheduler: coalesce compatible requests, flush on triggers.

Dynamic batching exactly as an inference stack does it: requests arrive one
at a time, get grouped by a **compatibility key** — same robot, solver,
convergence config and solver options, i.e. everything that must agree for
the problems to advance through one vectorized lock-step batch — and each
group flushes when either trigger fires:

* **size** — the group reached its effective batch size (a full group
  flushes immediately; larger backlogs are chunked into full batches);
* **age** — the group's *oldest* request has waited its effective wait
  (bounded coalesce latency: a lone request is never held hostage waiting
  for batch-mates).

With ``adaptive=True`` the *effective* size/wait per group are tuned from
an EWMA of that group's inter-arrival times instead of being the static
``max_batch_size`` / ``max_wait_s`` (which remain hard ceilings):

* a **slow** group (expected arrivals within the static wait window < the
  static batch size) shrinks its size trigger toward what will actually
  show up — a lone request on an idle group flushes immediately instead of
  idling out the full static wait;
* a **fast** group keeps the full batch size but caps its wait at ~1.5x
  the predicted fill time (floored at a quarter of the static wait), so a
  straggling partial batch is not held long after the burst that fed it
  ended.

The batcher is deliberately single-threaded and clock-free — arrival times
ride in on ``entry.enqueue_t`` and flush checks take ``now`` explicitly —
so the whole policy is unit-testable without timing sleeps;
:class:`~repro.serving.server.IKServer` owns the lock and the dispatch
threads.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any

__all__ = ["GroupKey", "PendingEntry", "MicroBatch", "MicroBatcher"]

#: EWMA smoothing factor for per-group inter-arrival times.
EWMA_ALPHA = 0.2

#: Adaptive wait slack: a fast group's effective wait is this multiple of
#: its predicted batch fill time (capped at the static ``max_wait_s``).
FILL_SLACK = 1.5

#: Floor on the adaptively shrunk wait, as a fraction of the static
#: ``max_wait_s``.  Guards against sub-millisecond inter-arrival estimates
#: (a same-thread burst) collapsing the age trigger to effectively zero and
#: splitting batches on scheduler hiccups.
WAIT_FLOOR_FRACTION = 0.25

#: Bound on group objects retained after their queue empties.  The
#: arrival-rate estimate must survive flushes (a group empties on *every*
#: flush — wiping it would reset adaptation each batch, and a slow group's
#: lone-request fast path would never engage), but a server churning
#: through ad-hoc chain instances must not grow without bound.
MAX_IDLE_GROUPS = 256


@dataclass(frozen=True)
class GroupKey:
    """What must match for two requests to share a lock-step batch.

    ``robot_key`` is the robot name (or object id for ad-hoc chain
    instances); ``config_key`` / ``options_key`` are stable renderings of
    the resolved :class:`~repro.core.result.SolverConfig` and the solver
    options dict.
    """

    robot_key: Any
    solver: str
    config_key: Any
    options_key: Any


@dataclass
class PendingEntry:
    """One admitted request waiting to be batched.

    Everything the executor needs is resolved at admission: the chain, the
    per-request initial configuration ``q0`` (seed draw, warm-start hit or
    explicit), the absolute ``expiry`` (monotonic seconds, ``None`` for no
    deadline) and the caller's future.
    """

    request: Any
    chain: Any
    key: GroupKey
    target: Any
    q0: Any
    future: Any
    enqueue_t: float
    expiry: float | None = None
    warm_started: bool = False


@dataclass
class MicroBatch:
    """One flushed group slice, ready for lock-step execution."""

    key: GroupKey
    entries: list[PendingEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class _Group:
    """One compatibility group's queue plus its arrival-rate estimate."""

    entries: list[PendingEntry] = field(default_factory=list)
    ewma_dt: float | None = None
    last_arrival_t: float | None = None

    def observe_arrival(self, t: float) -> None:
        if self.last_arrival_t is not None:
            dt = max(0.0, t - self.last_arrival_t)
            self.ewma_dt = (
                dt if self.ewma_dt is None
                else EWMA_ALPHA * dt + (1.0 - EWMA_ALPHA) * self.ewma_dt
            )
        self.last_arrival_t = t


class MicroBatcher:
    """Per-group FIFO queues with (optionally adaptive) flush triggers."""

    def __init__(
        self,
        max_batch_size: int,
        max_wait_s: float,
        adaptive: bool = False,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.adaptive = bool(adaptive)
        self._groups: dict[GroupKey, _Group] = {}
        self._pending = 0
        #: Flush-policy evaluations where the adaptive triggers deviated
        #: from the static config (the server mirrors this into its stats).
        self.adaptive_adjustments = 0

    @property
    def pending_count(self) -> int:
        """Admitted-but-unflushed requests across all groups."""
        return self._pending

    def add(self, entry: PendingEntry) -> None:
        group = self._groups.get(entry.key)
        if group is None:
            if len(self._groups) >= MAX_IDLE_GROUPS:
                self._evict_idle_groups()
            group = self._groups[entry.key] = _Group()
        group.entries.append(entry)
        group.observe_arrival(entry.enqueue_t)
        self._pending += 1

    # -- flush policy ----------------------------------------------------

    def effective_params(self, key: GroupKey) -> tuple[int, float]:
        """The (size, wait) triggers currently governing ``key``'s group.

        Static unless ``adaptive`` and the group has an inter-arrival
        estimate.  The static config is always a ceiling: adaptation only
        ever shrinks a trigger.
        """
        group = self._groups.get(key)
        if (
            not self.adaptive
            or group is None
            or group.ewma_dt is None
        ):
            return self.max_batch_size, self.max_wait_s
        dt = group.ewma_dt
        if dt <= 0.0:
            # Coincident arrivals: a burst far faster than the clock can
            # resolve — the static triggers are already optimal.
            return self.max_batch_size, self.max_wait_s
        expected = self.max_wait_s / dt  # arrivals within the static window
        size = max(1, min(self.max_batch_size, math.ceil(expected)))
        if size < self.max_batch_size:
            # Slow group: fewer arrivals than a full batch are expected
            # within the window, so flush once the predicted cohort is in
            # (a lone request on an idle group is size-ready immediately)
            # instead of idling out the static wait.
            return size, self.max_wait_s
        # Fast group: the batch will fill on size; cap how long a trailing
        # partial batch lingers after its feeding burst ends, floored so a
        # micro-burst's tiny inter-arrival estimate cannot collapse the
        # trigger to ~zero.
        wait = min(self.max_wait_s, max(
            FILL_SLACK * dt * size,
            WAIT_FLOOR_FRACTION * self.max_wait_s,
        ))
        return size, wait

    def _group_ready(self, key: GroupKey, group: _Group, now: float) -> bool:
        size, wait = self.effective_params(key)
        return (
            len(group.entries) >= size
            or now - group.entries[0].enqueue_t >= wait
        )

    def _statically_ready(self, group: _Group, now: float) -> bool:
        return (
            len(group.entries) >= self.max_batch_size
            or now - group.entries[0].enqueue_t >= self.max_wait_s
        )

    def has_ready(self, now: float) -> bool:
        """Would :meth:`pop_ready` return anything at time ``now``?"""
        return any(
            group.entries and self._group_ready(key, group, now)
            for key, group in self._groups.items()
        )

    def next_flush_at(self) -> float | None:
        """Earliest monotonic time an age trigger fires (None when empty)."""
        oldest = [
            group.entries[0].enqueue_t + self.effective_params(key)[1]
            for key, group in self._groups.items()
            if group.entries
        ]
        return min(oldest) if oldest else None

    def _evict_idle_groups(self) -> None:
        """Drop empty groups' rate state, oldest insertions first."""
        for key in [k for k, g in self._groups.items() if not g.entries]:
            del self._groups[key]
            if len(self._groups) < MAX_IDLE_GROUPS:
                return

    def _take(self, key: GroupKey, count: int) -> list[PendingEntry]:
        # The emptied group object is retained: its inter-arrival EWMA is
        # the adaptive policy's memory, and a group empties on every flush.
        group = self._groups[key]
        taken, group.entries = group.entries[:count], group.entries[count:]
        self._pending -= len(taken)
        return taken

    def pop_one(self, now: float, force: bool = False) -> MicroBatch | None:
        """Remove and return the single oldest due batch, or ``None``.

        The unit of work for one dispatch thread: each call takes at most
        ``max_batch_size`` entries from the due group whose head is oldest,
        so N concurrent dispatch loops drain the queue in arrival order
        without one loop grabbing the whole backlog.  ``force=True`` treats
        every non-empty group as due (shutdown drain).
        """
        best_key = None
        best_t = math.inf
        for key, group in self._groups.items():
            if not group.entries:
                continue
            if not force and not self._group_ready(key, group, now):
                continue
            head_t = group.entries[0].enqueue_t
            if head_t < best_t:
                best_key, best_t = key, head_t
        if best_key is None:
            return None
        if not force and not self._statically_ready(self._groups[best_key], now):
            self.adaptive_adjustments += 1
        return MicroBatch(
            key=best_key, entries=self._take(best_key, self.max_batch_size)
        )

    def pop_ready(self, now: float, force: bool = False) -> list[MicroBatch]:
        """Remove and return every batch due at ``now``.

        A group flushes when full (chunked to ``max_batch_size``) or when
        its oldest request aged out — an aged group flushes *entirely*
        (chunked), since its younger members would only age out moments
        later.  ``force=True`` drains everything (shutdown).  Batches come
        back oldest-first across groups so a drain completes in arrival
        order.
        """
        batches: list[MicroBatch] = []
        for key in list(self._groups):
            group = self._groups[key]
            entries = group.entries
            if not entries:
                continue
            size, wait = self.effective_params(key)
            aged = force or now - entries[0].enqueue_t >= wait
            take = len(entries) if aged else (len(entries) // size) * size
            if take == 0:
                continue
            if not force and not self._statically_ready(group, now):
                self.adaptive_adjustments += 1
            taken = self._take(key, take)
            for lo in range(0, take, self.max_batch_size):
                batches.append(MicroBatch(
                    key=key, entries=taken[lo:lo + self.max_batch_size]
                ))
        batches.sort(key=lambda b: b.entries[0].enqueue_t)
        return batches

    def drain(self) -> list[PendingEntry]:
        """Remove and return every pending entry, oldest first (no batching)."""
        entries = list(heapq.merge(
            *(group.entries for group in self._groups.values()),
            key=lambda e: e.enqueue_t,
        ))
        self._groups.clear()
        self._pending = 0
        return entries
