"""In-process IK serving with dynamic micro-batching (see docs/serving.md).

The online entry point to the solver stack: individual
:class:`SolveRequest`\\ s go in, per-request ``IKResult`` futures come out,
and in between a micro-batching scheduler coalesces compatible requests
into the vectorized lock-step batches PRs 1-4 built for the offline path.

Quickstart::

    from repro.serving import IKServer, ServerConfig, SolveRequest

    with IKServer(ServerConfig(max_batch_size=64, max_wait_ms=2.0)) as srv:
        future = srv.submit(SolveRequest("dadu-50dof", [0.4, 0.2, 0.6], seed=0))
        print(future.result().summary())

(or ``repro.api.serve(...)`` for the facade form.)
"""

from repro.serving.batcher import GroupKey, MicroBatch, MicroBatcher, PendingEntry
from repro.serving.loadgen import run_serve_bench
from repro.serving.request import (
    STAGE_SERVING,
    DeadlineExceeded,
    Overloaded,
    ServerClosed,
    ServingRejected,
    SloShed,
    SolveRequest,
)
from repro.serving.seeds import SeedCache, SeedCacheStats, chain_fingerprint
from repro.serving.server import IKServer, ServerConfig, ServingStats
from repro.serving.sessions import (
    SessionClosed,
    SessionConfig,
    SessionExpired,
    SessionLimit,
    SessionManager,
    SessionRejected,
    SessionStats,
    TrackingSession,
)

__all__ = [
    "IKServer",
    "ServerConfig",
    "ServingStats",
    "SolveRequest",
    "ServingRejected",
    "Overloaded",
    "DeadlineExceeded",
    "SloShed",
    "ServerClosed",
    "STAGE_SERVING",
    "SeedCache",
    "SeedCacheStats",
    "chain_fingerprint",
    "MicroBatcher",
    "MicroBatch",
    "GroupKey",
    "PendingEntry",
    "run_serve_bench",
    "SessionManager",
    "TrackingSession",
    "SessionConfig",
    "SessionStats",
    "SessionRejected",
    "SessionLimit",
    "SessionExpired",
    "SessionClosed",
]
