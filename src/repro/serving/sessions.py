"""Streaming trajectory sessions on top of :class:`~repro.serving.server.IKServer`.

A tracking client does not submit independent requests: it streams target
*ticks* along a trajectory, and the best seed for tick ``N`` is the solution
of tick ``N-1``.  This module gives that client a first-class handle:

* :class:`SessionManager` — opens/evicts sessions against one server:
  bounded session count (``max_sessions``), idle-expiry eviction
  (``idle_expiry_s``, checked lazily against an injectable clock so
  lifecycle logic is unit-testable without sleeps), aggregate stats.
* :class:`TrackingSession` — one client's stream.  ``tick(target)`` waits
  for the previous tick's result, carries its solution forward as the next
  explicit ``q0`` (the shared :func:`~repro.control.trajectory.next_seed`
  contract — an unconverged or non-finite result keeps the previous seed),
  and submits to the server.  The first tick falls back to the server's
  ranked :class:`~repro.serving.seeds.SeedCache`, then to the same seeded
  draw a direct ``api.solve(..., seed=s)`` performs.

Because every tick is admitted with an **explicit** ``q0`` resolved at the
session layer, a streamed session is bit-identical to an offline loop that
solves the same targets sequentially with warm-started seeds — invariant
across ``dispatch_workers`` counts and concurrent interleaved sessions
(``tests/serving/test_sessions.py`` pins exactly that equivalence).

Telemetry counters (through the standard tracer): ``serve_session_opened``
/ ``serve_session_closed`` / ``serve_session_expired`` /
``serve_session_rejected`` / ``serve_session_ticks`` /
``serve_session_warm_ticks`` / ``serve_session_cold_ticks``.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.control.trajectory import next_seed
from repro.serving.request import DEFAULT_SOLVER, ServingRejected, SolveRequest
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = [
    "SessionConfig",
    "SessionStats",
    "SessionRejected",
    "SessionLimit",
    "SessionExpired",
    "SessionClosed",
    "TrackingSession",
    "SessionManager",
]


class SessionRejected(ServingRejected):
    """Base class: the session layer refused an open or a tick."""

    kind = "session_rejected"


class SessionLimit(SessionRejected):
    """``max_sessions`` live sessions and none were idle-expirable."""

    kind = "session_limit"


class SessionExpired(SessionRejected):
    """The session idled past ``idle_expiry_s`` and was evicted."""

    kind = "session_expired"


class SessionClosed(SessionRejected):
    """The session (or its manager) was closed before this tick."""

    kind = "session_closed"


@dataclass(frozen=True)
class SessionConfig:
    """Policy knobs for one :class:`SessionManager`.

    Parameters
    ----------
    max_sessions:
        Bound on concurrently open sessions.  Opening past it first tries
        to evict idle-expired sessions; if none can be evicted the open is
        rejected with :class:`SessionLimit`.
    idle_expiry_s:
        A session untouched (no open/tick) for longer than this is
        evicted lazily — on the next manager interaction that looks at it.
        ``None`` disables idle expiry.
    """

    max_sessions: int = 64
    idle_expiry_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.idle_expiry_s is not None and self.idle_expiry_s <= 0:
            raise ValueError("idle_expiry_s must be positive (or None)")


@dataclass
class SessionStats:
    """Per-session accounting (strict-JSON-safe via :meth:`to_dict`)."""

    ticks: int = 0
    converged: int = 0
    warm_ticks: int = 0
    cold_ticks: int = 0
    warm_iterations: int = 0
    cold_iterations: int = 0
    rejected: int = 0

    @property
    def iterations(self) -> int:
        return self.warm_iterations + self.cold_iterations

    @property
    def mean_iterations(self) -> float | None:
        done = self.warm_ticks + self.cold_ticks
        return self.iterations / done if done else None

    @property
    def mean_warm_iterations(self) -> float | None:
        return (
            self.warm_iterations / self.warm_ticks if self.warm_ticks else None
        )

    @property
    def mean_cold_iterations(self) -> float | None:
        return (
            self.cold_iterations / self.cold_ticks if self.cold_ticks else None
        )

    @property
    def warm_reduction(self) -> float | None:
        """In-session iteration saving of chained vs cold-seeded ticks."""
        warm = self.mean_warm_iterations
        cold = self.mean_cold_iterations
        if warm is None or cold is None or cold <= 0:
            return None
        return 1.0 - warm / cold

    def to_dict(self) -> dict[str, Any]:
        return {
            "ticks": self.ticks,
            "converged": self.converged,
            "warm_ticks": self.warm_ticks,
            "cold_ticks": self.cold_ticks,
            "rejected": self.rejected,
            "mean_iterations": self.mean_iterations,
            "mean_warm_iterations": self.mean_warm_iterations,
            "mean_cold_iterations": self.mean_cold_iterations,
            "warm_reduction": self.warm_reduction,
        }


class TrackingSession:
    """One client's target stream against a shared server.

    Built by :meth:`SessionManager.open`; not constructed directly.  A
    session is a *sequential* stream: ``tick`` waits on the previous
    tick's future to resolve the warm-start seed before submitting, so
    per-session results are deterministic regardless of how the server
    batches or how many dispatch loops drain it.  Distinct sessions are
    independent and may tick concurrently from different threads.
    """

    def __init__(
        self,
        manager: "SessionManager",
        session_id: int,
        robot: Any,
        solver: str,
        seed: int | None,
        q0: np.ndarray | None,
        config: Any,
        tolerance: float | None,
        max_iterations: int | None,
        kernel: str | None,
        options: dict[str, Any] | None,
    ) -> None:
        self._manager = manager
        self.session_id = session_id
        self.robot = robot
        self.solver = solver
        self.seed = seed
        self._config = config
        self._tolerance = tolerance
        self._max_iterations = max_iterations
        self._kernel = kernel
        self._options = dict(options) if options else {}
        self._chain = manager.server._resolve_chain(robot)
        if q0 is not None:
            q0 = np.asarray(q0, dtype=float)
            if q0.shape != (self._chain.dof,):
                raise ValueError(
                    f"q0 must have shape ({self._chain.dof},), got {q0.shape}"
                )
            q0 = q0.copy()
        self._seed_q: np.ndarray | None = q0
        self._pending: concurrent.futures.Future | None = None
        self._lock = threading.Lock()
        self.stats = SessionStats()
        self.state = "open"  # open | closed | expired
        self.last_used = manager._now()

    # -- seed resolution -------------------------------------------------

    def _first_seed(self, target: np.ndarray, tr: Tracer) -> np.ndarray:
        """First-tick fallback: ranked cache hit, else the seeded draw."""
        cached = self._manager.server.warm_seed(self._chain, target)
        if cached is not None:
            if tr.enabled:
                tr.count("serve_cache_hits")
            return cached
        if tr.enabled:
            tr.count("serve_cache_misses")
        # Exactly the draw ``api.solve(..., seed=s)`` performs, so the
        # offline differential reference can reproduce tick 0 bit-for-bit.
        rng = np.random.default_rng(self.seed)
        return self._chain.random_configuration(rng)

    def _await_pending(self) -> None:
        """Fold the previous tick's result into the seed state."""
        pending, self._pending = self._pending, None
        if pending is None:
            return
        try:
            result = pending.result()
        except ServingRejected:
            # The tick was shed/expired server-side: the seed state is
            # unchanged — the next tick re-solves from the last good seed.
            self.stats.rejected += 1
            return
        self._seed_q = next_seed(result, self._seed_q)

    # -- streaming -------------------------------------------------------

    def tick(
        self, target: Any, deadline_s: float | None = None
    ) -> concurrent.futures.Future:
        """Submit the next target of this stream; returns its future.

        Blocks until the *previous* tick's result is available (that
        result is the warm-start seed), then admits the new tick with an
        explicit ``q0``.  Raises :class:`SessionExpired` /
        :class:`SessionClosed` when the session is no longer live, and
        propagates the server's admission taxonomy (``Overloaded`` etc.)
        unchanged.
        """
        manager = self._manager
        tr = manager._tracer()
        manager._touch(self, tr)
        target = np.asarray(target, dtype=float)
        with self._lock:
            self._await_pending()
            warm = self._seed_q is not None
            if not warm:
                self._seed_q = self._first_seed(target, tr)
            if tr.enabled:
                tr.count("serve_session_ticks")
                tr.count(
                    "serve_session_warm_ticks" if warm
                    else "serve_session_cold_ticks"
                )
            request = SolveRequest(
                robot=self.robot,
                target=target,
                solver=self.solver,
                q0=self._seed_q,
                config=self._config,
                tolerance=self._tolerance,
                max_iterations=self._max_iterations,
                kernel=self._kernel,
                deadline_s=deadline_s,
                options=dict(self._options),
            )
            try:
                future = manager.server.submit(request)
            except ServingRejected:
                self.stats.rejected += 1
                if tr.enabled:
                    tr.count("serve_session_rejected")
                raise
            self.stats.ticks += 1
            future.add_done_callback(self._observe(warm))
            self._pending = future
            return future

    def _observe(self, warm: bool) -> Callable:
        def _cb(future: concurrent.futures.Future) -> None:
            try:
                result = future.result()
            except BaseException:
                return
            self.stats.converged += int(result.converged)
            if warm:
                self.stats.warm_ticks += 1
                self.stats.warm_iterations += result.iterations
            else:
                self.stats.cold_ticks += 1
                self.stats.cold_iterations += result.iterations
        return _cb

    def drain(self) -> None:
        """Block until the last submitted tick has a result."""
        with self._lock:
            self._await_pending()

    def close(self) -> None:
        """Close this session (idempotent).

        An in-flight tick keeps its future — admitted work is never
        abandoned — but further ``tick`` calls raise
        :class:`SessionClosed`.
        """
        self._manager._close(self, "closed")

    @property
    def last_q(self) -> np.ndarray | None:
        """The current warm-start seed (last good solution), if any."""
        with self._lock:
            self._await_pending()
            return None if self._seed_q is None else self._seed_q.copy()

    def __repr__(self) -> str:
        return (
            f"TrackingSession(id={self.session_id}, robot={self.robot!r}, "
            f"solver={self.solver!r}, state={self.state!r}, "
            f"ticks={self.stats.ticks})"
        )


class SessionManager:
    """Bounded, idle-expiring registry of tracking sessions on one server.

    Parameters
    ----------
    server:
        The :class:`~repro.serving.server.IKServer` ticks are submitted to.
    config:
        :class:`SessionConfig` policy (bound + idle expiry).
    clock:
        Monotonic-seconds callable; injectable so expiry/eviction logic is
        testable without wall-clock sleeps.
    tracer:
        Telemetry sink for the ``serve_session_*`` counters; defaults to
        the server's tracer (falling back to the process-global one).
    """

    def __init__(
        self,
        server,
        config: SessionConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Tracer | None = None,
    ) -> None:
        self.server = server
        self.config = config or SessionConfig()
        self._clock = clock
        self._tracer_override = tracer
        self._lock = threading.Lock()
        self._sessions: dict[int, TrackingSession] = {}
        self._next_id = 0
        self.opened = 0
        self.expired = 0
        #: Accounting folded in from closed/expired sessions, so
        #: :meth:`stats` totals survive session churn.
        self._retired = SessionStats()

    # -- plumbing --------------------------------------------------------

    def _now(self) -> float:
        return float(self._clock())

    def _tracer(self) -> Tracer:
        if self._tracer_override is not None:
            return self._tracer_override
        server_tracer = getattr(self.server, "_tracer", None)
        return server_tracer if server_tracer is not None else get_tracer()

    def _expire_locked(self, now: float, tr: Tracer) -> "list[int]":
        """Evict every idle-expired session (caller holds the lock)."""
        if self.config.idle_expiry_s is None:
            return []
        evicted = [
            sid for sid, session in self._sessions.items()
            if now - session.last_used > self.config.idle_expiry_s
        ]
        for sid in evicted:
            session = self._sessions.pop(sid)
            session.state = "expired"
            self.expired += 1
            self._fold_retired(session)
            if tr.enabled:
                tr.count("serve_session_expired")
        return evicted

    def _fold_retired(self, session: TrackingSession) -> None:
        s, total = session.stats, self._retired
        total.ticks += s.ticks
        total.converged += s.converged
        total.warm_ticks += s.warm_ticks
        total.cold_ticks += s.cold_ticks
        total.warm_iterations += s.warm_iterations
        total.cold_iterations += s.cold_iterations
        total.rejected += s.rejected

    def _touch(self, session: TrackingSession, tr: Tracer) -> None:
        """Lazy liveness check + idle-timestamp refresh for one tick."""
        with self._lock:
            now = self._now()
            self._expire_locked(now, tr)
            if session.state == "expired":
                raise SessionExpired.from_request(
                    f"session {session.session_id} idled past "
                    f"{self.config.idle_expiry_s}s and was evicted",
                    session.solver,
                )
            if session.state != "open":
                raise SessionClosed.from_request(
                    f"session {session.session_id} is closed", session.solver
                )
            session.last_used = now

    def _close(self, session: TrackingSession, state: str) -> None:
        tr = self._tracer()
        with self._lock:
            if session.state != "open":
                return
            session.state = state
            self._sessions.pop(session.session_id, None)
            self._fold_retired(session)
            if tr.enabled:
                tr.count("serve_session_closed")

    # -- public API ------------------------------------------------------

    def open(
        self,
        robot: Any,
        solver: str = DEFAULT_SOLVER,
        seed: int | None = None,
        q0: np.ndarray | None = None,
        config: Any = None,
        tolerance: float | None = None,
        max_iterations: int | None = None,
        kernel: str | None = None,
        options: dict[str, Any] | None = None,
    ) -> TrackingSession:
        """Open a new tracking session.

        ``seed`` pins the first tick's cold draw (when neither ``q0`` nor
        a seed-cache hit provides a better start) exactly as
        ``api.solve(..., seed=s)`` would; ``q0`` pins the first seed
        explicitly.  The remaining keywords are the per-request solve
        policy every tick inherits.
        """
        tr = self._tracer()
        with self._lock:
            now = self._now()
            self._expire_locked(now, tr)
            if len(self._sessions) >= self.config.max_sessions:
                if tr.enabled:
                    tr.count("serve_session_rejected")
                raise SessionLimit.from_request(
                    f"{self.config.max_sessions} sessions already open",
                    solver,
                )
            session_id = self._next_id
            self._next_id += 1
            session = TrackingSession(
                self, session_id, robot, solver, seed, q0, config,
                tolerance, max_iterations, kernel, options,
            )
            self._sessions[session_id] = session
            self.opened += 1
            if tr.enabled:
                tr.count("serve_session_opened")
            return session

    def get(self, session_id: int) -> TrackingSession | None:
        """The live session with this id, or ``None``."""
        with self._lock:
            self._expire_locked(self._now(), self._tracer())
            return self._sessions.get(session_id)

    def expire_idle(self) -> "list[int]":
        """Eagerly evict idle-expired sessions; returns their ids."""
        with self._lock:
            return self._expire_locked(self._now(), self._tracer())

    def close_all(self) -> None:
        """Close every live session (their in-flight ticks keep futures)."""
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            self._close(session, "closed")

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict[str, Any]:
        """Aggregate session accounting, live + retired (strict-JSON-safe)."""
        with self._lock:
            sessions = list(self._sessions.values())
            opened, expired = self.opened, self.expired
            retired = self._retired
        total = SessionStats(**vars(retired))
        for session in sessions:
            s = session.stats
            total.ticks += s.ticks
            total.converged += s.converged
            total.warm_ticks += s.warm_ticks
            total.cold_ticks += s.cold_ticks
            total.warm_iterations += s.warm_iterations
            total.cold_iterations += s.cold_iterations
            total.rejected += s.rejected
        return {
            "opened": opened,
            "active": len(sessions),
            "expired": expired,
            **total.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"SessionManager(active={self.active_count}, "
            f"max_sessions={self.config.max_sessions}, "
            f"idle_expiry_s={self.config.idle_expiry_s})"
        )
