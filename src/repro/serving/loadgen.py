"""Open-loop load generator for the serving layer → ``BENCH_serving.json``.

Open-loop means arrivals are scheduled from a seeded Poisson process *before*
the run and submitted on that schedule regardless of how fast the server
drains — the standard way to measure a serving stack's latency under a
target offered load (a closed loop would self-throttle and hide queueing).

Two target workloads:

* ``"iid"`` — every request's target is an independent draw from the
  robot's reachable workspace (uncorrelated stream; the warm-start cache
  can only exploit coincidental proximity);
* ``"tracking"`` — ``tracks`` simulated clients each follow a smooth
  joint-space random walk, submitting the FK of their current
  configuration each tick, interleaved round-robin.  This is the
  trajectory-tracking shape real IK services see, and the workload where
  IKSel-style warm starting pays: each tick's best seed is the track's
  previous solution.
* ``"sessions"`` — the same interleaved random walks, but each track
  streams through a :class:`~repro.serving.sessions.TrackingSession`
  (``tracks`` sessions on one :class:`~repro.serving.sessions.
  SessionManager`), so every tick is admitted with an explicit ``q0``
  chained from that session's previous solution instead of relying on the
  server-side seed cache.  The payload gains a ``"sessions"`` section with
  the manager's aggregate stats and a cold per-tick baseline re-solve
  measuring the warm-chaining iteration reduction.

The payload records throughput, end-to-end latency percentiles measured
from each request's *scheduled* arrival, **scheduler lag** (how late the
loadgen actually submitted vs the schedule) and server-side latency
(measured from actual submission) separately so loadgen jitter is
distinguishable from server queueing, batch-occupancy and queue gauges
from :meth:`~repro.serving.server.IKServer.stats`, the rejection counts,
and — when warm starting — the measured mean-iteration reduction against a
cold-seed re-solve of the same requests.

Every value is strict-JSON-safe: undefined ratios are ``null``, never
``NaN``.

Run it via the CLI::

    python -m repro serve-bench --robot dadu-50dof --requests 300 \
        --rate 320 --workload tracking --dispatch-workers 4 \
        --out BENCH_serving.json
"""

from __future__ import annotations

import math
import time
from typing import Any

import numpy as np

from repro.api import resolve_robot
from repro.execution import ExecutionOptions, KernelSpec
from repro.serving.request import Overloaded, ServingRejected, SolveRequest
from repro.serving.server import IKServer, ServerConfig
from repro.serving.sessions import SessionConfig, SessionManager
from repro.telemetry.sinks import percentile

__all__ = ["run_serve_bench", "WORKLOADS"]

#: Latency percentiles recorded in the payload.
PERCENTILES = (50.0, 90.0, 99.0)

#: Target-stream shapes the loadgen can drive.
WORKLOADS = ("iid", "tracking", "sessions")

#: Simulated concurrent clients in the tracking workload.
DEFAULT_TRACKS = 8

#: Per-tick joint-space step (radians, std-dev) for tracking clients.
DEFAULT_TRACK_STEP = 0.05


def _reachable_targets(chain, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` reachable targets drawn from the robot's own workspace."""
    return np.stack([
        chain.end_position(chain.random_configuration(rng)) for _ in range(n)
    ])


def _tracking_targets(
    chain,
    n: int,
    rng: np.random.Generator,
    tracks: int = DEFAULT_TRACKS,
    step: float = DEFAULT_TRACK_STEP,
) -> np.ndarray:
    """``n`` targets from ``tracks`` interleaved joint-space random walks.

    Each simulated client holds a configuration, perturbs it by a small
    clamped Gaussian step per tick, and requests the FK of the result —
    reachable by construction, and smooth per client, so consecutive
    targets on one track are warm-start neighbours.
    """
    configs = [chain.random_configuration(rng) for _ in range(min(tracks, n))]
    targets = np.empty((n, 3), dtype=float)
    for i in range(n):
        track = i % len(configs)
        configs[track] = chain.clamp(
            configs[track] + rng.normal(0.0, step, size=chain.dof)
        )
        targets[i] = chain.end_position(configs[track])
    return targets


def _sample_stats(values: "list[float]") -> dict[str, Any]:
    """mean / percentiles / max of a latency-like sample (``None`` when empty)."""
    if not values:
        return {
            "mean": None, "max": None,
            **{f"p{q:g}": None for q in PERCENTILES},
        }
    return {
        "mean": float(np.mean(values)),
        **{f"p{q:g}": percentile(values, q) for q in PERCENTILES},
        "max": float(max(values)),
    }


def _json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (strict JSON)."""
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def run_serve_bench(
    robot: str = "dadu-50dof",
    solver: str = "JT-Speculation",
    requests: int = 200,
    rate_hz: float = 300.0,
    max_batch_size: int = 32,
    max_wait_ms: float = 5.0,
    max_queue: int = 4096,
    dispatch_workers: int = 1,
    adaptive: bool = True,
    workers: int | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    chunk: int | None = None,
    compaction: bool | None = None,
    on_error: str = "skip",
    tolerance: float | None = None,
    max_iterations: int | None = None,
    warm_start: bool = True,
    seed_k: int | None = None,
    workload: str = "iid",
    tracks: int = DEFAULT_TRACKS,
    cold_baseline: bool = True,
    deadline_s: float | None = None,
    seed: int = 2017,
    result_timeout_s: float = 300.0,
) -> dict[str, Any]:
    """Drive one open-loop run; returns the ``BENCH_serving.json`` payload.

    ``cold_baseline=True`` (with ``warm_start``) re-solves every completed
    request offline from its cold seeded draw after the serving run and
    records the mean-iteration reduction the warm-start policy delivered —
    the IKSel-style seed selection's acceptance measurement.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if workload not in WORKLOADS:
        raise ValueError(
            f"workload must be one of {WORKLOADS}, got {workload!r}"
        )

    chain = resolve_robot(robot)
    rng = np.random.default_rng(seed)
    sessions_mode = workload == "sessions"
    if workload in ("tracking", "sessions"):
        targets = _tracking_targets(chain, requests, rng, tracks=tracks)
    else:
        targets = _reachable_targets(chain, requests, rng)
    # Poisson arrivals at the offered rate, fixed before the run starts.
    arrivals = np.cumsum(rng.exponential(1.0 / rate_hz, size=requests))

    base = KernelSpec.coerce(kernel)
    if dtype is not None or chunk is not None:
        base = KernelSpec(
            name=base.name if base is not None else None,
            dtype=dtype if dtype is not None else (
                base.dtype if base is not None else None
            ),
            chunk=chunk if chunk is not None else (
                base.chunk if base is not None else None
            ),
        )
    options = ExecutionOptions(
        kernel=base,
        workers=workers,
        on_error=on_error,
        compaction=compaction,
    )
    config_kwargs: dict[str, Any] = {}
    if seed_k is not None:
        config_kwargs["seed_k"] = seed_k
    server = IKServer(ServerConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
        dispatch_workers=dispatch_workers,
        adaptive=adaptive,
        options=options,
        warm_start=warm_start,
        **config_kwargs,
    ))
    inflight: list[tuple[int, float, Any]] = []  # (index, scheduled_t, future)
    done_at: dict[int, float] = {}
    submitted_at: dict[int, float] = {}
    rejections: dict[str, int] = {}

    def _mark_done(index: int):
        def _cb(_future: Any) -> None:
            done_at[index] = time.monotonic()
        return _cb

    manager: SessionManager | None = None
    sessions: list = []
    with server:
        if sessions_mode:
            # One streaming session per simulated client.  Session j's
            # seed matches its first tick's global request index (j), so
            # the cold per-tick baseline below re-draws exactly the first
            # tick's fallback seed.
            manager = SessionManager(
                server,
                SessionConfig(
                    max_sessions=max(1, min(tracks, requests)),
                    idle_expiry_s=None,
                ),
            )
            sessions = [
                manager.open(
                    chain, solver=solver, seed=seed + 1 + j,
                    tolerance=tolerance, max_iterations=max_iterations,
                )
                for j in range(min(tracks, requests))
            ]
        t0 = time.monotonic()
        for i in range(requests):
            scheduled = t0 + float(arrivals[i])
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                submitted_at[i] = time.monotonic()
                if sessions_mode:
                    # tick() waits on the session's previous result (the
                    # warm-start chain), so a session stream is closed-loop
                    # per client while arrivals stay scheduled.
                    future = sessions[i % len(sessions)].tick(
                        targets[i], deadline_s=deadline_s
                    )
                else:
                    future = server.submit(SolveRequest(
                        robot=chain,
                        target=targets[i],
                        solver=solver,
                        seed=seed + 1 + i,
                        tolerance=tolerance,
                        max_iterations=max_iterations,
                        deadline_s=deadline_s,
                    ))
            except Overloaded as exc:
                # Open loop: an overloaded server drops, the client does
                # not retry — the drop rate is part of the measurement.
                rejections[exc.record.kind] = (
                    rejections.get(exc.record.kind, 0) + 1
                )
                continue
            future.add_done_callback(_mark_done(i))
            inflight.append((i, scheduled, future))

        latencies: list[float] = []
        server_latencies: list[float] = []
        scheduler_lags: list[float] = []
        iterations: list[int] = []
        completed_indices: list[int] = []
        converged = 0
        statuses: dict[str, int] = {}
        for i, scheduled, future in inflight:
            scheduler_lags.append(submitted_at[i] - scheduled)
            try:
                result = future.result(timeout=result_timeout_s)
            except ServingRejected as exc:
                rejections[exc.record.kind] = (
                    rejections.get(exc.record.kind, 0) + 1
                )
                continue
            finished = done_at.get(i, time.monotonic())
            latencies.append(finished - scheduled)
            server_latencies.append(finished - submitted_at[i])
            iterations.append(result.iterations)
            completed_indices.append(i)
            converged += int(result.converged)
            statuses[result.status] = statuses.get(result.status, 0) + 1
        session_stats = manager.stats() if manager is not None else None
        if manager is not None:
            manager.close_all()
        makespan = time.monotonic() - t0
    stats = server.stats()

    warm_payload: dict[str, Any] = {
        "enabled": warm_start,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "mean_iterations": (
            float(np.mean(iterations)) if iterations else None
        ),
    }
    if warm_start and cold_baseline and completed_indices and not sessions_mode:
        warm_payload["cold_baseline"] = _cold_baseline(
            chain, solver, targets, completed_indices, seed,
            tolerance, max_iterations, options, iterations,
        )

    sessions_payload: dict[str, Any] | None = None
    if sessions_mode:
        # The session acceptance measurement: mean iterations of the
        # streamed (warm-chained) ticks vs a cold per-tick re-solve of the
        # same targets from the seeded draws a session-less client would
        # have used.
        sessions_payload = {
            "count": len(sessions),
            "manager": session_stats,
            "mean_iterations": (
                float(np.mean(iterations)) if iterations else None
            ),
        }
        if cold_baseline and completed_indices:
            baseline = _cold_baseline(
                chain, solver, targets, completed_indices, seed,
                tolerance, max_iterations, options, iterations,
            )
            sessions_payload["cold_baseline"] = baseline
            sessions_payload["iteration_reduction"] = (
                baseline["iteration_reduction"]
            )

    completed = len(latencies)
    payload: dict[str, Any] = {
        "benchmark": "serving",
        "robot": chain.name,
        "dof": chain.dof,
        "solver": solver,
        "requests": requests,
        "offered_rate_hz": rate_hz,
        "workload": workload,
        "seed": seed,
        "config": {
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "max_queue": max_queue,
            "dispatch_workers": dispatch_workers,
            "adaptive": adaptive,
            "workers": workers,
            "kernel": kernel,
            "dtype": dtype,
            "chunk": chunk,
            "compaction": compaction,
            "on_error": on_error,
            "warm_start": warm_start,
            "seed_k": seed_k,
            "tracks": (
                tracks if workload in ("tracking", "sessions") else None
            ),
            "tolerance": tolerance,
            "max_iterations": max_iterations,
            "deadline_s": deadline_s,
        },
        "completed": completed,
        "converged": converged,
        "convergence_rate": (
            converged / completed if completed else None
        ),
        "rejections": rejections,
        "statuses": statuses,
        "makespan_s": makespan,
        "throughput_rps": completed / makespan if makespan > 0 else 0.0,
        "latency_s": _sample_stats(latencies),
        "server_latency_s": _sample_stats(server_latencies),
        "scheduler_lag_s": _sample_stats(scheduler_lags),
        "warm_start": warm_payload,
        "serving": stats.to_dict(),
        **({"sessions": sessions_payload} if sessions_payload else {}),
        "notes": (
            "open-loop seeded Poisson arrivals; latency_s is measured from "
            "each request's scheduled arrival (so it includes scheduler "
            "lag), server_latency_s from the actual submission, and "
            "scheduler_lag_s records the loadgen's own lateness — compare "
            "the two latency blocks to attribute queueing to the server "
            "vs the load generator. mean_occupancy > 1 demonstrates "
            "dynamic micro-batching coalesced concurrent requests."
        ),
    }
    return _json_safe(payload)


def _cold_baseline(
    chain,
    solver: str,
    targets: np.ndarray,
    completed_indices: "list[int]",
    seed: int,
    tolerance: float | None,
    max_iterations: int | None,
    options: ExecutionOptions,
    warm_iterations: "list[int]",
) -> dict[str, Any]:
    """Re-solve the completed requests from their cold seeded draws.

    Each request's cold ``q0`` is exactly the draw the server would have
    used with ``warm_start=False`` (``default_rng(request.seed)``), so the
    iteration delta isolates the seed policy from everything else.
    """
    from repro import api

    q0 = np.stack([
        chain.random_configuration(np.random.default_rng(seed + 1 + i))
        for i in completed_indices
    ])
    result = api.solve_batch(
        chain,
        targets[completed_indices],
        solver,
        q0=q0,
        tolerance=tolerance,
        max_iterations=max_iterations,
        options=options,
    )
    cold = [res.iterations for res in result]
    warm_mean = float(np.mean(warm_iterations))
    cold_mean = float(np.mean(cold))
    return {
        "mean_iterations": cold_mean,
        "warm_mean_iterations": warm_mean,
        "iteration_reduction": (
            1.0 - warm_mean / cold_mean if cold_mean > 0 else None
        ),
    }
