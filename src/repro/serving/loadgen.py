"""Open-loop load generator for the serving layer → ``BENCH_serving.json``.

Open-loop means arrivals are scheduled from a seeded Poisson process *before*
the run and submitted on that schedule regardless of how fast the server
drains — the standard way to measure a serving stack's latency under a
target offered load (a closed loop would self-throttle and hide queueing).

The payload records throughput, end-to-end latency percentiles (measured
from each request's *scheduled* arrival, so scheduler lag counts against
the server, not the client), batch-occupancy and queue gauges from
:meth:`~repro.serving.server.IKServer.stats`, and the rejection counts —
the acceptance gate for the serving PR is ``mean_occupancy > 1`` on the
50-DOF workload under concurrent load.

Run it via the CLI::

    python -m repro serve-bench --robot dadu-50dof --requests 200 \
        --rate 300 --out BENCH_serving.json
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.api import resolve_robot
from repro.execution import ExecutionOptions, KernelSpec
from repro.serving.request import Overloaded, ServingRejected, SolveRequest
from repro.serving.server import IKServer, ServerConfig
from repro.telemetry.sinks import percentile

__all__ = ["run_serve_bench"]

#: Latency percentiles recorded in the payload.
PERCENTILES = (50.0, 90.0, 99.0)


def _reachable_targets(chain, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` reachable targets drawn from the robot's own workspace."""
    return np.stack([
        chain.end_position(chain.random_configuration(rng)) for _ in range(n)
    ])


def run_serve_bench(
    robot: str = "dadu-50dof",
    solver: str = "JT-Speculation",
    requests: int = 200,
    rate_hz: float = 300.0,
    max_batch_size: int = 32,
    max_wait_ms: float = 5.0,
    max_queue: int = 4096,
    workers: int | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    chunk: int | None = None,
    compaction: bool | None = None,
    on_error: str = "skip",
    tolerance: float | None = None,
    max_iterations: int | None = None,
    warm_start: bool = False,
    deadline_s: float | None = None,
    seed: int = 2017,
    result_timeout_s: float = 300.0,
) -> dict[str, Any]:
    """Drive one open-loop run; returns the ``BENCH_serving.json`` payload."""
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")

    chain = resolve_robot(robot)
    rng = np.random.default_rng(seed)
    targets = _reachable_targets(chain, requests, rng)
    # Poisson arrivals at the offered rate, fixed before the run starts.
    arrivals = np.cumsum(rng.exponential(1.0 / rate_hz, size=requests))

    base = KernelSpec.coerce(kernel)
    if dtype is not None or chunk is not None:
        base = KernelSpec(
            name=base.name if base is not None else None,
            dtype=dtype if dtype is not None else (
                base.dtype if base is not None else None
            ),
            chunk=chunk if chunk is not None else (
                base.chunk if base is not None else None
            ),
        )
    options = ExecutionOptions(
        kernel=base,
        workers=workers,
        on_error=on_error,
        compaction=compaction,
    )
    server = IKServer(ServerConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
        options=options,
        warm_start=warm_start,
    ))
    inflight: list[tuple[int, float, Any]] = []  # (index, scheduled_t, future)
    done_at: dict[int, float] = {}
    rejections: dict[str, int] = {}

    def _mark_done(index: int):
        def _cb(_future: Any) -> None:
            done_at[index] = time.monotonic()
        return _cb

    with server:
        t0 = time.monotonic()
        for i in range(requests):
            scheduled = t0 + float(arrivals[i])
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            request = SolveRequest(
                robot=chain,
                target=targets[i],
                solver=solver,
                seed=seed + 1 + i,
                tolerance=tolerance,
                max_iterations=max_iterations,
                deadline_s=deadline_s,
            )
            try:
                future = server.submit(request)
            except Overloaded as exc:
                # Open loop: an overloaded server drops, the client does
                # not retry — the drop rate is part of the measurement.
                rejections[exc.record.kind] = (
                    rejections.get(exc.record.kind, 0) + 1
                )
                continue
            future.add_done_callback(_mark_done(i))
            inflight.append((i, scheduled, future))

        latencies: list[float] = []
        converged = 0
        statuses: dict[str, int] = {}
        for i, scheduled, future in inflight:
            try:
                result = future.result(timeout=result_timeout_s)
            except ServingRejected as exc:
                rejections[exc.record.kind] = (
                    rejections.get(exc.record.kind, 0) + 1
                )
                continue
            latencies.append(done_at.get(i, time.monotonic()) - scheduled)
            converged += int(result.converged)
            statuses[result.status] = statuses.get(result.status, 0) + 1
        makespan = time.monotonic() - t0
    stats = server.stats()

    completed = len(latencies)
    payload: dict[str, Any] = {
        "benchmark": "serving",
        "robot": chain.name,
        "dof": chain.dof,
        "solver": solver,
        "requests": requests,
        "offered_rate_hz": rate_hz,
        "seed": seed,
        "config": {
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "max_queue": max_queue,
            "workers": workers,
            "kernel": kernel,
            "dtype": dtype,
            "chunk": chunk,
            "compaction": compaction,
            "on_error": on_error,
            "warm_start": warm_start,
            "tolerance": tolerance,
            "max_iterations": max_iterations,
            "deadline_s": deadline_s,
        },
        "completed": completed,
        "converged": converged,
        "convergence_rate": (
            converged / completed if completed else float("nan")
        ),
        "rejections": rejections,
        "statuses": statuses,
        "makespan_s": makespan,
        "throughput_rps": completed / makespan if makespan > 0 else 0.0,
        "latency_s": {
            "mean": float(np.mean(latencies)) if latencies else float("nan"),
            **{f"p{q:g}": percentile(latencies, q) for q in PERCENTILES},
            "max": float(max(latencies)) if latencies else float("nan"),
        },
        "serving": stats.to_dict(),
        "notes": (
            "open-loop seeded Poisson arrivals; latency is measured from "
            "each request's scheduled arrival (scheduler lag counts "
            "against the server). mean_occupancy > 1 demonstrates dynamic "
            "micro-batching coalesced concurrent requests."
        ),
    }
    return payload
