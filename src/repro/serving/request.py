"""Request shape and rejection taxonomy for the in-process IK server.

A :class:`SolveRequest` is one user's IK problem plus everything
:func:`repro.api.solve` would have taken as keywords: the robot, the solver
name, the convergence config (or its common fields), a seed for the random
initial configuration, per-solver options, and a serving-only ``deadline_s``
latency budget.

Rejections are *structured*: every refusal carries a
:class:`~repro.resilience.report.FailureRecord` (the PR-3 failure shape, new
stage ``"serving"``), so a caller — or a ``FailureReport`` aggregating many
rejections — sees machine-readable ``stage``/``kind`` fields instead of
string-matching exception messages:

* :class:`Overloaded` — the bounded request queue is full (backpressure);
* :class:`DeadlineExceeded` — the latency budget expired, either at
  admission (``deadline_s <= 0``) or while the request waited in the queue;
* :class:`SloShed` — the budget had *not yet* expired at dispatch, but the
  server's execution-time estimate predicted the solve would finish past
  the deadline, so the request was shed instead of solved late (SLO-aware
  admission control; see ``ServerConfig.slo_shedding``);
* :class:`ServerClosed` — submitted to (or still pending in) a server that
  is shutting down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.resilience.report import FailureRecord

__all__ = [
    "SolveRequest",
    "ServingRejected",
    "Overloaded",
    "DeadlineExceeded",
    "SloShed",
    "ServerClosed",
    "STAGE_SERVING",
]

#: Pipeline stage tag for serving-layer failure records (extends the PR-3
#: guard / solver / watchdog / worker taxonomy).
STAGE_SERVING = "serving"

#: Default solver mirrors the facade (the paper's contribution).
DEFAULT_SOLVER = "JT-Speculation"


@dataclass
class SolveRequest:
    """One IK problem as an online request.

    Parameters
    ----------
    robot:
        Robot name (``"dadu-50dof"``, …) or a built
        :class:`~repro.kinematics.chain.KinematicChain`.  Requests for the
        same robot / solver / config coalesce into one batch.
    target:
        Target end-effector position (3-vector).
    solver:
        Any ``SOLVER_REGISTRY`` name (default: Quick-IK).
    q0:
        Optional explicit starting configuration (skips both the seed draw
        and the warm-start cache).
    seed:
        Seed for the random initial configuration.  A request with
        ``seed=s`` resolves the *same* ``q0`` a direct
        ``api.solve(robot, target, solver, seed=s)`` call would, which is
        what makes served results comparable one-to-one with offline solves.
    config / tolerance / max_iterations / kernel:
        Convergence policy, exactly as :func:`repro.api.solve` takes it
        (``config`` is mutually exclusive with the individual fields).
    deadline_s:
        Latency budget in seconds, measured from submission.  ``None``
        means no deadline; a non-positive budget is rejected at admission;
        a request whose budget expires while queued is completed
        exceptionally with :class:`DeadlineExceeded` instead of being
        solved late.
    warm_start:
        Tri-state: ``None`` inherits the server's policy, ``True``/``False``
        force the warm-start seed cache on/off for this request.  Warm
        starting replaces the seed draw with the cached solution of the
        nearest previously-served target (see
        :mod:`repro.serving.seeds`) — usually fewer iterations, but no
        longer bit-comparable to the equivalent offline solve.
    options:
        Per-solver options (e.g. ``{"speculations": 64}``), validated by
        the registry factory exactly like the facade's ``**options``.
    """

    robot: Any
    target: Any
    solver: str = DEFAULT_SOLVER
    q0: Any = None
    seed: int | None = None
    config: Any = None
    tolerance: float | None = None
    max_iterations: int | None = None
    kernel: str | None = None
    deadline_s: float | None = None
    warm_start: bool | None = None
    options: dict[str, Any] = field(default_factory=dict)

    def target_array(self) -> np.ndarray:
        """The target as a float 3-vector (raises on a malformed shape)."""
        target = np.asarray(self.target, dtype=float)
        if target.shape != (3,):
            raise ValueError(
                f"target must be a 3-vector, got shape {target.shape}"
            )
        return target


class ServingRejected(RuntimeError):
    """Base class: the server refused (or abandoned) a request.

    ``record`` is the structured :class:`FailureRecord` (stage
    ``"serving"``); the exception message is its human rendering.
    """

    kind = "rejected"

    def __init__(self, record: FailureRecord) -> None:
        self.record = record
        super().__init__(record.describe())

    @classmethod
    def from_request(cls, message: str, solver: str = "") -> "ServingRejected":
        return cls(FailureRecord(
            index=-1, stage=STAGE_SERVING, kind=cls.kind,
            message=message, solver=solver,
        ))


class Overloaded(ServingRejected):
    """Backpressure: the bounded request queue is full."""

    kind = "overloaded"


class DeadlineExceeded(ServingRejected):
    """The request's latency budget expired before it could be solved."""

    kind = "deadline_exceeded"


class SloShed(ServingRejected):
    """Shed at dispatch: predicted (not yet observed) to miss its deadline.

    Distinct from :class:`DeadlineExceeded` — the budget was still live,
    but the per-group execution-time estimate said solving would blow it,
    so the server refused the work instead of spending solver time on an
    answer the client would discard.
    """

    kind = "slo_shed"


class ServerClosed(ServingRejected):
    """The server is shutting down (or already closed)."""

    kind = "server_closed"
