"""The in-process IK request server: futures in, lock-step batches out.

:class:`IKServer` accepts individual :class:`~repro.serving.request.SolveRequest`\\ s
and returns a :class:`concurrent.futures.Future` per request.  A background
worker loop coalesces compatible requests (same robot / solver / config /
options) through the :class:`~repro.serving.batcher.MicroBatcher` and
executes each flushed micro-batch through the existing
:func:`repro.api.solve_batch` path — so a served batch inherits the whole
stack built in PRs 1-4: lock-step vectorized engines, ``workers=`` process
sharding, ``kernel=`` selection and the ``on_error=`` resilience semantics.

Design invariants:

* **Served == offline.**  A request with ``seed=s`` resolves its initial
  configuration exactly as ``api.solve(..., seed=s)`` would (one
  ``chain.random_configuration(default_rng(s))`` draw), then rides a batch
  whose per-problem numerics the conformance tier already pins to the
  scalar driver.  ``tests/serving/test_differential.py`` holds the serving
  layer to that equivalence per request, across a mixed-robot stream.
* **Bounded everything.**  The queue is bounded (``max_queue`` →
  :class:`~repro.serving.request.Overloaded`), coalesce latency is bounded
  (``max_wait_ms``), and per-request deadlines are enforced both at
  admission and at dispatch
  (:class:`~repro.serving.request.DeadlineExceeded`).
* **Observable.**  Counters (``serve_requests`` / ``serve_batches`` /
  ``serve_overloaded`` / ``serve_deadline_expired`` /
  ``serve_cache_hits`` / ``serve_cache_misses``) and phases
  (``serve_coalesce`` / ``serve_execute``) flow through the standard
  :class:`~repro.telemetry.tracer.Tracer` sinks; queue-depth / batch
  occupancy gauges live on :meth:`IKServer.stats`.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.api import _resolve_config, resolve_robot
from repro.execution import ExecutionOptions
from repro.kinematics.chain import KinematicChain
from repro.parallel.pool import ON_ERROR_MODES
from repro.serving.batcher import GroupKey, MicroBatch, MicroBatcher, PendingEntry
from repro.serving.request import (
    STAGE_SERVING,
    DeadlineExceeded,
    Overloaded,
    ServerClosed,
    SolveRequest,
)
from repro.serving.seeds import SeedCache
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = ["ServerConfig", "ServingStats", "IKServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Policy knobs for one :class:`IKServer`.

    Parameters
    ----------
    max_batch_size:
        Flush trigger 1: a compatibility group with this many pending
        requests flushes immediately.
    max_wait_ms:
        Flush trigger 2: the longest any request coalesces before its
        group flushes regardless of size.  ``0`` disables coalescing
        (every request is solved as a singleton batch as soon as the
        worker loop sees it).
    max_queue:
        Backpressure bound: admitted-but-unflushed requests across all
        groups; submissions beyond it raise
        :class:`~repro.serving.request.Overloaded`.
    options:
        Typed execution policy (:class:`~repro.execution.ExecutionOptions`)
        forwarded to :func:`repro.api.solve_batch` for every micro-batch —
        the forward-compatible home for ``workers`` / ``timeout`` /
        ``on_error`` plus the kernel spec (mode / dtype / chunk) and the
        lock-step ``compaction`` toggle.  When set, the individual
        ``workers`` / ``timeout`` / ``on_error`` fields must be left at
        their defaults, and ``options.on_error`` governs verbatim (note
        its default is ``"raise"``, not the serving-flavoured ``"skip"``
        below — set it explicitly when building options by hand).
    workers / timeout / on_error:
        Legacy form of the same policy, kept working: when ``options`` is
        not given these build it.  The serving default is
        ``on_error="skip"``: one bad request degrades into a typed
        placeholder result instead of poisoning its batch-mates with an
        exception.
    warm_start:
        Server-wide default for the warm-start seed cache (requests can
        override per call).  Off by default, preserving request-level
        equivalence with offline solves.
    seed_cache_capacity:
        Per-robot capacity of the warm-start cache; ``0`` disables the
        cache entirely (nothing recorded, every lookup misses).
    warm_start_max_distance:
        Optional radius (metres): cached solutions further than this from
        the new target are not reused.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    workers: int | None = None
    timeout: float | None = None
    on_error: str = "skip"
    warm_start: bool = False
    seed_cache_capacity: int = 256
    warm_start_max_distance: float | None = None
    options: "ExecutionOptions | None" = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.seed_cache_capacity < 0:
            raise ValueError("seed_cache_capacity must be >= 0")
        if self.options is None:
            # Legacy form: normalise the individual fields into the typed
            # policy once, so the execute path has a single source of truth.
            object.__setattr__(self, "options", ExecutionOptions(
                workers=self.workers,
                timeout=self.timeout,
                on_error=self.on_error,
            ))
        else:
            if not isinstance(self.options, ExecutionOptions):
                raise TypeError(
                    "options must be ExecutionOptions, got "
                    f"{type(self.options).__name__}"
                )
            if (
                self.workers is not None
                or self.timeout is not None
                or self.on_error != "skip"
            ):
                raise ValueError(
                    "pass either options= or workers/timeout/on_error, "
                    "not both"
                )
            # Mirror the typed policy into the legacy fields so existing
            # readers (repr, bench payloads) stay truthful.
            object.__setattr__(self, "workers", self.options.workers)
            object.__setattr__(self, "timeout", self.options.timeout)
            object.__setattr__(self, "on_error", self.options.on_error)


@dataclass
class ServingStats:
    """Aggregate gauges/counters for one server's lifetime.

    ``queue_depth_peak`` and the occupancy fields are the gauges the
    telemetry counters cannot carry (counters only add); everything else
    mirrors a counter so :meth:`to_dict` is a self-contained health
    snapshot for dashboards and ``BENCH_serving.json``.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_overloaded: int = 0
    rejected_deadline: int = 0
    expired_in_queue: int = 0
    batches: int = 0
    requests_batched: int = 0
    occupancy_peak: int = 0
    queue_depth_peak: int = 0
    coalesce_wait_s: float = 0.0
    coalesce_wait_peak_s: float = 0.0
    execute_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def mean_occupancy(self) -> float:
        """Requests per executed micro-batch (the coalescing win)."""
        return self.requests_batched / self.batches if self.batches else float("nan")

    @property
    def mean_coalesce_wait_s(self) -> float:
        if not self.requests_batched:
            return float("nan")
        return self.coalesce_wait_s / self.requests_batched

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else float("nan")

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_overloaded": self.rejected_overloaded,
            "rejected_deadline": self.rejected_deadline,
            "expired_in_queue": self.expired_in_queue,
            "batches": self.batches,
            "requests_batched": self.requests_batched,
            "mean_occupancy": self.mean_occupancy,
            "occupancy_peak": self.occupancy_peak,
            "queue_depth_peak": self.queue_depth_peak,
            "mean_coalesce_wait_s": self.mean_coalesce_wait_s,
            "coalesce_wait_peak_s": self.coalesce_wait_peak_s,
            "execute_s": self.execute_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }


class IKServer:
    """In-process IK serving with dynamic micro-batching.

    Usage::

        from repro.serving import IKServer, ServerConfig, SolveRequest

        with IKServer(ServerConfig(max_batch_size=64, max_wait_ms=2.0)) as srv:
            futures = [
                srv.submit(SolveRequest("dadu-50dof", t, seed=i))
                for i, t in enumerate(targets)
            ]
            results = [f.result() for f in futures]

    ``submit`` raises the structured rejection taxonomy
    (:class:`~repro.serving.request.Overloaded` /
    :class:`~repro.serving.request.DeadlineExceeded` /
    :class:`~repro.serving.request.ServerClosed`) synchronously; a request
    whose deadline expires *while queued* completes its future with
    :class:`~repro.serving.request.DeadlineExceeded` instead.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self._tracer = tracer
        self._cond = threading.Condition()
        self._batcher = MicroBatcher(
            self.config.max_batch_size, self.config.max_wait_ms / 1e3
        )
        self._seed_cache = (
            SeedCache(
                capacity=self.config.seed_cache_capacity,
                max_distance=self.config.warm_start_max_distance,
            )
            if self.config.seed_cache_capacity > 0
            else None
        )
        self._stats = ServingStats()
        self._chains: dict[str, KinematicChain] = {}
        self._thread: threading.Thread | None = None
        self._closing = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "IKServer":
        """Launch the worker loop (idempotent; ``submit`` auto-starts)."""
        with self._cond:
            if self._closed:
                raise ServerClosed.from_request("server already closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._worker, name="ik-server", daemon=True
                )
                self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the worker loop.

        ``drain=True`` (default) flushes and solves everything still
        queued before returning; ``drain=False`` fails every pending
        future with :class:`~repro.serving.request.ServerClosed`.
        """
        with self._cond:
            if self._closed:
                return
            self._closing = True
            if not drain:
                for entry in self._batcher.drain():
                    self._fail_future(entry.future, ServerClosed.from_request(
                        "server closed before execution", entry.key.solver
                    ))
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
        with self._cond:
            self._closed = True

    def __enter__(self) -> "IKServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close(drain=True)

    # -- submission ------------------------------------------------------

    def submit(self, request: SolveRequest) -> concurrent.futures.Future:
        """Admit one request; returns the future of its ``IKResult``.

        Raises :class:`Overloaded` when the bounded queue is full,
        :class:`DeadlineExceeded` when the request arrives with a
        non-positive budget, :class:`ServerClosed` after shutdown began.
        """
        chain = self._resolve_chain(request.robot)
        target = request.target_array()
        config = _resolve_config(
            request.config, request.tolerance,
            request.max_iterations, request.kernel,
        )
        key = GroupKey(
            robot_key=(
                request.robot if isinstance(request.robot, str) else id(chain)
            ),
            solver=request.solver,
            config_key=config,
            options_key=tuple(sorted(
                (name, repr(value)) for name, value in request.options.items()
            )),
        )
        tr = self._tracer if self._tracer is not None else get_tracer()
        with self._cond:
            if self._closing or self._closed:
                raise ServerClosed.from_request(
                    "server is shutting down", request.solver
                )
            if request.deadline_s is not None and request.deadline_s <= 0:
                self._stats.rejected_deadline += 1
                if tr.enabled:
                    tr.count("serve_deadline_expired")
                raise DeadlineExceeded.from_request(
                    f"deadline_s={request.deadline_s} already expired at "
                    "admission", request.solver,
                )
            if self._batcher.pending_count >= self.config.max_queue:
                self._stats.rejected_overloaded += 1
                if tr.enabled:
                    tr.count("serve_overloaded")
                raise Overloaded.from_request(
                    f"queue full ({self.config.max_queue} pending)",
                    request.solver,
                )
            now = time.monotonic()
            q0, warm = self._resolve_q0(chain, request, target, tr)
            entry = PendingEntry(
                request=request,
                chain=chain,
                key=key,
                target=target,
                q0=q0,
                future=concurrent.futures.Future(),
                enqueue_t=now,
                expiry=(
                    now + request.deadline_s
                    if request.deadline_s is not None else None
                ),
                warm_started=warm,
            )
            self._batcher.add(entry)
            self._stats.submitted += 1
            self._stats.queue_depth_peak = max(
                self._stats.queue_depth_peak, self._batcher.pending_count
            )
            if tr.enabled:
                tr.count("serve_requests")
            self._cond.notify_all()
        if self._thread is None:
            self.start()
        return entry.future

    def submit_many(
        self, requests: "list[SolveRequest]"
    ) -> "list[concurrent.futures.Future]":
        """Admit a list of requests (stops at the first rejection)."""
        return [self.submit(request) for request in requests]

    def solve(
        self, request: SolveRequest, timeout: float | None = None
    ) -> Any:
        """Blocking sugar: ``submit(request).result(timeout)``."""
        return self.submit(request).result(timeout)

    # -- introspection ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Currently admitted-but-unflushed requests (live gauge)."""
        with self._cond:
            return self._batcher.pending_count

    def stats(self) -> ServingStats:
        """A consistent snapshot of the server's lifetime stats."""
        with self._cond:
            snapshot = replace(self._stats)
        if self._seed_cache is not None:
            snapshot.cache_hits = self._seed_cache.stats.hits
            snapshot.cache_misses = self._seed_cache.stats.misses
        return snapshot

    # -- internals -------------------------------------------------------

    def _resolve_chain(self, robot: Any) -> KinematicChain:
        if isinstance(robot, str):
            chain = self._chains.get(robot)
            if chain is None:
                chain = resolve_robot(robot)
                self._chains[robot] = chain
            return chain
        return resolve_robot(robot)

    def _resolve_q0(
        self, chain: KinematicChain, request: SolveRequest,
        target: np.ndarray, tr: Tracer,
    ) -> "tuple[np.ndarray, bool]":
        """The entry's initial configuration, resolved at admission.

        Precedence: explicit ``q0`` > warm-start cache hit > the same
        seeded draw a direct ``api.solve(..., seed=s)`` performs.  Called
        under the server lock (the seed cache is not thread-safe).
        """
        if request.q0 is not None:
            q0 = np.asarray(request.q0, dtype=float)
            if q0.shape != (chain.dof,):
                raise ValueError(
                    f"q0 must have shape ({chain.dof},), got {q0.shape}"
                )
            return q0.copy(), False
        warm = (
            request.warm_start
            if request.warm_start is not None
            else self.config.warm_start
        )
        if warm and self._seed_cache is not None:
            cached = self._seed_cache.lookup(chain, target)
            if tr.enabled:
                tr.count(
                    "serve_cache_hits" if cached is not None
                    else "serve_cache_misses"
                )
            if cached is not None:
                return cached, True
        rng = np.random.default_rng(request.seed)
        return chain.random_configuration(rng), False

    def _worker(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._batcher.pending_count == 0:
                        if self._closing:
                            return
                        self._cond.wait()
                        continue
                    now = time.monotonic()
                    if self._closing or self._batcher.has_ready(now):
                        break
                    flush_at = self._batcher.next_flush_at()
                    self._cond.wait(
                        timeout=None if flush_at is None
                        else max(0.0, flush_at - now)
                    )
                batches = self._batcher.pop_ready(
                    time.monotonic(), force=self._closing
                )
            for batch in batches:
                self._execute(batch)

    @staticmethod
    def _fail_future(future: concurrent.futures.Future, exc: Exception) -> None:
        if not future.cancelled():
            future.set_exception(exc)

    @staticmethod
    def _complete_future(future: concurrent.futures.Future, result: Any) -> None:
        if not future.cancelled():
            future.set_result(result)

    def _execute(self, batch: MicroBatch) -> None:
        from repro import api

        now = time.monotonic()
        tr = self._tracer if self._tracer is not None else get_tracer()
        live: list[PendingEntry] = []
        for entry in batch.entries:
            if entry.expiry is not None and now > entry.expiry:
                self._fail_future(entry.future, DeadlineExceeded.from_request(
                    f"expired after {now - entry.enqueue_t:.4f}s in queue",
                    batch.key.solver,
                ))
                with self._cond:
                    self._stats.expired_in_queue += 1
                if tr.enabled:
                    tr.count("serve_deadline_expired")
            else:
                live.append(entry)
        if not live:
            return

        coalesce_waits = [now - entry.enqueue_t for entry in live]
        chain = live[0].chain
        targets = np.stack([entry.target for entry in live])
        q0 = np.stack([entry.q0 for entry in live])
        start = time.perf_counter()
        try:
            result = api.solve_batch(
                chain,
                targets,
                batch.key.solver,
                q0=q0,
                config=batch.key.config_key,
                options=self.config.options,
                tracer=tr,
                **live[0].request.options,
            )
        except Exception as exc:
            # on_error="raise" semantics: the failure is shared batch-wide,
            # exactly as one solve_batch caller would have seen it.
            for entry in live:
                self._fail_future(entry.future, exc)
            with self._cond:
                self._stats.failed += len(live)
                self._stats.batches += 1
                self._stats.requests_batched += len(live)
            return
        elapsed = time.perf_counter() - start

        with self._cond:
            for entry, res in zip(live, result):
                if self._seed_cache is not None and res.converged:
                    self._seed_cache.record(chain, entry.target, res.q)
                self._complete_future(entry.future, res)
            stats = self._stats
            stats.completed += len(live)
            stats.batches += 1
            stats.requests_batched += len(live)
            stats.occupancy_peak = max(stats.occupancy_peak, len(live))
            stats.coalesce_wait_s += sum(coalesce_waits)
            stats.coalesce_wait_peak_s = max(
                stats.coalesce_wait_peak_s, max(coalesce_waits)
            )
            stats.execute_s += elapsed
        if tr.enabled:
            tr.count("serve_batches")
            tr.add_phase("serve_coalesce", sum(coalesce_waits))
            tr.add_phase("serve_execute", elapsed)

    def __repr__(self) -> str:
        return (
            f"IKServer(max_batch_size={self.config.max_batch_size}, "
            f"max_wait_ms={self.config.max_wait_ms}, "
            f"on_error={self.config.on_error!r}, "
            f"queue_depth={self.queue_depth})"
        )
