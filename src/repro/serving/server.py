"""The in-process IK request server: futures in, lock-step batches out.

:class:`IKServer` accepts individual :class:`~repro.serving.request.SolveRequest`\\ s
and returns a :class:`concurrent.futures.Future` per request.  A pool of
dispatch threads (``ServerConfig.dispatch_workers``) coalesces compatible
requests (same robot / solver / config / options) through the
:class:`~repro.serving.batcher.MicroBatcher` and executes each flushed
micro-batch through the existing :func:`repro.api.solve_batch` path — so a
served batch inherits the whole stack built in PRs 1-6: lock-step
vectorized engines, ``workers=`` process sharding, the kernel spec
(mode / dtype / chunk), active-set compaction and the ``on_error=``
resilience semantics.

Design invariants:

* **Served == offline** (cold path).  A request with ``seed=s`` and
  ``warm_start=False`` resolves its initial configuration exactly as
  ``api.solve(..., seed=s)`` would (one
  ``chain.random_configuration(default_rng(s))`` draw), then rides a batch
  whose per-problem numerics the conformance tier already pins to the
  scalar driver.  Because ``q0`` is fixed at admission and per-problem
  numerics are independent of batch composition, the guarantee holds for
  *any* ``dispatch_workers`` count — concurrent dispatch changes which
  batch a request rides, never its answer.
  ``tests/serving/test_differential.py`` holds the serving layer to that
  equivalence per request, across a mixed-robot stream, for
  ``dispatch_workers`` in {1, 4}.
* **Warm by default.**  ``warm_start=True`` replaces the seed draw with an
  IKSel-style ranked nearest-solution seed
  (:mod:`repro.serving.seeds`) — dramatically fewer iterations on
  correlated streams, at the price of the bit-comparability above (which
  is why it is overridable per request and forced off in the differential
  tier).
* **Bounded everything.**  The queue is bounded (``max_queue`` →
  :class:`~repro.serving.request.Overloaded`), coalesce latency is bounded
  (``max_wait_ms``, adaptively shrunk per group when ``adaptive``), and
  per-request deadlines are enforced at admission, at dispatch
  (:class:`~repro.serving.request.DeadlineExceeded`), and *predictively*
  at dispatch (:class:`~repro.serving.request.SloShed`: a request whose
  deadline the per-group execution-time estimate says cannot be met is
  shed instead of solved late).
* **Observable.**  Counters (``serve_requests`` / ``serve_batches`` /
  ``serve_overloaded`` / ``serve_deadline_expired`` / ``serve_shed`` /
  ``serve_adaptive_flushes`` / ``serve_cache_hits`` /
  ``serve_cache_misses`` / ``serve_warm_iterations`` /
  ``serve_cold_iterations``) and phases (``serve_coalesce`` /
  ``serve_execute``) flow through the standard
  :class:`~repro.telemetry.tracer.Tracer` sinks; queue-depth / batch
  occupancy gauges live on :meth:`IKServer.stats`.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.api import _resolve_config, resolve_robot
from repro.execution import ExecutionOptions
from repro.kinematics.chain import KinematicChain
from repro.parallel.pool import ON_ERROR_MODES
from repro.serving.batcher import GroupKey, MicroBatch, MicroBatcher, PendingEntry
from repro.serving.request import (
    STAGE_SERVING,
    DeadlineExceeded,
    Overloaded,
    ServerClosed,
    SloShed,
    SolveRequest,
)
from repro.serving.seeds import DEFAULT_K, DEFAULT_LIMIT_PENALTY, SeedCache
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = ["ServerConfig", "ServingStats", "IKServer"]

#: EWMA smoothing factor for per-group batch execution times (the SLO
#: shedding predictor).
EXEC_EWMA_ALPHA = 0.3


def _finite_or_none(value: float) -> float | None:
    """NaN/inf-free rendering for strict-JSON payloads."""
    return float(value) if np.isfinite(value) else None


@dataclass(frozen=True)
class ServerConfig:
    """Policy knobs for one :class:`IKServer`.

    Parameters
    ----------
    max_batch_size:
        Flush trigger 1 (ceiling): a compatibility group with this many
        pending requests flushes immediately.
    max_wait_ms:
        Flush trigger 2 (ceiling): the longest any request coalesces before
        its group flushes regardless of size.  ``0`` disables coalescing
        (every request is solved as a singleton batch as soon as a
        dispatch loop sees it).
    adaptive:
        Tune each group's *effective* batch size / wait from an EWMA of its
        observed inter-arrival times (see :mod:`repro.serving.batcher`).
        The static knobs above remain hard ceilings; adaptation only ever
        shrinks a trigger.  On by default.
    dispatch_workers:
        Concurrent dispatch loops draining the micro-batcher.  With one
        loop, an in-flight batch blocks dispatching the next; N loops keep
        coalescing while up to N batches execute.  Per-request results are
        independent of this knob (``q0`` is fixed at admission).
    max_queue:
        Backpressure bound: admitted-but-unflushed requests across all
        groups; submissions beyond it raise
        :class:`~repro.serving.request.Overloaded`.
    slo_shedding:
        Predictive admission control at dispatch: a request whose deadline
        the per-group batch-execution-time EWMA predicts cannot be met is
        shed (:class:`~repro.serving.request.SloShed`) instead of solved
        late.  Only affects requests that carry a ``deadline_s``.
    options:
        Typed execution policy (:class:`~repro.execution.ExecutionOptions`)
        forwarded to :func:`repro.api.solve_batch` for every micro-batch —
        the forward-compatible home for ``workers`` / ``timeout`` /
        ``on_error`` plus the kernel spec (mode / dtype / chunk) and the
        lock-step ``compaction`` toggle.  When set, the individual
        ``workers`` / ``timeout`` / ``on_error`` fields must be left at
        their defaults, and ``options.on_error`` governs verbatim (note
        its default is ``"raise"``, not the serving-flavoured ``"skip"``
        below — set it explicitly when building options by hand).
    workers / timeout / on_error:
        Legacy form of the same policy, kept working: when ``options`` is
        not given these build it.  The serving default is
        ``on_error="skip"``: one bad request degrades into a typed
        placeholder result instead of poisoning its batch-mates with an
        exception.
    warm_start:
        Server-wide default for the warm-start seed cache (requests can
        override per call).  **On by default** since PR 7: correlated
        online streams converge in a fraction of the cold iteration count.
        Set ``False`` to restore request-level bit-equivalence with
        offline solves.
    seed_cache_capacity:
        Per-robot capacity of the warm-start cache; ``0`` disables the
        cache entirely (nothing recorded, every lookup misses).
    warm_start_max_distance:
        Optional radius (metres): cached solutions further than this from
        the new target are not reused.
    seed_k / seed_limit_penalty:
        IKSel-style ranking knobs (:class:`~repro.serving.seeds.SeedCache`):
        candidate pool size and the joint-limit-proximity penalty weight.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    dispatch_workers: int = 1
    adaptive: bool = True
    slo_shedding: bool = True
    workers: int | None = None
    timeout: float | None = None
    on_error: str = "skip"
    warm_start: bool = True
    seed_cache_capacity: int = 256
    warm_start_max_distance: float | None = None
    seed_k: int = DEFAULT_K
    seed_limit_penalty: float = DEFAULT_LIMIT_PENALTY
    options: "ExecutionOptions | None" = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.dispatch_workers < 1:
            raise ValueError("dispatch_workers must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.seed_cache_capacity < 0:
            raise ValueError("seed_cache_capacity must be >= 0")
        if self.seed_k < 1:
            raise ValueError("seed_k must be >= 1")
        if self.seed_limit_penalty < 0:
            raise ValueError("seed_limit_penalty must be >= 0")
        if self.options is None:
            # Legacy form: normalise the individual fields into the typed
            # policy once, so the execute path has a single source of truth.
            object.__setattr__(self, "options", ExecutionOptions(
                workers=self.workers,
                timeout=self.timeout,
                on_error=self.on_error,
            ))
        else:
            if not isinstance(self.options, ExecutionOptions):
                raise TypeError(
                    "options must be ExecutionOptions, got "
                    f"{type(self.options).__name__}"
                )
            if (
                self.workers is not None
                or self.timeout is not None
                or self.on_error != "skip"
            ):
                raise ValueError(
                    "pass either options= or workers/timeout/on_error, "
                    "not both"
                )
            # Mirror the typed policy into the legacy fields so existing
            # readers (repr, bench payloads) stay truthful.
            object.__setattr__(self, "workers", self.options.workers)
            object.__setattr__(self, "timeout", self.options.timeout)
            object.__setattr__(self, "on_error", self.options.on_error)


@dataclass
class ServingStats:
    """Aggregate gauges/counters for one server's lifetime.

    ``queue_depth_peak`` and the occupancy fields are the gauges the
    telemetry counters cannot carry (counters only add); everything else
    mirrors a counter so :meth:`to_dict` is a self-contained health
    snapshot for dashboards and ``BENCH_serving.json``.  Ratios that are
    undefined before any traffic (``mean_occupancy``, ``cache_hit_rate``,
    …) render as ``None`` in :meth:`to_dict` so the snapshot always
    survives strict JSON.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_overloaded: int = 0
    rejected_deadline: int = 0
    rejected_shed: int = 0
    expired_in_queue: int = 0
    batches: int = 0
    requests_batched: int = 0
    adaptive_flushes: int = 0
    occupancy_peak: int = 0
    queue_depth_peak: int = 0
    inflight_peak: int = 0
    coalesce_wait_s: float = 0.0
    coalesce_wait_peak_s: float = 0.0
    execute_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    warm_requests: int = 0
    warm_iterations: int = 0
    cold_requests: int = 0
    cold_iterations: int = 0

    @property
    def mean_occupancy(self) -> float:
        """Requests per executed micro-batch (the coalescing win)."""
        return self.requests_batched / self.batches if self.batches else float("nan")

    @property
    def mean_coalesce_wait_s(self) -> float:
        if not self.requests_batched:
            return float("nan")
        return self.coalesce_wait_s / self.requests_batched

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else float("nan")

    @property
    def mean_warm_iterations(self) -> float:
        """Mean solver iterations across warm-started completions."""
        if not self.warm_requests:
            return float("nan")
        return self.warm_iterations / self.warm_requests

    @property
    def mean_cold_iterations(self) -> float:
        """Mean solver iterations across cold-seeded completions."""
        if not self.cold_requests:
            return float("nan")
        return self.cold_iterations / self.cold_requests

    @property
    def warm_iteration_reduction(self) -> float:
        """Fractional in-stream iteration saving of warm vs cold starts.

        Needs both populations in the same stream to be defined; the
        serve-bench additionally measures the reduction against a
        dedicated cold-seed baseline re-solve of the same requests.
        """
        cold = self.mean_cold_iterations
        warm = self.mean_warm_iterations
        if not np.isfinite(cold) or not np.isfinite(warm) or cold <= 0:
            return float("nan")
        return 1.0 - warm / cold

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_overloaded": self.rejected_overloaded,
            "rejected_deadline": self.rejected_deadline,
            "rejected_shed": self.rejected_shed,
            "expired_in_queue": self.expired_in_queue,
            "batches": self.batches,
            "requests_batched": self.requests_batched,
            "adaptive_flushes": self.adaptive_flushes,
            "mean_occupancy": _finite_or_none(self.mean_occupancy),
            "occupancy_peak": self.occupancy_peak,
            "queue_depth_peak": self.queue_depth_peak,
            "inflight_peak": self.inflight_peak,
            "mean_coalesce_wait_s": _finite_or_none(self.mean_coalesce_wait_s),
            "coalesce_wait_peak_s": self.coalesce_wait_peak_s,
            "execute_s": self.execute_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": _finite_or_none(self.cache_hit_rate),
            "warm_requests": self.warm_requests,
            "mean_warm_iterations": _finite_or_none(self.mean_warm_iterations),
            "cold_requests": self.cold_requests,
            "mean_cold_iterations": _finite_or_none(self.mean_cold_iterations),
            "warm_iteration_reduction": _finite_or_none(
                self.warm_iteration_reduction
            ),
        }


class IKServer:
    """In-process IK serving with adaptive dynamic micro-batching.

    Usage::

        from repro.serving import IKServer, ServerConfig, SolveRequest

        with IKServer(ServerConfig(max_batch_size=64, max_wait_ms=2.0,
                                   dispatch_workers=4)) as srv:
            futures = [
                srv.submit(SolveRequest("dadu-50dof", t, seed=i))
                for i, t in enumerate(targets)
            ]
            results = [f.result() for f in futures]

    ``submit`` raises the structured rejection taxonomy
    (:class:`~repro.serving.request.Overloaded` /
    :class:`~repro.serving.request.DeadlineExceeded` /
    :class:`~repro.serving.request.ServerClosed`) synchronously; a request
    whose deadline expires *while queued* completes its future with
    :class:`~repro.serving.request.DeadlineExceeded`, and one predicted to
    miss its deadline completes with
    :class:`~repro.serving.request.SloShed` instead of being solved late.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self._tracer = tracer
        self._cond = threading.Condition()
        self._batcher = MicroBatcher(
            self.config.max_batch_size,
            self.config.max_wait_ms / 1e3,
            adaptive=self.config.adaptive,
        )
        self._seed_cache = (
            SeedCache(
                capacity=self.config.seed_cache_capacity,
                max_distance=self.config.warm_start_max_distance,
                k=self.config.seed_k,
                limit_penalty=self.config.seed_limit_penalty,
            )
            if self.config.seed_cache_capacity > 0
            else None
        )
        self._stats = ServingStats()
        self._chains: dict[str, KinematicChain] = {}
        self._threads: list[threading.Thread] = []
        #: Per-group EWMA of batch execution seconds (the SLO predictor).
        self._exec_ewma: dict[GroupKey, float] = {}
        self._inflight = 0
        self._closing = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "IKServer":
        """Launch the dispatch loops (idempotent; ``submit`` auto-starts)."""
        with self._cond:
            if self._closed:
                raise ServerClosed.from_request("server already closed")
            if not self._threads:
                self._threads = [
                    threading.Thread(
                        target=self._worker, name=f"ik-server-{i}", daemon=True
                    )
                    for i in range(self.config.dispatch_workers)
                ]
                for thread in self._threads:
                    thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the dispatch loops.

        ``drain=True`` (default) flushes and solves everything still
        queued before returning; ``drain=False`` fails every pending
        future with :class:`~repro.serving.request.ServerClosed`.
        Idempotent, and safe to call concurrently with ``submit`` (late
        submissions raise :class:`~repro.serving.request.ServerClosed`;
        admitted ones keep their future).
        """
        with self._cond:
            if self._closed:
                return
            self._closing = True
            if not drain:
                for entry in self._batcher.drain():
                    self._fail_future(entry.future, ServerClosed.from_request(
                        "server closed before execution", entry.key.solver
                    ))
            self._cond.notify_all()
            threads = list(self._threads)
        for thread in threads:
            thread.join()
        with self._cond:
            self._closed = True

    def __enter__(self) -> "IKServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close(drain=True)

    # -- submission ------------------------------------------------------

    def submit(self, request: SolveRequest) -> concurrent.futures.Future:
        """Admit one request; returns the future of its ``IKResult``.

        Raises :class:`Overloaded` when the bounded queue is full,
        :class:`DeadlineExceeded` when the request arrives with a
        non-positive budget, :class:`ServerClosed` after shutdown began.
        """
        chain = self._resolve_chain(request.robot)
        target = request.target_array()
        config = _resolve_config(
            request.config, request.tolerance,
            request.max_iterations, request.kernel,
        )
        key = GroupKey(
            robot_key=(
                request.robot if isinstance(request.robot, str) else id(chain)
            ),
            solver=request.solver,
            config_key=config,
            options_key=tuple(sorted(
                (name, repr(value)) for name, value in request.options.items()
            )),
        )
        tr = self._tracer if self._tracer is not None else get_tracer()
        with self._cond:
            if self._closing or self._closed:
                raise ServerClosed.from_request(
                    "server is shutting down", request.solver
                )
            if request.deadline_s is not None and request.deadline_s <= 0:
                self._stats.rejected_deadline += 1
                if tr.enabled:
                    tr.count("serve_deadline_expired")
                raise DeadlineExceeded.from_request(
                    f"deadline_s={request.deadline_s} already expired at "
                    "admission", request.solver,
                )
            if self._batcher.pending_count >= self.config.max_queue:
                self._stats.rejected_overloaded += 1
                if tr.enabled:
                    tr.count("serve_overloaded")
                raise Overloaded.from_request(
                    f"queue full ({self.config.max_queue} pending)",
                    request.solver,
                )
            now = time.monotonic()
            q0, warm = self._resolve_q0(chain, request, target, tr)
            entry = PendingEntry(
                request=request,
                chain=chain,
                key=key,
                target=target,
                q0=q0,
                future=concurrent.futures.Future(),
                enqueue_t=now,
                expiry=(
                    now + request.deadline_s
                    if request.deadline_s is not None else None
                ),
                warm_started=warm,
            )
            self._batcher.add(entry)
            self._stats.submitted += 1
            self._stats.queue_depth_peak = max(
                self._stats.queue_depth_peak, self._batcher.pending_count
            )
            if tr.enabled:
                tr.count("serve_requests")
            self._cond.notify_all()
        if not self._threads:
            self.start()
        return entry.future

    def submit_many(
        self, requests: "list[SolveRequest]"
    ) -> "list[concurrent.futures.Future]":
        """Admit a list of requests (stops at the first rejection)."""
        return [self.submit(request) for request in requests]

    def solve(
        self, request: SolveRequest, timeout: float | None = None
    ) -> Any:
        """Blocking sugar: ``submit(request).result(timeout)``."""
        return self.submit(request).result(timeout)

    # -- introspection ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Currently admitted-but-unflushed requests (live gauge)."""
        with self._cond:
            return self._batcher.pending_count

    def warm_seed(
        self, robot: Any, target: np.ndarray
    ) -> "np.ndarray | None":
        """Ranked warm-start seed for ``target``, or ``None`` on a miss.

        The session layer's first-tick fallback: a locked lookup into the
        server's :class:`~repro.serving.seeds.SeedCache` (which is not
        thread-safe on its own).  Pure lookup — hit/miss counters are the
        caller's concern, and nothing is recorded.
        """
        if self._seed_cache is None:
            return None
        chain = self._resolve_chain(robot)
        target = np.asarray(target, dtype=float)
        with self._cond:
            return self._seed_cache.lookup(chain, target)

    def stats(self) -> ServingStats:
        """A consistent snapshot of the server's lifetime stats."""
        with self._cond:
            snapshot = replace(self._stats)
            snapshot.adaptive_flushes = self._batcher.adaptive_adjustments
        if self._seed_cache is not None:
            snapshot.cache_hits = self._seed_cache.stats.hits
            snapshot.cache_misses = self._seed_cache.stats.misses
        return snapshot

    # -- internals -------------------------------------------------------

    def _resolve_chain(self, robot: Any) -> KinematicChain:
        if isinstance(robot, str):
            chain = self._chains.get(robot)
            if chain is None:
                chain = resolve_robot(robot)
                self._chains[robot] = chain
            return chain
        return resolve_robot(robot)

    def _resolve_q0(
        self, chain: KinematicChain, request: SolveRequest,
        target: np.ndarray, tr: Tracer,
    ) -> "tuple[np.ndarray, bool]":
        """The entry's initial configuration, resolved at admission.

        Precedence: explicit ``q0`` > warm-start cache hit > the same
        seeded draw a direct ``api.solve(..., seed=s)`` performs.  Called
        under the server lock (the seed cache is not thread-safe).
        """
        if request.q0 is not None:
            q0 = np.asarray(request.q0, dtype=float)
            if q0.shape != (chain.dof,):
                raise ValueError(
                    f"q0 must have shape ({chain.dof},), got {q0.shape}"
                )
            return q0.copy(), False
        warm = (
            request.warm_start
            if request.warm_start is not None
            else self.config.warm_start
        )
        if warm and self._seed_cache is not None:
            cached = self._seed_cache.lookup(chain, target)
            if tr.enabled:
                tr.count(
                    "serve_cache_hits" if cached is not None
                    else "serve_cache_misses"
                )
            if cached is not None:
                return cached, True
        rng = np.random.default_rng(request.seed)
        return chain.random_configuration(rng), False

    def _worker(self) -> None:
        """One dispatch loop: wait for a due batch, pop it, execute it.

        ``pop_one`` hands each loop one batch at a time, so with N loops
        up to N batches execute concurrently while coalescing continues —
        an in-flight batch no longer serialises the whole server.
        """
        tr = self._tracer if self._tracer is not None else get_tracer()
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    adjustments = self._batcher.adaptive_adjustments
                    batch = self._batcher.pop_one(now, force=self._closing)
                    if batch is not None:
                        if (
                            tr.enabled
                            and self._batcher.adaptive_adjustments > adjustments
                        ):
                            tr.count("serve_adaptive_flushes")
                        self._inflight += 1
                        self._stats.inflight_peak = max(
                            self._stats.inflight_peak, self._inflight
                        )
                        break
                    if self._closing and self._batcher.pending_count == 0:
                        return
                    flush_at = self._batcher.next_flush_at()
                    self._cond.wait(
                        timeout=None if flush_at is None
                        else max(0.0, flush_at - now)
                    )
            try:
                self._execute(batch)
            finally:
                with self._cond:
                    self._inflight -= 1

    @staticmethod
    def _fail_future(future: concurrent.futures.Future, exc: Exception) -> None:
        if not future.cancelled():
            future.set_exception(exc)

    @staticmethod
    def _complete_future(future: concurrent.futures.Future, result: Any) -> None:
        if not future.cancelled():
            future.set_result(result)

    def _triage(
        self, batch: MicroBatch, now: float, tr: Tracer
    ) -> "list[PendingEntry]":
        """Deadline triage at dispatch: drop the expired, shed the doomed.

        Expired entries fail with :class:`DeadlineExceeded`.  When SLO
        shedding is enabled and this group has an execution-time estimate,
        entries whose deadline precedes ``now + estimate`` fail with
        :class:`SloShed` — the server refuses work it predicts the client
        cannot use, and spends the solver time on requests that can still
        make their SLO.
        """
        predicted = (
            self._exec_ewma.get(batch.key)
            if self.config.slo_shedding else None
        )
        live: list[PendingEntry] = []
        for entry in batch.entries:
            if entry.expiry is None:
                live.append(entry)
                continue
            if now > entry.expiry:
                self._fail_future(entry.future, DeadlineExceeded.from_request(
                    f"expired after {now - entry.enqueue_t:.4f}s in queue",
                    batch.key.solver,
                ))
                with self._cond:
                    self._stats.expired_in_queue += 1
                if tr.enabled:
                    tr.count("serve_deadline_expired")
            elif predicted is not None and now + predicted > entry.expiry:
                self._fail_future(entry.future, SloShed.from_request(
                    f"predicted solve time {predicted:.4f}s exceeds the "
                    f"remaining {entry.expiry - now:.4f}s budget",
                    batch.key.solver,
                ))
                with self._cond:
                    self._stats.rejected_shed += 1
                if tr.enabled:
                    tr.count("serve_shed")
            else:
                live.append(entry)
        return live

    def _execute(self, batch: MicroBatch) -> None:
        from repro import api

        now = time.monotonic()
        tr = self._tracer if self._tracer is not None else get_tracer()
        live = self._triage(batch, now, tr)
        if not live:
            return

        coalesce_waits = [now - entry.enqueue_t for entry in live]
        chain = live[0].chain
        targets = np.stack([entry.target for entry in live])
        q0 = np.stack([entry.q0 for entry in live])
        start = time.perf_counter()
        try:
            result = api.solve_batch(
                chain,
                targets,
                batch.key.solver,
                q0=q0,
                config=batch.key.config_key,
                options=self.config.options,
                tracer=tr,
                **live[0].request.options,
            )
        except Exception as exc:
            # on_error="raise" semantics: the failure is shared batch-wide,
            # exactly as one solve_batch caller would have seen it.
            for entry in live:
                self._fail_future(entry.future, exc)
            with self._cond:
                self._stats.failed += len(live)
                self._stats.batches += 1
                self._stats.requests_batched += len(live)
            return
        elapsed = time.perf_counter() - start

        warm_iters = cold_iters = warm_n = cold_n = 0
        for entry, res in zip(live, result):
            if entry.warm_started:
                warm_n += 1
                warm_iters += res.iterations
            else:
                cold_n += 1
                cold_iters += res.iterations
        # Emit the batch's telemetry *before* completing any future: a
        # caller chaining submissions off a result (e.g. a tracking
        # session awaiting tick N before submitting tick N+1) then
        # observes a deterministic counter sequence, which the golden
        # trace fixture relies on.
        if tr.enabled:
            tr.count("serve_batches")
            tr.add_phase("serve_coalesce", sum(coalesce_waits))
            tr.add_phase("serve_execute", elapsed)
            if warm_iters:
                tr.count("serve_warm_iterations", warm_iters)
            if cold_iters:
                tr.count("serve_cold_iterations", cold_iters)
        with self._cond:
            for entry, res in zip(live, result):
                if self._seed_cache is not None and res.converged:
                    self._seed_cache.record(chain, entry.target, res.q)
                self._complete_future(entry.future, res)
            prev = self._exec_ewma.get(batch.key)
            self._exec_ewma[batch.key] = (
                elapsed if prev is None
                else EXEC_EWMA_ALPHA * elapsed + (1 - EXEC_EWMA_ALPHA) * prev
            )
            stats = self._stats
            stats.completed += len(live)
            stats.batches += 1
            stats.requests_batched += len(live)
            stats.occupancy_peak = max(stats.occupancy_peak, len(live))
            stats.coalesce_wait_s += sum(coalesce_waits)
            stats.coalesce_wait_peak_s = max(
                stats.coalesce_wait_peak_s, max(coalesce_waits)
            )
            stats.execute_s += elapsed
            stats.warm_requests += warm_n
            stats.warm_iterations += warm_iters
            stats.cold_requests += cold_n
            stats.cold_iterations += cold_iters

    def __repr__(self) -> str:
        return (
            f"IKServer(max_batch_size={self.config.max_batch_size}, "
            f"max_wait_ms={self.config.max_wait_ms}, "
            f"dispatch_workers={self.config.dispatch_workers}, "
            f"adaptive={self.config.adaptive}, "
            f"on_error={self.config.on_error!r}, "
            f"queue_depth={self.queue_depth})"
        )
