"""Typed execution policy: :class:`KernelSpec` and :class:`ExecutionOptions`.

The kernel layer, the process pool, the failure policies and the resilience
pipeline each grew their own keyword on every entry point (``kernel=``,
``workers=``, ``timeout=``, ``on_error=``, ``resilience=``), and the
compaction/dtype axes added here would have made it seven.  This module
replaces the kwarg sprawl with two small frozen dataclasses that every
entry point (``api.solve`` / ``api.solve_batch`` / ``api.serve``,
``make_batch_solver``, :class:`~repro.workloads.suite.EvaluationSuite`, the
CLI) accepts as a single ``options=`` argument:

* :class:`KernelSpec` — *how one FK/Jacobian evaluation runs*: kernel mode
  (``"scalar"`` / ``"vectorized"``), floating-point dtype (``"float64"`` /
  ``"float32"``), and the FK chunk size.  ``None`` fields inherit whatever
  the chain was built with, so ``KernelSpec(name="vectorized")`` is exactly
  the old ``kernel="vectorized"``.
* :class:`ExecutionOptions` — *how a solve call executes*: the kernel spec,
  process sharding (``workers`` / ``timeout``), failure policy
  (``on_error`` / ``resilience``), and the lock-step engines' active-set
  ``compaction`` toggle.

The legacy keywords keep working as deprecated aliases: each entry point
normalises them into an :class:`ExecutionOptions` via :meth:`from_legacy`,
which emits one :class:`DeprecationWarning` per (call site, keyword) pair
per process — enough to steer migrations without drowning a batch loop in
warnings.  Passing ``options=`` *and* a legacy keyword is an error (the
call would otherwise have two sources of truth).

See ``docs/performance.md`` for the full keyword → field mapping.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.kinematics.kernels import (
    DEFAULT_KERNEL,
    KERNEL_MODES,
    resolve_kernel_mode,
)

__all__ = [
    "KernelSpec",
    "ExecutionOptions",
    "ON_ERROR_MODES",
    "KERNEL_DTYPES",
    "resolve_kernel_dtype",
    "warn_legacy_kwarg",
    "reset_legacy_warnings",
]

#: Batch failure policies (canonical home; re-exported by
#: :mod:`repro.parallel.pool` for compatibility).
ON_ERROR_MODES = ("raise", "skip", "fallback")

#: Floating-point dtypes the kernel layer supports.  ``float64`` is the
#: oracle precision; ``float32`` mirrors the IKAcc datapath (the accelerator
#: computes in single precision) and trades ~1e-7 m of FK accuracy for
#: bandwidth — see ``docs/performance.md`` for the measured bound.
KERNEL_DTYPES = ("float64", "float32")


def resolve_kernel_dtype(dtype: Any) -> str | None:
    """Canonicalise a kernel dtype (``None`` means "inherit the chain's").

    Accepts the canonical strings, numpy dtypes or scalar types
    (``np.float32``), and returns ``"float64"`` / ``"float32"``.
    """
    if dtype is None:
        return None
    name = np.dtype(dtype).name
    if name not in KERNEL_DTYPES:
        known = ", ".join(KERNEL_DTYPES)
        raise ValueError(f"unknown kernel dtype {dtype!r}; known dtypes: {known}")
    return name


@dataclass(frozen=True)
class KernelSpec:
    """How one FK/Jacobian evaluation runs: kernel mode × dtype × chunk.

    Every field defaults to ``None`` = "inherit from the chain", so a spec
    only pins the axes the caller cares about.  Hashable (it rides inside
    :class:`~repro.core.result.SolverConfig`, which keys the serving layer's
    coalescing groups).

    Parameters
    ----------
    name:
        Kernel mode: ``"scalar"`` (the bit-exact oracle) or ``"vectorized"``
        (the stacked-matmul fast path).
    dtype:
        ``"float64"`` or ``"float32"``.  Accepts numpy dtypes; stored
        canonically as the string.
    chunk:
        FK rows per chunked sweep call in the lock-step engines; ``None``
        picks the per-kernel default (128 scalar / 8192 vectorized).
    """

    name: str | None = None
    dtype: str | None = None
    chunk: int | None = None

    def __post_init__(self) -> None:
        if self.name is not None:
            object.__setattr__(self, "name", resolve_kernel_mode(self.name))
        object.__setattr__(self, "dtype", resolve_kernel_dtype(self.dtype))
        if self.chunk is not None:
            if int(self.chunk) < 1:
                raise ValueError("chunk must be >= 1")
            object.__setattr__(self, "chunk", int(self.chunk))

    @classmethod
    def coerce(cls, value: "KernelSpec | str | None") -> "KernelSpec | None":
        """Normalise ``kernel=`` inputs: a spec, a mode name, or
        ``"mode:dtype"`` shorthand (e.g. ``"vectorized:float32"``)."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            name, _, dtype = value.partition(":")
            return cls(name=name or None, dtype=dtype or None)
        raise TypeError(
            f"kernel must be a KernelSpec, a mode name ({', '.join(KERNEL_MODES)})"
            f" or 'mode:dtype', got {type(value).__name__}"
        )

    def apply(self, chain):
        """Return ``chain`` computing under this spec (``self`` fields that
        are ``None`` inherit the chain's current mode/dtype)."""
        if self.name is not None and chain.kernel != self.name:
            chain = chain.with_kernel(self.name)
        if self.dtype is not None and chain.dtype != np.dtype(self.dtype):
            chain = chain.astype(self.dtype)
        return chain

    @property
    def label(self) -> str:
        """Compact ``mode/dtype`` label for benchmarks and traces."""
        return (
            f"{self.name or DEFAULT_KERNEL}/"
            f"{self.dtype or 'float64'}"
        )


@dataclass(frozen=True)
class ExecutionOptions:
    """How a solve call executes: kernel, sharding, failure policy.

    One frozen object replacing the ``kernel=`` / ``workers=`` /
    ``timeout=`` / ``on_error=`` / ``resilience=`` keyword sprawl.  All
    defaults reproduce the historical behaviour of each entry point.

    Parameters
    ----------
    kernel:
        A :class:`KernelSpec`, a kernel-mode string, or ``"mode:dtype"``.
    workers:
        Shard batches across this many subprocesses
        (:class:`~repro.parallel.ShardedBatchSolver`); ``None`` runs inline.
    timeout:
        Wall-clock bound (seconds) on one pooled batch.
    on_error:
        Failure policy: ``"raise"`` / ``"skip"`` / ``"fallback"``.
    resilience:
        :class:`~repro.resilience.ResilienceConfig` (or ``True`` for the
        stock policy) enabling guards/watchdogs/fallback chains.
    compaction:
        Lock-step engines' active-set compaction: ``None`` (auto — on),
        ``True``, or ``False`` (keep the gather/scatter-per-iteration
        layout; useful for A/B conformance runs).
    """

    kernel: "KernelSpec | None" = None
    workers: int | None = None
    timeout: float | None = None
    on_error: str = "raise"
    resilience: Any = None
    compaction: bool | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", KernelSpec.coerce(self.kernel))
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError("workers must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.on_error not in ON_ERROR_MODES:
            known = ", ".join(ON_ERROR_MODES)
            raise ValueError(
                f"unknown on_error mode {self.on_error!r}; known: {known}"
            )

    @property
    def needs_sharding(self) -> bool:
        """Whether these options route a batch through the sharded solver
        (mirrors the historical ``make_batch_solver`` dispatch)."""
        return (
            self.workers is not None
            or self.on_error != "raise"
            or bool(self.resilience)
        )

    def resolved_resilience(self):
        """``resilience`` with the ``True`` shorthand expanded."""
        if self.resilience is True:
            from repro.resilience import ResilienceConfig

            return ResilienceConfig()
        if self.resilience is False:
            return None
        return self.resilience

    def merged(self, **overrides: Any) -> "ExecutionOptions":
        """Copy with ``overrides`` applied (``dataclasses.replace`` sugar)."""
        return replace(self, **overrides)

    @classmethod
    def from_legacy(
        cls,
        options: "ExecutionOptions | None",
        site: str,
        *,
        kernel: Any = None,
        workers: int | None = None,
        timeout: float | None = None,
        on_error: str | None = None,
        resilience: Any = None,
        compaction: bool | None = None,
        warn: bool = True,
    ) -> "ExecutionOptions":
        """Normalise one call's ``options=`` + legacy keywords.

        ``None`` legacy values mean "not passed".  With ``options`` set, any
        legacy keyword is an error (two sources of truth); without it, the
        legacy values build the options object, each emitting one
        :class:`DeprecationWarning` per (site, keyword) per process when
        ``warn`` is true.
        """
        legacy = {
            name: value
            for name, value in (
                ("kernel", kernel),
                ("workers", workers),
                ("timeout", timeout),
                ("on_error", on_error),
                ("resilience", resilience),
                ("compaction", compaction),
            )
            if value is not None
        }
        if options is not None:
            if not isinstance(options, cls):
                raise TypeError(
                    f"options must be ExecutionOptions, got {type(options).__name__}"
                )
            if legacy:
                raise ValueError(
                    f"{site}: pass either options= or the legacy "
                    f"{sorted(legacy)} keyword(s), not both"
                )
            return options
        if not legacy:
            return cls()
        if warn:
            for name in sorted(legacy):
                warn_legacy_kwarg(site, name)
        return cls(
            kernel=legacy.get("kernel"),
            workers=legacy.get("workers"),
            timeout=legacy.get("timeout"),
            on_error=legacy.get("on_error", "raise"),
            resilience=legacy.get("resilience"),
            compaction=legacy.get("compaction"),
        )


# ----------------------------------------------------------------------
# Deprecation bookkeeping: one warning per (call site, keyword) per process
# ----------------------------------------------------------------------

_warned: set[tuple[str, str]] = set()


def warn_legacy_kwarg(site: str, name: str) -> None:
    """Emit the once-per-process deprecation warning for a legacy keyword."""
    key = (site, name)
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"{site}: the {name!r} keyword is deprecated; pass "
        f"options=ExecutionOptions({name}=...) instead "
        f"(kernel mode/dtype/chunk go in options.kernel=KernelSpec(...); "
        f"see docs/performance.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_legacy_warnings() -> None:
    """Forget which legacy keywords have warned (test isolation hook)."""
    _warned.clear()
