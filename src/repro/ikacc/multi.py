"""Multi-problem throughput mode: pipelining IK solves through IKAcc.

The paper evaluates *latency* (one target at a time); a deployed controller
or a motion planner batches many targets.  Within one problem the iterations
are strictly sequential (the SPU needs the previous iteration's winner), but
the SPU and the SSU array are *different units* — so with two or more
problems in flight, problem B's serial block can run while problem A's waves
occupy the SSU array.  This module models that cross-problem pipelining:

* functional results come from the ordinary per-problem simulator (the
  answers are exactly the latency-mode answers);
* the **makespan** of the batch is the two-stage pipeline bound
  ``max(total_SPU, total_waves) + fill`` instead of the serial sum —
  both units stay busy whenever at least two problems remain unfinished.

The model assumes double-buffered broadcast registers (a wave's inputs are
latched while the SPU writes the next problem's outputs), which costs one
extra register set in the scheduler — negligible area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import SolverConfig
from repro.ikacc.accelerator import IKAccRunResult, IKAccSimulator
from repro.ikacc.config import IKAccConfig
from repro.kinematics.chain import KinematicChain

__all__ = ["ThroughputReport", "MultiProblemIKAcc"]


@dataclass
class ThroughputReport:
    """Timing of a batch of solves in latency vs pipelined mode."""

    problems: int
    total_iterations: int
    serial_cycles: int  # one problem after another (latency mode)
    pipelined_cycles: int  # SPU overlapped with the SSU array
    frequency_hz: float
    results: list[IKAccRunResult] = field(repr=False, default_factory=list)

    @property
    def speedup(self) -> float:
        """Throughput gain of pipelining the batch."""
        if self.pipelined_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.pipelined_cycles

    @property
    def serial_seconds(self) -> float:
        """Latency-mode batch time."""
        return self.serial_cycles / self.frequency_hz

    @property
    def pipelined_seconds(self) -> float:
        """Pipelined batch time."""
        return self.pipelined_cycles / self.frequency_hz

    @property
    def solves_per_second(self) -> float:
        """Pipelined throughput."""
        if self.pipelined_seconds <= 0.0:
            return float("inf")
        return self.problems / self.pipelined_seconds


class MultiProblemIKAcc:
    """Throughput-mode wrapper around :class:`IKAccSimulator`."""

    def __init__(
        self,
        chain: KinematicChain,
        config: IKAccConfig | None = None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.simulator = IKAccSimulator(
            chain, config=config, solver_config=solver_config
        )

    def _stage_cycles(self) -> tuple[int, int]:
        """Per-iteration cycles of the two pipeline stages (SPU, wave side)."""
        sim = self.simulator
        spu = sim.spu.cycles_per_iteration()
        waves = 0
        for wave in sim.scheduler.waves():
            waves += sim.scheduler.broadcast_cycles()
            waves += sim.ssu.cycles_per_speculation()
            waves += sim.selector.cycles_per_wave(wave.occupancy)
        return spu, waves

    def run(
        self,
        targets: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> ThroughputReport:
        """Solve a batch of targets; report latency vs pipelined timing.

        The per-problem *answers* (and their latency-mode cycle counts,
        including early-exit wave savings) come from real simulator runs; the
        pipelined makespan uses the full-iteration stage times — a slightly
        conservative bound, since early exits only shorten the wave stage.
        """
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if rng is None:
            rng = np.random.default_rng()
        results = [self.simulator.solve(t, rng=rng) for t in targets]
        total_iterations = sum(r.iterations for r in results)
        serial_cycles = sum(r.cycles for r in results)

        spu, waves = self._stage_cycles()
        if total_iterations == 0:
            pipelined = serial_cycles
        else:
            busy_spu = total_iterations * spu
            busy_waves = total_iterations * waves
            # Two-stage pipeline over `total_iterations` jobs: the slower
            # stage bounds the makespan; the faster stage's single-job time
            # is the fill/drain cost.  Init FKs (one per problem) run on the
            # otherwise-idle SSU side before each problem's first iteration
            # and are already inside busy_waves' slack for batches >= 2, but
            # we charge them explicitly to stay conservative.
            init = sum(r.cycle_breakdown.get("init", 0) for r in results)
            pipelined = max(busy_spu, busy_waves) + min(spu, waves) + init
            pipelined = min(pipelined, serial_cycles)  # never worse than serial
        return ThroughputReport(
            problems=len(results),
            total_iterations=total_iterations,
            serial_cycles=serial_cycles,
            pipelined_cycles=int(pipelined),
            frequency_hz=self.simulator.config.frequency_hz,
            results=results,
        )
