"""IKAcc hardware configuration: unit counts, clock, datapath latencies.

The defaults encode the paper's evaluated design point (Section 6.3):

* 32 Speculative Search Units (SSU) serving 64 software speculations, so the
  Parallel Search Scheduler issues **two waves** per iteration;
* 1 GHz clock in a 65 nm process at 1.1 V (Table 3);
* a 4x4 matrix-multiply block that finishes in "tens of cycles" using a small
  number of multipliers/adders (Section 5.2 — the HLS-generated block), which
  we default to 24 cycles;
* a 4-stage SPU pipeline (``i-1TiC -> 1TiC -> JiC -> JJTEC``, Figure 3) whose
  initiation interval is one matmul-block latency.

Latencies are per-operation cycle counts for the float32 datapath; they feed
both the cycle-accurate timing model and the power model's activity factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DatapathTiming", "IKAccConfig"]


@dataclass(frozen=True)
class DatapathTiming:
    """Cycle latencies of the float32 functional units.

    ``matmul4`` is the latency of the HLS-generated 4x4 matrix-multiply block
    (64 multiplies + 48 adds folded onto a few units — "tens of cycles").
    ``sincos`` is a CORDIC-style unit evaluating sin and cos together.
    """

    mul: int = 3
    add: int = 2
    div: int = 12
    sqrt: int = 12
    sincos: int = 20
    compare: int = 1
    matmul4: int = 24

    def __post_init__(self) -> None:
        for name in ("mul", "add", "div", "sqrt", "sincos", "compare", "matmul4"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} latency must be >= 1 cycle")


@dataclass(frozen=True)
class IKAccConfig:
    """Full accelerator configuration.

    Parameters
    ----------
    n_ssus:
        Physical Speculative Search Units (``MaxSSUs``).  The paper's design
        has 32.
    speculations:
        Software speculation count (``Max``); when it exceeds ``n_ssus`` the
        scheduler runs multiple waves (the paper runs 64 over 32 -> 2 waves).
    frequency_hz:
        Clock frequency (paper: 1 GHz).
    timing:
        Functional-unit latencies.
    spu_pipelined:
        When true the SPU runs the fused four-stage pipeline of Figure 3;
        when false it executes the four per-joint loops back to back (the
        "original process flow" of Figure 3a) — the ablation knob.
    broadcast_latency:
        Cycles for the Parallel Search Scheduler to broadcast
        ``theta, dtheta_base, alpha_base`` to the SSUs per wave.
    dtype:
        Numpy dtype of the datapath (the silicon uses float32).
    kernel:
        FK/Jacobian kernel mode for the functional model (see
        :mod:`repro.kinematics.kernels`): ``None`` (the default) inherits
        the chain's kernel, ``"scalar"`` / ``"vectorized"`` force one.  The
        *timing* model is unaffected — it prices the silicon's sequential
        datapath either way.
    """

    n_ssus: int = 32
    speculations: int = 64
    frequency_hz: float = 1.0e9
    timing: DatapathTiming = field(default_factory=DatapathTiming)
    spu_pipelined: bool = True
    broadcast_latency: int = 4
    dtype: str = "float32"
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.n_ssus < 1:
            raise ValueError("n_ssus must be >= 1")
        if self.speculations < 1:
            raise ValueError("speculations must be >= 1")
        if self.frequency_hz <= 0.0:
            raise ValueError("frequency_hz must be positive")
        if self.broadcast_latency < 0:
            raise ValueError("broadcast_latency must be >= 0")
        if self.kernel is not None:
            from repro.kinematics.kernels import resolve_kernel_mode

            resolve_kernel_mode(self.kernel)

    @property
    def waves_per_iteration(self) -> int:
        """Scheduler waves needed to serve all speculations (ceil division)."""
        return -(-self.speculations // self.n_ssus)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the configured clock."""
        return cycles / self.frequency_hz
