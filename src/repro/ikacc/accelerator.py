"""IKAcc top level: the cycle-level accelerator simulator.

Ties together the four modules of Figure 2 — Serial Process Unit, the SSU
array, the Parallel Search Scheduler and the Parameter Selector — into a
functional simulator that *actually solves* the IK problem (float32 datapath)
while accounting cycles, operations, energy and power.

Timing of one iteration::

    SPU (pipelined serial block)
    for each wave:                         # ceil(Max / MaxSSUs) waves
        broadcast theta/dtheta/alpha       # scheduler
        SSU array latency (lock-step)      # one speculative search
        selector tree merge
    (early exit: a wave whose best candidate met the threshold ends both the
     wave loop and the solve, exactly like Algorithm 1 lines 12-13)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import SolverConfig
from repro.ikacc.config import IKAccConfig
from repro.ikacc.opcounts import OpCounts
from repro.ikacc.power import IKAccPowerModel
from repro.ikacc.scheduler import ParallelSearchScheduler
from repro.ikacc.selector import ParameterSelector, SelectionState
from repro.ikacc.spu import SerialProcessUnit
from repro.ikacc.ssu import SpeculativeSearchUnit
from repro.kinematics.chain import KinematicChain
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = ["IKAccRunResult", "IKAccSimulator"]


@dataclass
class IKAccRunResult:
    """Outcome of one IK solve on the simulated accelerator."""

    q: np.ndarray
    converged: bool
    iterations: int
    error: float
    cycles: int
    seconds: float
    ops: OpCounts
    energy_j: float
    average_power_w: float
    waves_executed: int
    cycle_breakdown: dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "FAILED"
        return (
            f"IKAcc: {status} in {self.iterations} iterations / "
            f"{self.cycles} cycles = {self.seconds * 1e3:.4f} ms, "
            f"energy {self.energy_j * 1e3:.4f} mJ"
        )


class IKAccSimulator:
    """Cycle-level functional simulator of the IKAcc accelerator.

    Parameters
    ----------
    chain:
        Manipulator (converted internally to the float32 datapath).
    config:
        Hardware configuration (default: the paper's 32-SSU / 64-speculation
        design at 1 GHz).
    solver_config:
        Convergence policy (paper defaults: 1e-2 m, 10k iterations).
    power_model:
        Area/energy model; a default one is built from ``config``.
    """

    def __init__(
        self,
        chain: KinematicChain,
        config: IKAccConfig | None = None,
        solver_config: SolverConfig | None = None,
        power_model: IKAccPowerModel | None = None,
    ) -> None:
        self.chain = chain
        self.config = config or IKAccConfig()
        self.solver_config = solver_config or SolverConfig()
        self.spu = SerialProcessUnit(chain, self.config)
        self.ssu = SpeculativeSearchUnit(chain, self.config)
        self.scheduler = ParallelSearchScheduler(self.config)
        self.selector = ParameterSelector(self.config)
        self.power_model = power_model or IKAccPowerModel(self.config)
        self.scheduler.validate()

    # ------------------------------------------------------------------
    # Static timing queries (used by Table 2 and the design-space example)
    # ------------------------------------------------------------------

    def cycles_per_full_iteration(self) -> int:
        """Latency of one iteration when no wave exits early."""
        cycles = self.spu.cycles_per_iteration()
        for wave in self.scheduler.waves():
            cycles += self.scheduler.broadcast_cycles()
            cycles += self.ssu.cycles_per_speculation()
            cycles += self.selector.cycles_per_wave(wave.occupancy)
        return cycles

    def seconds_per_full_iteration(self) -> float:
        """:meth:`cycles_per_full_iteration` at the configured clock."""
        return self.config.cycles_to_seconds(self.cycles_per_full_iteration())

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------

    def solve(
        self,
        target: np.ndarray,
        q0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
    ) -> IKAccRunResult:
        """Run the accelerator on one target position."""
        target = np.asarray(target, dtype=float)
        if target.shape != (3,):
            raise ValueError(f"target must be a 3-vector, got shape {target.shape}")
        if rng is None:
            rng = np.random.default_rng()
        if q0 is None:
            q = self.chain.random_configuration(rng)
        else:
            q = np.asarray(q0, dtype=float).copy()
        q = q.astype(self.ssu.fku.chain32.dtype)

        tr = tracer if tracer is not None else get_tracer()
        traced = tr.enabled
        wall_start = time.perf_counter()
        tolerance = self.solver_config.tolerance
        breakdown = {"spu": 0, "ssu": 0, "scheduler": 0, "selector": 0, "init": 0}
        ops = OpCounts()

        # Initial FK to seed the error check (one FKU evaluation).
        position, fk_report = self.ssu.fku.run(q)
        breakdown["init"] += fk_report.cycles
        ops = ops + fk_report.ops
        error = float(np.linalg.norm(target - position.astype(float)))
        if traced:
            tr.solve_start(
                "IKAcc", self.chain.dof, target=target,
                speculations=self.config.speculations, n_ssus=self.config.n_ssus,
            )
            tr.count("fk_evaluations")

        iterations = 0
        waves_executed = 0
        while error >= tolerance and iterations < self.solver_config.max_iterations:
            spu_result = self.spu.run(q, target)
            breakdown["spu"] += spu_result.cycles
            ops = ops + spu_result.ops

            state = SelectionState()
            wave_index = 0
            for wave in self.scheduler.waves():
                breakdown["scheduler"] += self.scheduler.broadcast_cycles()
                results = self.ssu.run_wave(
                    np.array(wave.speculation_indices),
                    q,
                    spu_result.dtheta_base,
                    spu_result.alpha_base,
                    target,
                    tolerance,
                )
                breakdown["ssu"] += self.ssu.cycles_per_speculation()
                for result in results:
                    ops = ops + result.ops
                self.selector.merge_wave(state, results)
                waves_executed += 1
                wave_index += 1
                if traced:
                    tr.count("fk_evaluations", wave.occupancy)
                    tr.count("candidate_evaluations", wave.occupancy)
                    tr.speculation_wave(
                        wave_index,
                        wave.occupancy,
                        iteration=iterations + 1,
                        hit=state.hit is not None,
                        broadcast_cycles=self.scheduler.broadcast_cycles(),
                        ssu_cycles=self.ssu.cycles_per_speculation(),
                    )
                if state.hit is not None:
                    break  # threshold met: skip the remaining waves
            breakdown["selector"] += state.cycles

            winner = self.selector.outcome(state)
            q = winner.q
            error = winner.error
            iterations += 1
            if traced:
                tr.count("jacobian_builds")
                tr.iteration(
                    iterations,
                    error,
                    spu_cycles=spu_result.cycles,
                    selector_cycles=state.cycles,
                    waves=wave_index,
                )

        cycles = sum(breakdown.values())
        seconds = self.config.cycles_to_seconds(cycles)
        energy = self.power_model.energy_j(ops, seconds)
        if traced:
            tr.solve_end(
                "IKAcc",
                converged=bool(error < tolerance),
                iterations=iterations,
                error=error,
                cycles=cycles,
                seconds=seconds,
                energy_j=energy,
                waves_executed=waves_executed,
                wall_time=time.perf_counter() - wall_start,
            )
        return IKAccRunResult(
            q=q.astype(float),
            converged=bool(error < tolerance),
            iterations=iterations,
            error=error,
            cycles=cycles,
            seconds=seconds,
            ops=ops,
            energy_j=energy,
            average_power_w=energy / seconds if seconds > 0.0 else 0.0,
            waves_executed=waves_executed,
            cycle_breakdown=breakdown,
            wall_time=time.perf_counter() - wall_start,
        )

    def solve_batch(
        self,
        targets: np.ndarray,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
    ) -> list[IKAccRunResult]:
        """Solve several targets (fresh random restart each)."""
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if rng is None:
            rng = np.random.default_rng()
        return [self.solve(t, rng=rng, tracer=tracer) for t in targets]
