"""Speculative Search Unit (SSU) — one per concurrent speculation.

Each SSU (Figure 2) receives the broadcast ``theta, dtheta_base, alpha_base``
and a speculation index ``k``, then

1. generates ``alpha_k = (k/Max) alpha_base`` (the ``k/Max`` reciprocals are
   constants from a small ROM, so this is one multiply);
2. forms ``theta_k = theta + alpha_k dtheta_base`` with a MAC that streams one
   joint per cycle, running just ahead of the FKU's consumption;
3. evaluates ``X_k = f(theta_k)`` on its FKU;
4. computes ``error_k = ||X_t - X_k||`` and compares it to the threshold.

All SSUs in a wave run in lock-step on identical work, so a wave's latency is
a single SSU's latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ikacc.config import IKAccConfig
from repro.ikacc.fku import ForwardKinematicsUnit
from repro.ikacc.opcounts import OpCounts, error_ops, fk_ops, speculation_update_ops
from repro.kinematics.chain import KinematicChain

__all__ = ["SSUResult", "SpeculativeSearchUnit"]


@dataclass(frozen=True)
class SSUResult:
    """One speculation's outcome."""

    k: int
    alpha: float
    q: np.ndarray
    position: np.ndarray
    error: float
    below_threshold: bool
    cycles: int
    ops: OpCounts


class SpeculativeSearchUnit:
    """Cycle-level functional model of one SSU (and its FKU)."""

    def __init__(self, chain: KinematicChain, config: IKAccConfig) -> None:
        self.config = config
        self.fku = ForwardKinematicsUnit(chain, config)
        self._dtype = self.fku.chain32.dtype

    def cycles_per_speculation(self) -> int:
        """Latency of one speculative search on one SSU.

        The theta-update MAC streams ahead of the FKU, so only its first
        element (one mul + one add) is exposed; the error evaluation adds a
        short epilogue (3 subs, squared norm, sqrt, compare).
        """
        timing = self.config.timing
        alpha_gen = timing.mul
        theta_fill = timing.mul + timing.add
        error_tail = (
            3 * timing.add  # X_t - X_k
            + 3 * timing.mul
            + 2 * timing.add  # squared norm
            + timing.sqrt
            + timing.compare
        )
        return alpha_gen + theta_fill + self.fku.cycles_per_fk() + error_tail

    def run(
        self,
        k: int,
        theta: np.ndarray,
        dtheta_base: np.ndarray,
        alpha_base: float,
        target: np.ndarray,
        threshold: float,
    ) -> SSUResult:
        """Execute speculation ``k`` (1-based, Algorithm 1 lines 7-13)."""
        if not 1 <= k <= self.config.speculations:
            raise ValueError(
                f"speculation index {k} outside 1..{self.config.speculations}"
            )
        dtype = self._dtype
        alpha_k = dtype.type(k / self.config.speculations) * dtype.type(alpha_base)
        q_k = np.asarray(theta, dtype=dtype) + alpha_k * np.asarray(
            dtheta_base, dtype=dtype
        )
        position, fk_report = self.fku.run(q_k)
        error = float(
            np.sqrt(np.sum((np.asarray(target, dtype=dtype) - position) ** 2))
        )
        ops = speculation_update_ops(self.fku.dof) + fk_report.ops + error_ops()
        return SSUResult(
            k=k,
            alpha=float(alpha_k),
            q=q_k,
            position=position,
            error=error,
            below_threshold=error < threshold,
            cycles=self.cycles_per_speculation(),
            ops=ops,
        )

    def run_wave(
        self,
        ks: np.ndarray,
        theta: np.ndarray,
        dtheta_base: np.ndarray,
        alpha_base: float,
        target: np.ndarray,
        threshold: float,
    ) -> list[SSUResult]:
        """Vectorised helper: run several speculation indices functionally.

        Timing-wise this is what *one wave across many SSUs* does — the
        caller charges a single :meth:`cycles_per_speculation` for the wave.
        """
        dtype = self._dtype
        chain32 = self.fku.chain32
        ks = np.asarray(ks, dtype=int)
        alphas = (
            ks.astype(dtype) / dtype.type(self.config.speculations)
        ) * dtype.type(alpha_base)
        candidates = np.asarray(theta, dtype=dtype)[None, :] + alphas[:, None] * (
            np.asarray(dtheta_base, dtype=dtype)[None, :]
        )
        positions = chain32.end_positions_batch(candidates)
        deltas = np.asarray(target, dtype=dtype)[None, :] - positions
        errors = np.sqrt(np.sum(deltas**2, axis=1))
        per_spec_ops = (
            speculation_update_ops(self.fku.dof) + fk_ops(self.fku.dof) + error_ops()
        )
        return [
            SSUResult(
                k=int(ks[i]),
                alpha=float(alphas[i]),
                q=candidates[i],
                position=positions[i],
                error=float(errors[i]),
                below_threshold=float(errors[i]) < threshold,
                cycles=self.cycles_per_speculation(),
                ops=per_spec_ops,
            )
            for i in range(ks.size)
        ]
