"""Datapath precision analysis: float32 silicon vs float64 reference.

IKAcc computes in single precision.  The paper's accuracy constraint is
1e-2 m, about six orders of magnitude above float32 round-off for metre-scale
chains, so precision never limits convergence — this module quantifies that
claim (and provides the ablation data for ``bench_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kinematics.chain import KinematicChain

__all__ = ["PrecisionReport", "fk_precision_report", "precision_margin"]


@dataclass(frozen=True)
class PrecisionReport:
    """Statistics of the float32 FK error against the float64 reference."""

    dof: int
    samples: int
    max_error_m: float
    mean_error_m: float
    p99_error_m: float

    def margin_vs(self, tolerance: float) -> float:
        """How many times smaller the worst FK round-off is than a solver
        tolerance (large is good)."""
        if self.max_error_m <= 0.0:
            return float("inf")
        return tolerance / self.max_error_m


def fk_precision_report(
    chain: KinematicChain,
    samples: int = 256,
    rng: np.random.Generator | None = None,
) -> PrecisionReport:
    """Sample random configurations and compare float32 vs float64 FK."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    chain64 = chain if chain.dtype == np.float64 else chain.astype(np.float64)
    chain32 = chain.astype(np.float32)
    qs = np.stack([chain64.random_configuration(rng) for _ in range(samples)])
    positions64 = chain64.end_positions_batch(qs)
    positions32 = chain32.end_positions_batch(qs.astype(np.float32)).astype(np.float64)
    errors = np.linalg.norm(positions64 - positions32, axis=1)
    return PrecisionReport(
        dof=chain.dof,
        samples=samples,
        max_error_m=float(errors.max()),
        mean_error_m=float(errors.mean()),
        p99_error_m=float(np.percentile(errors, 99)),
    )


def precision_margin(
    chain: KinematicChain,
    tolerance: float = 1e-2,
    samples: int = 256,
    rng: np.random.Generator | None = None,
) -> float:
    """Safety factor between the solver tolerance and float32 FK round-off."""
    return fk_precision_report(chain, samples=samples, rng=rng).margin_vs(tolerance)
