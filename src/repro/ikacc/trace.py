"""Cycle-level execution traces of the accelerator (Gantt-style timelines).

Renders how one Quick-IK iteration flows through IKAcc's units — the SPU's
serial block, the scheduler broadcasts, the SSU-array waves and the selector
merges — as a structured event list, an ASCII Gantt chart, or SVG.  Useful to
*see* the Figure-2/Figure-3 microarchitecture at work (and to debug timing
changes: the total of a trace always equals the simulator's
``cycles_per_full_iteration``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ikacc.accelerator import IKAccSimulator

__all__ = [
    "TraceEvent",
    "IterationTrace",
    "trace_iteration",
    "trace_from_telemetry",
    "render_gantt",
]


@dataclass(frozen=True)
class TraceEvent:
    """One busy interval of one unit; cycles are iteration-relative."""

    unit: str
    start: int
    end: int
    label: str

    @property
    def duration(self) -> int:
        """Busy cycles."""
        return self.end - self.start


@dataclass
class IterationTrace:
    """Timeline of one full (no-early-exit) iteration."""

    dof: int
    events: list[TraceEvent]
    total_cycles: int

    def unit_names(self) -> list[str]:
        """Distinct units in first-appearance order."""
        seen: list[str] = []
        for event in self.events:
            if event.unit not in seen:
                seen.append(event.unit)
        return seen

    def busy_cycles(self, unit: str) -> int:
        """Total busy cycles of one unit."""
        return sum(e.duration for e in self.events if e.unit == unit)

    def utilisation(self, unit: str) -> float:
        """Busy fraction of one unit over the iteration."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles(unit) / self.total_cycles


def trace_iteration(sim: IKAccSimulator) -> IterationTrace:
    """Build the unit-level timeline of one full iteration of ``sim``.

    The schedule is the same serial composition the simulator charges:
    SPU -> per wave (broadcast -> SSU array -> selector merge).
    """
    events: list[TraceEvent] = []
    cursor = 0

    spu_cycles = sim.spu.cycles_per_iteration()
    events.append(TraceEvent("SPU", cursor, cursor + spu_cycles, "serial block"))
    cursor += spu_cycles

    ssu_cycles = sim.ssu.cycles_per_speculation()
    for wave in sim.scheduler.waves():
        broadcast = sim.scheduler.broadcast_cycles()
        if broadcast:
            events.append(
                TraceEvent(
                    "scheduler",
                    cursor,
                    cursor + broadcast,
                    f"broadcast wave {wave.index}",
                )
            )
            cursor += broadcast
        events.append(
            TraceEvent(
                "SSU array",
                cursor,
                cursor + ssu_cycles,
                f"wave {wave.index}: k={wave.speculation_indices[0]}"
                f"..{wave.speculation_indices[-1]}",
            )
        )
        cursor += ssu_cycles
        select = sim.selector.cycles_per_wave(wave.occupancy)
        events.append(
            TraceEvent(
                "selector", cursor, cursor + select, f"merge wave {wave.index}"
            )
        )
        cursor += select

    return IterationTrace(dof=sim.chain.dof, events=events, total_cycles=cursor)


def trace_from_telemetry(
    events: list[dict], iteration: int = 1
) -> IterationTrace:
    """Rebuild one iteration's timeline from recorded telemetry events.

    ``events`` is a telemetry event stream — the dicts collected by a
    :class:`~repro.telemetry.SummaryTracer` or parsed back from a JSONL trace
    (:func:`~repro.telemetry.read_jsonl_trace`) of an
    :meth:`~repro.ikacc.accelerator.IKAccSimulator.solve` run.  Unlike
    :func:`trace_iteration`, which charges the static no-early-exit
    schedule, this reconstructs what the chosen iteration *actually*
    executed, including wave early exits.
    """
    starts = [e for e in events if e["event"] == "solve_start"]
    dof = int(starts[0]["dof"]) if starts else 0
    iteration_events = [
        e for e in events
        if e["event"] == "iteration" and e["index"] == iteration
    ]
    if not iteration_events:
        raise ValueError(f"no telemetry for iteration {iteration}")
    summary = iteration_events[0]
    waves = [
        e for e in events
        if e["event"] == "speculation_wave" and e.get("iteration") == iteration
    ]

    timeline: list[TraceEvent] = []
    cursor = 0
    spu_cycles = int(summary.get("spu_cycles", 0))
    timeline.append(TraceEvent("SPU", cursor, cursor + spu_cycles, "serial block"))
    cursor += spu_cycles
    for wave in waves:
        broadcast = int(wave.get("broadcast_cycles", 0))
        if broadcast:
            timeline.append(
                TraceEvent(
                    "scheduler",
                    cursor,
                    cursor + broadcast,
                    f"broadcast wave {wave['wave']}",
                )
            )
            cursor += broadcast
        ssu_cycles = int(wave.get("ssu_cycles", 0))
        label = f"wave {wave['wave']}: {wave['occupancy']} candidates"
        if wave.get("hit"):
            label += " (hit)"
        timeline.append(
            TraceEvent("SSU array", cursor, cursor + ssu_cycles, label)
        )
        cursor += ssu_cycles
    selector_cycles = int(summary.get("selector_cycles", 0))
    if selector_cycles:
        timeline.append(
            TraceEvent(
                "selector", cursor, cursor + selector_cycles, "merge + outcome"
            )
        )
        cursor += selector_cycles
    return IterationTrace(dof=dof, events=timeline, total_cycles=cursor)


def render_gantt(trace: IterationTrace, width: int = 72) -> str:
    """ASCII Gantt chart of an iteration trace.

    One row per unit, ``#`` for busy cycles, with the cycle scale on top.
    """
    if width < 20:
        raise ValueError("width must be >= 20")
    scale = trace.total_cycles / width if trace.total_cycles else 1.0
    units = trace.unit_names()
    label_width = max(len(u) for u in units) + 2
    lines = [
        f"one Quick-IK iteration on IKAcc ({trace.dof} DOF): "
        f"{trace.total_cycles} cycles",
        " " * label_width
        + "0"
        + " " * (width - len(str(trace.total_cycles)) - 1)
        + str(trace.total_cycles),
    ]
    for unit in units:
        row = [" "] * width
        for event in trace.events:
            if event.unit != unit:
                continue
            start = int(event.start / scale)
            end = max(start + 1, int(event.end / scale))
            for i in range(start, min(end, width)):
                row[i] = "#"
        busy = trace.utilisation(unit)
        lines.append(f"{unit.ljust(label_width)}{''.join(row)}  {busy:5.1%}")
    return "\n".join(lines)
