"""IKAcc: cycle-level simulator of the paper's accelerator (Section 5)."""

from repro.ikacc.accelerator import IKAccRunResult, IKAccSimulator
from repro.ikacc.config import DatapathTiming, IKAccConfig
from repro.ikacc.fku import ForwardKinematicsUnit
from repro.ikacc.multi import MultiProblemIKAcc, ThroughputReport
from repro.ikacc.opcounts import OpCounts
from repro.ikacc.power import (
    COMPONENT_LIBRARY,
    PAPER_AREA_MM2,
    PAPER_AVG_POWER_W,
    IKAccPowerModel,
)
from repro.ikacc.quantization import fk_precision_report, precision_margin
from repro.ikacc.scheduler import ParallelSearchScheduler, Wave
from repro.ikacc.selector import ParameterSelector, SelectionState
from repro.ikacc.spu import SerialProcessUnit
from repro.ikacc.ssu import SpeculativeSearchUnit
from repro.ikacc.trace import (
    IterationTrace,
    TraceEvent,
    render_gantt,
    trace_from_telemetry,
    trace_iteration,
)

__all__ = [
    "IKAccRunResult",
    "IKAccSimulator",
    "DatapathTiming",
    "IKAccConfig",
    "ForwardKinematicsUnit",
    "OpCounts",
    "MultiProblemIKAcc",
    "ThroughputReport",
    "COMPONENT_LIBRARY",
    "PAPER_AREA_MM2",
    "PAPER_AVG_POWER_W",
    "IKAccPowerModel",
    "fk_precision_report",
    "precision_margin",
    "ParallelSearchScheduler",
    "Wave",
    "ParameterSelector",
    "SelectionState",
    "SerialProcessUnit",
    "SpeculativeSearchUnit",
    "IterationTrace",
    "TraceEvent",
    "render_gantt",
    "trace_from_telemetry",
    "trace_iteration",
]
