"""Arithmetic operation counts for the kernels in Quick-IK.

Every platform model (Atom, TX1, IKAcc) prices a solve from the *same*
counted work, so the cross-platform ratios in Table 2 come from machine
structure (serialisation, offload overhead, datapath width) rather than from
per-platform guesses about the algorithm.

Counts assume the DH factorisation used throughout the repository: one joint
contributes one sine/cosine pair, the assembly of a screw matrix, and one
4x4 matrix multiply.  A 4x4 matmul is 64 multiplies + 48 adds; only the
position column is needed for the final tool transform but we charge the full
product, as the hardware does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OpCounts",
    "matmul4_ops",
    "screw_build_ops",
    "fk_ops",
    "jacobian_serial_ops",
    "error_ops",
    "speculation_update_ops",
    "quick_ik_iteration_ops",
    "jt_serial_iteration_ops",
    "svd_ops",
    "pseudoinverse_iteration_ops",
]


@dataclass(frozen=True)
class OpCounts:
    """Operation tallies by functional-unit class."""

    mul: int = 0
    add: int = 0
    div: int = 0
    sqrt: int = 0
    sincos: int = 0
    compare: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            mul=self.mul + other.mul,
            add=self.add + other.add,
            div=self.div + other.div,
            sqrt=self.sqrt + other.sqrt,
            sincos=self.sincos + other.sincos,
            compare=self.compare + other.compare,
        )

    def scaled(self, factor: int) -> "OpCounts":
        """Counts repeated ``factor`` times."""
        return OpCounts(
            mul=self.mul * factor,
            add=self.add * factor,
            div=self.div * factor,
            sqrt=self.sqrt * factor,
            sincos=self.sincos * factor,
            compare=self.compare * factor,
        )

    @property
    def flops(self) -> int:
        """Total scalar floating-point operations.

        A sincos is charged as 20 FLOP-equivalents (CORDIC iterations) and
        div/sqrt as 4 each; comparisons count as 1.
        """
        return (
            self.mul
            + self.add
            + 4 * self.div
            + 4 * self.sqrt
            + 20 * self.sincos
            + self.compare
        )


def matmul4_ops() -> OpCounts:
    """One dense 4x4 matrix multiply."""
    return OpCounts(mul=64, add=48)


def screw_build_ops() -> OpCounts:
    """Building one joint screw matrix ``Rz(theta) Tz(d)`` from the variable."""
    return OpCounts(add=2, sincos=1)  # theta/d offset adds + one sin/cos pair


def fk_ops(dof: int) -> OpCounts:
    """One full forward-kinematics evaluation (Eq. 10): N screws + N matmuls.

    The tool/base composition is charged as one extra matmul.
    """
    per_joint = screw_build_ops() + matmul4_ops()
    return per_joint.scaled(dof) + matmul4_ops()


def jacobian_serial_ops(dof: int) -> OpCounts:
    """The serial block of one iteration (Figure 3b): ``1Ti``, ``Ji``, ``JJTE``.

    Per joint: screw build + one matmul (cumulative transform), one cross
    product (6 mul + 3 add), the ``p_ee - p_i`` subtraction (3 adds), the
    ``Ji^T e`` dot product (3 mul + 2 add) and the ``JJTE`` accumulation
    (3 mul + 3 add).  The epilogue computes ``alpha_base`` (Eq. 8): two 3-D
    dot products and one divide.
    """
    per_joint = (
        screw_build_ops()
        + matmul4_ops()
        + OpCounts(mul=6, add=3)  # cross product
        + OpCounts(add=3)  # p_ee - p_i
        + OpCounts(mul=3, add=2)  # Ji . e  (dtheta_base component)
        + OpCounts(mul=3, add=3)  # JJTE accumulation
    )
    epilogue = OpCounts(mul=6, add=4, div=1)  # Eq. 8
    return per_joint.scaled(dof) + epilogue


def error_ops() -> OpCounts:
    """One error-norm evaluation ``||X_t - X_k||`` plus threshold compare."""
    return OpCounts(mul=3, add=5, sqrt=1, compare=1)


def speculation_update_ops(dof: int) -> OpCounts:
    """One speculative candidate: ``alpha_k`` + ``theta_k = theta + alpha_k
    dtheta_base`` (Algorithm 1 lines 7-9)."""
    return OpCounts(mul=dof + 1, add=dof)


def quick_ik_iteration_ops(dof: int, speculations: int) -> OpCounts:
    """Total arithmetic of one Quick-IK iteration (Algorithm 1 lines 3-17)."""
    serial = jacobian_serial_ops(dof)
    per_speculation = speculation_update_ops(dof) + fk_ops(dof) + error_ops()
    select = OpCounts(compare=speculations)
    return serial + per_speculation.scaled(speculations) + select


def jt_serial_iteration_ops(dof: int) -> OpCounts:
    """One iteration of the serial transpose method: serial block + update +
    one FK + error check."""
    return (
        jacobian_serial_ops(dof)
        + OpCounts(mul=dof, add=dof)  # theta += alpha * dtheta
        + fk_ops(dof)
        + error_ops()
    )


def svd_ops(dof: int, sweeps: int = 6) -> OpCounts:
    """One SVD of the 3xN position Jacobian (one-sided Jacobi, KDL-style).

    KDL's ``svd_HH``/Jacobi routines iterate over column pairs; per sweep a
    3xN problem touches ``N*(N-1)/2`` pairs... for the transposed Nx3 form it
    is 3 column pairs of length-N rotations.  We charge the standard
    Golub-Kahan cost for an m x n matrix with m = 3: ``~4 n m^2 + 8 m^3``
    per sweep plus the back-substitution, which keeps the O(N) scaling that a
    3xN decomposition actually has while retaining the large constant factor
    the paper attributes to SVD ("incredibly time-consuming").
    """
    m = 3
    per_sweep_mul = 4 * dof * m * m + 8 * m * m * m
    per_sweep_add = per_sweep_mul
    return OpCounts(
        mul=per_sweep_mul * sweeps,
        add=per_sweep_add * sweeps,
        div=m * sweeps,
        sqrt=m * sweeps,
    )


def pseudoinverse_iteration_ops(dof: int) -> OpCounts:
    """One iteration of the SVD pseudoinverse method.

    Serial Jacobian build (reusing the Figure 3 accounting minus the JT
    epilogue) + the SVD + applying ``V S^-1 U^T e`` (two small GEMVs) + one FK
    + error check.
    """
    apply = OpCounts(mul=6 * dof + 9, add=6 * dof + 6, div=3)
    return jacobian_serial_ops(dof) + svd_ops(dof) + apply + fk_ops(dof) + error_ops()
