"""Forward Kinematics Unit (FKU) — the datapath core of every SSU.

Section 5.2: each speculative search is dominated by the forward kinematics
``f(theta) = prod_i i-1Ti`` (Eq. 10), a chain of 4x4 matrix multiplies.  The
FKU couples

* a screw generator (one sin/cos unit + matrix assembly) producing
  ``i-1Ti(theta_k(i))`` for the next joint, and
* the HLS-generated 4x4 matrix-multiply block ("a few multipliers and adders
  ... tens of cycles"),

with the generator for joint ``i+1`` overlapped with the multiply for joint
``i`` (the ``i-1Ti Registers`` / ``1Ti Registers`` double-buffering of
Figure 2).  Steady-state throughput is therefore one joint per
``max(matmul4, sincos + assemble)`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ikacc.config import IKAccConfig
from repro.ikacc.opcounts import OpCounts, fk_ops
from repro.kinematics.chain import KinematicChain

__all__ = ["FKUReport", "ForwardKinematicsUnit"]

#: Cycles to assemble a screw matrix from a computed sin/cos pair
#: (multiplexing constants into the register file).
ASSEMBLE_CYCLES = 2


@dataclass(frozen=True)
class FKUReport:
    """Timing/arithmetic of one FK evaluation."""

    cycles: int
    ops: OpCounts


class ForwardKinematicsUnit:
    """Cycle-level functional model of one FKU.

    The functional result is bit-identical to the float32 twin of the chain
    (``chain.astype(np.float32)``), because that is exactly the computation
    the unit performs: sequential float32 4x4 multiplies.
    """

    def __init__(self, chain: KinematicChain, config: IKAccConfig) -> None:
        self.config = config
        chain32 = (
            chain if chain.dtype == np.dtype(config.dtype) else chain.astype(config.dtype)
        )
        if config.kernel is not None:
            chain32 = chain32.with_kernel(config.kernel)
        self.chain32 = chain32

    @property
    def dof(self) -> int:
        """Joints handled per FK evaluation."""
        return self.chain32.dof

    def cycles_per_fk(self) -> int:
        """Latency of one complete FK evaluation.

        ``fill`` is the first screw generation (not overlappable), then one
        joint retires per steady-state interval, plus the final tool-transform
        multiply.
        """
        timing = self.config.timing
        fill = timing.sincos + ASSEMBLE_CYCLES
        steady = max(timing.matmul4, timing.sincos + ASSEMBLE_CYCLES)
        return fill + self.dof * steady + timing.matmul4

    def run(self, q: np.ndarray) -> tuple[np.ndarray, FKUReport]:
        """Evaluate ``f(q)`` in float32; returns ``(position, report)``."""
        position = self.chain32.end_position(np.asarray(q, dtype=self.chain32.dtype))
        return position, FKUReport(cycles=self.cycles_per_fk(), ops=fk_ops(self.dof))

    def run_batch(self, qs: np.ndarray) -> tuple[np.ndarray, FKUReport]:
        """Evaluate a batch of configurations on *one* FKU (serially).

        Returns the ``(B, 3)`` positions and the cost of the whole batch.
        """
        qs = np.asarray(qs, dtype=self.chain32.dtype)
        positions = self.chain32.end_positions_batch(qs)
        batch = qs.shape[0]
        report = FKUReport(
            cycles=self.cycles_per_fk() * batch,
            ops=fk_ops(self.dof).scaled(batch),
        )
        return positions, report
