"""Area and power model of IKAcc (Table 3 substitute).

The paper reports silicon numbers from Design Compiler + PrimeTime-PX on the
Nangate 65 nm library: 2.27 mm^2 and 158.6 mW average at 1 V / 1 GHz.  We
substitute a component-level spreadsheet model:

* **Area** — a unit inventory (multipliers, adders, CORDIC, divider, sqrt,
  comparators, SRAM) per block (SSU array, SPU, scheduler, selector), with
  per-component area constants of 65 nm-class single-precision FP units.
* **Dynamic energy** — per-operation energies (pJ/op) multiplied by the
  *actual* operation counts of a run (:class:`~repro.ikacc.opcounts.OpCounts`
  accumulated by the simulator).
* **Leakage** — a per-mm^2 density times area times runtime.

The constants below were calibrated once so that the default 32-SSU
configuration lands near the paper's area and, at the paper's utilisation,
near its average power; they are *not* fitted per experiment.  See DESIGN.md
("Calibrated constants").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ikacc.config import IKAccConfig
from repro.ikacc.opcounts import OpCounts

__all__ = [
    "ComponentParams",
    "COMPONENT_LIBRARY",
    "BlockInventory",
    "IKAccPowerModel",
    "PAPER_AREA_MM2",
    "PAPER_AVG_POWER_W",
]

#: Table 3 reference values.
PAPER_AREA_MM2 = 2.27
PAPER_AVG_POWER_W = 0.1586


@dataclass(frozen=True)
class ComponentParams:
    """Area and switching energy of one hardware component class."""

    area_mm2: float
    energy_pj: float  # per operation (per KB-access for SRAM)


#: 65 nm-class single-precision FP component constants.
COMPONENT_LIBRARY: dict[str, ComponentParams] = {
    "mul": ComponentParams(area_mm2=0.0058, energy_pj=1.9),
    "add": ComponentParams(area_mm2=0.0022, energy_pj=0.75),
    "div": ComponentParams(area_mm2=0.0110, energy_pj=5.0),
    "sqrt": ComponentParams(area_mm2=0.0090, energy_pj=4.5),
    "sincos": ComponentParams(area_mm2=0.0100, energy_pj=5.5),
    "compare": ComponentParams(area_mm2=0.0007, energy_pj=0.18),
    # Area per KB; energy per 32-bit access.
    "sram_kb": ComponentParams(area_mm2=0.0180, energy_pj=0.60),
}

#: Static (leakage) power density, W per mm^2, 65 nm at 1.1 V.
LEAKAGE_W_PER_MM2 = 0.010


@dataclass(frozen=True)
class BlockInventory:
    """Unit counts of one block of the accelerator."""

    name: str
    mul: int = 0
    add: int = 0
    div: int = 0
    sqrt: int = 0
    sincos: int = 0
    compare: int = 0
    sram_kb: float = 0.0

    def area_mm2(self, library: dict[str, ComponentParams]) -> float:
        """Block area from the component library."""
        return (
            self.mul * library["mul"].area_mm2
            + self.add * library["add"].area_mm2
            + self.div * library["div"].area_mm2
            + self.sqrt * library["sqrt"].area_mm2
            + self.sincos * library["sincos"].area_mm2
            + self.compare * library["compare"].area_mm2
            + self.sram_kb * library["sram_kb"].area_mm2
        )


class IKAccPowerModel:
    """Area/energy/power model for a given :class:`IKAccConfig`."""

    def __init__(
        self,
        config: IKAccConfig,
        library: dict[str, ComponentParams] | None = None,
        leakage_w_per_mm2: float = LEAKAGE_W_PER_MM2,
    ) -> None:
        self.config = config
        self.library = dict(library or COMPONENT_LIBRARY)
        self.leakage_w_per_mm2 = leakage_w_per_mm2

    # ------------------------------------------------------------------
    # Inventory / area
    # ------------------------------------------------------------------

    def ssu_inventory(self) -> BlockInventory:
        """One SSU: its FKU (3 MACs sized for the 24-cycle 4x4 block + one
        sin/cos unit) plus the speculation datapath (alpha multiply, theta
        MAC, error norm with sqrt and threshold comparator) and local
        registers/buffers for two 4x4 matrices and the theta vector."""
        return BlockInventory(
            name="ssu",
            mul=3 + 2,  # FKU MAC multipliers + alpha/theta multipliers
            add=3 + 2,  # FKU MAC adders + theta/error adders
            sqrt=1,
            sincos=1,
            compare=1,
            sram_kb=0.5,
        )

    def spu_inventory(self) -> BlockInventory:
        """The four-stage pipeline of Figure 3: screw stage (sincos), matmul
        stage (3 MACs), Jacobian-column stage (cross product), JJTE stage
        (dot/MAC group), plus the Eq.-8 epilogue divider."""
        return BlockInventory(
            name="spu",
            mul=3 + 3 + 3,
            add=3 + 2 + 3,
            div=1,
            sincos=1,
            sram_kb=1.0,
        )

    def selector_inventory(self) -> BlockInventory:
        """Comparator tree over the SSU array plus the stored-best compare."""
        return BlockInventory(
            name="selector", compare=self.config.n_ssus, sram_kb=0.05
        )

    def scheduler_inventory(self) -> BlockInventory:
        """Broadcast buffers for theta / dtheta_base / alpha_base."""
        return BlockInventory(name="scheduler", sram_kb=0.5)

    def inventories(self) -> list[tuple[BlockInventory, int]]:
        """All blocks with their replication counts."""
        return [
            (self.ssu_inventory(), self.config.n_ssus),
            (self.spu_inventory(), 1),
            (self.selector_inventory(), 1),
            (self.scheduler_inventory(), 1),
        ]

    def area_mm2(self) -> float:
        """Total accelerator area."""
        return sum(
            inv.area_mm2(self.library) * count for inv, count in self.inventories()
        )

    def area_breakdown(self) -> dict[str, float]:
        """Per-block area in mm^2."""
        return {
            inv.name: inv.area_mm2(self.library) * count
            for inv, count in self.inventories()
        }

    # ------------------------------------------------------------------
    # Energy / power
    # ------------------------------------------------------------------

    def dynamic_energy_j(self, ops: OpCounts) -> float:
        """Switching energy (joules) for a tally of operations."""
        lib = self.library
        pj = (
            ops.mul * lib["mul"].energy_pj
            + ops.add * lib["add"].energy_pj
            + ops.div * lib["div"].energy_pj
            + ops.sqrt * lib["sqrt"].energy_pj
            + ops.sincos * lib["sincos"].energy_pj
            + ops.compare * lib["compare"].energy_pj
        )
        return pj * 1e-12

    def leakage_power_w(self) -> float:
        """Static power of the whole accelerator."""
        return self.leakage_w_per_mm2 * self.area_mm2()

    def energy_j(self, ops: OpCounts, seconds: float) -> float:
        """Total energy of a run: dynamic + leakage over its duration."""
        if seconds < 0.0:
            raise ValueError("seconds must be >= 0")
        return self.dynamic_energy_j(ops) + self.leakage_power_w() * seconds

    def average_power_w(self, ops: OpCounts, seconds: float) -> float:
        """Average power of a run."""
        if seconds <= 0.0:
            raise ValueError("seconds must be positive")
        return self.energy_j(ops, seconds) / seconds
