"""Parameter Selector — argmin reduction over the speculative errors.

Section 5.1: "The unit just selects the theta_o with minimum error error_o
from multiple speculations ... Due to the mismatch between the speculations
in software and hardware, the Parameter Selector needs to store and compare
the last result at each schedule, but the overhead is negligible."

Modelled as a binary comparator tree over the SSU array (depth ``ceil(log2
MaxSSUs)``) plus one extra compare per wave against the stored running best.
The selector also implements the Algorithm-1 early exit: if any speculation
in the wave met the accuracy threshold, it reports the *lowest* ``k`` among
them (matching the sequential ``for k`` semantics of lines 12-13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ikacc.config import IKAccConfig
from repro.ikacc.ssu import SSUResult

__all__ = ["SelectionState", "ParameterSelector"]


@dataclass
class SelectionState:
    """Running best across waves of one iteration."""

    best: SSUResult | None = None
    hit: SSUResult | None = None  # first speculation meeting the threshold
    waves_merged: int = 0
    cycles: int = 0


class ParameterSelector:
    """Cycle-level model of the selector tree."""

    def __init__(self, config: IKAccConfig) -> None:
        self.config = config

    def cycles_per_wave(self, occupancy: int) -> int:
        """Comparator-tree latency for one wave of ``occupancy`` results,
        plus the compare against the stored previous-wave best."""
        if occupancy < 1:
            raise ValueError("occupancy must be >= 1")
        depth = math.ceil(math.log2(occupancy)) if occupancy > 1 else 0
        return (depth + 1) * self.config.timing.compare

    def merge_wave(
        self, state: SelectionState, results: list[SSUResult]
    ) -> SelectionState:
        """Fold one wave's results into the running selection state."""
        if not results:
            raise ValueError("cannot merge an empty wave")
        state.waves_merged += 1
        state.cycles += self.cycles_per_wave(len(results))
        if state.hit is None:
            hits = [r for r in results if r.below_threshold]
            if hits:
                state.hit = min(hits, key=lambda r: r.k)
        wave_best = min(results, key=lambda r: (r.error, r.k))
        if state.best is None or wave_best.error < state.best.error:
            state.best = wave_best
        return state

    def outcome(self, state: SelectionState) -> SSUResult:
        """The iteration's winner: the threshold hit if any, else the argmin."""
        if state.hit is not None:
            return state.hit
        if state.best is None:
            raise ValueError("selector has merged no waves")
        return state.best
