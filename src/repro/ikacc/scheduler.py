"""Parallel Search Scheduler — maps ``Max`` speculations onto ``MaxSSUs``.

Section 5.1: "When the speculations in algorithm is more than the number of
SSUs, each SSU will process multiple speculative searches. ... The Parallel
Search Scheduler schedules MaxSSUs speculations to SSUs at one time ... After
multiple schedules, all the speculative searches will be processed by the
limited hardware."

The schedule is static and round-robin: wave ``w`` carries speculation
indices ``w*MaxSSUs + 1 .. min((w+1)*MaxSSUs, Max)``.  Before each wave the
scheduler broadcasts ``theta, dtheta_base, alpha_base`` (charged once per
wave).  The evaluated design point (64 speculations, 32 SSUs) yields exactly
the paper's "two schedules".
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.ikacc.config import IKAccConfig

__all__ = ["Wave", "ParallelSearchScheduler"]


@dataclass(frozen=True)
class Wave:
    """One scheduler wave: which speculation index runs on which SSU."""

    index: int
    speculation_indices: tuple[int, ...]  # 1-based k values, one per busy SSU

    @property
    def occupancy(self) -> int:
        """Busy SSUs in this wave."""
        return len(self.speculation_indices)


class ParallelSearchScheduler:
    """Static wave scheduler for the SSU array."""

    def __init__(self, config: IKAccConfig) -> None:
        self.config = config

    @property
    def n_waves(self) -> int:
        """Waves needed per iteration."""
        return self.config.waves_per_iteration

    def waves(self) -> list[Wave]:
        """The full schedule for one iteration."""
        out = []
        total = self.config.speculations
        width = self.config.n_ssus
        for w in range(self.n_waves):
            start = w * width + 1
            stop = min((w + 1) * width, total)
            out.append(Wave(index=w, speculation_indices=tuple(range(start, stop + 1))))
        return out

    def ssu_for_speculation(self, k: int) -> int:
        """Which SSU slot (0-based) speculation ``k`` (1-based) lands on."""
        if not 1 <= k <= self.config.speculations:
            raise ValueError(
                f"speculation index {k} outside 1..{self.config.speculations}"
            )
        return (k - 1) % self.config.n_ssus

    def wave_for_speculation(self, k: int) -> int:
        """Which wave (0-based) speculation ``k`` (1-based) runs in."""
        if not 1 <= k <= self.config.speculations:
            raise ValueError(
                f"speculation index {k} outside 1..{self.config.speculations}"
            )
        return (k - 1) // self.config.n_ssus

    def broadcast_cycles(self) -> int:
        """Cycles to broadcast the SPU results to the SSU array (per wave)."""
        return self.config.broadcast_latency

    def utilisation(self) -> float:
        """Average SSU occupancy across the schedule (1.0 = fully busy).

        Quantifies the mismatch the paper mentions: e.g. 48 speculations on
        32 SSUs run in two waves at 75% occupancy.
        """
        waves = self.waves()
        busy = sum(w.occupancy for w in waves)
        return busy / (len(waves) * self.config.n_ssus)

    def validate(self) -> None:
        """Invariant check: every speculation runs exactly once."""
        seen: list[int] = []
        for wave in self.waves():
            seen.extend(wave.speculation_indices)
        expected = list(range(1, self.config.speculations + 1))
        if seen != expected:
            raise AssertionError(
                f"scheduler dropped or duplicated speculations: {seen} != {expected}"
            )
