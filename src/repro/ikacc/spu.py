"""Serial Process Unit (SPU) — the fused, pipelined serial block.

Algorithm 1 lines 3-5 (Jacobian, ``dtheta_base``, ``alpha_base``) are serial
work with per-joint data dependences.  Figure 3 shows the paper's key
optimisation: the four per-joint loops of the original flow (compute
``i-1Ti``; accumulate ``1Ti``; form the Jacobian column ``Ji``; accumulate
``JJTE``) are fused into a single loop and executed as a four-stage pipeline

    ``i-1TiC -> 1TiC -> JiC -> JJTEC``

so one joint retires per initiation interval and no intermediate matrix is
stored to memory.  The initiation interval is set by the slowest stage (the
``1TiC`` 4x4 multiply).

The model here computes the true float32 values (Jacobian via the chain's
float32 twin) and charges cycles for either the pipelined flow or — when
``config.spu_pipelined`` is false — the original four-loop flow of Figure
3(a), including the memory round-trips for the intermediate ``1Ti`` and ``J``
arrays that the fused pipeline avoids.  That knob is the Figure-3 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.alpha import buss_alpha
from repro.ikacc.config import IKAccConfig
from repro.ikacc.fku import ASSEMBLE_CYCLES
from repro.ikacc.opcounts import OpCounts, jacobian_serial_ops
from repro.kinematics.chain import KinematicChain

__all__ = ["SPUResult", "SerialProcessUnit", "MEMORY_ROUNDTRIP_CYCLES"]

#: Cycles charged per intermediate-array element store+load in the
#: unpipelined (Figure 3a) flow.
MEMORY_ROUNDTRIP_CYCLES = 2


@dataclass(frozen=True)
class SPUResult:
    """Outputs the scheduler broadcasts to the SSUs, plus timing."""

    dtheta_base: np.ndarray
    alpha_base: float
    jacobian: np.ndarray
    cycles: int
    ops: OpCounts


class SerialProcessUnit:
    """Cycle-level functional model of the SPU."""

    #: Latencies of the two non-matmul pipeline stages (JiC: cross product on
    #: short multiplier/adder trees; JJTEC: two fused dot/MAC groups).
    JIC_CYCLES = 6
    JJTEC_CYCLES = 8

    def __init__(self, chain: KinematicChain, config: IKAccConfig) -> None:
        self.config = config
        self.chain32 = (
            chain if chain.dtype == np.dtype(config.dtype) else chain.astype(config.dtype)
        )

    @property
    def dof(self) -> int:
        """Joints processed per iteration."""
        return self.chain32.dof

    def _stage_latencies(self) -> tuple[int, int, int, int]:
        timing = self.config.timing
        return (
            timing.sincos + ASSEMBLE_CYCLES,  # i-1TiC
            timing.matmul4,  # 1TiC
            self.JIC_CYCLES,  # JiC
            self.JJTEC_CYCLES,  # JJTEC
        )

    def _epilogue_cycles(self) -> int:
        """Eq. 8 after the loop: two 3-D dots + one divide."""
        timing = self.config.timing
        dot3 = 3 * timing.mul + 2 * timing.add
        return 2 * dot3 + timing.div

    def cycles_per_iteration(self) -> int:
        """Serial-block latency for one Quick-IK iteration."""
        stages = self._stage_latencies()
        if self.config.spu_pipelined:
            # Pipeline fill + one joint per initiation interval + epilogue.
            fill = sum(stages)
            interval = max(stages)
            return fill + (self.dof - 1) * interval + self._epilogue_cycles()
        # Figure 3(a): four separate loops, each paying its stage latency per
        # joint, plus memory round-trips for the intermediate 1Ti (16 words)
        # and Ji (3 words) arrays.
        loops = sum(latency * self.dof for latency in stages)
        memory = MEMORY_ROUNDTRIP_CYCLES * self.dof * (16 + 3)
        return loops + memory + self._epilogue_cycles()

    def run(self, q: np.ndarray, target: np.ndarray) -> SPUResult:
        """Compute ``J``, ``dtheta_base`` and ``alpha_base`` in float32."""
        q = np.asarray(q, dtype=self.chain32.dtype)
        target = np.asarray(target, dtype=self.chain32.dtype)
        jacobian = self.chain32.jacobian_position(q)
        # 1TN.P comes from the winning speculation of the previous iteration
        # (Section 5.3); functionally that equals the FK of the current q.
        error_vec = target - self.chain32.end_position(q)
        dtheta_base = jacobian.T @ error_vec
        alpha_base = buss_alpha(
            error_vec.astype(np.float64), (jacobian @ dtheta_base).astype(np.float64)
        )
        return SPUResult(
            dtheta_base=dtheta_base,
            alpha_base=float(alpha_base),
            jacobian=jacobian,
            cycles=self.cycles_per_iteration(),
            ops=jacobian_serial_ops(self.dof),
        )
