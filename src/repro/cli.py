"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     solve one IK target with any solver
``simulate``  run the IKAcc cycle-level simulator on one target
``trace``     render the pipeline Gantt of one accelerator iteration
``bench``     regenerate a paper experiment table
``serve-bench``  open-loop load test of the micro-batching IK server
``experiment``  declarative sweeps + the SQLite result store
              (``run`` / ``resume`` / ``query`` / ``import``)
``report``    write the full EXPERIMENTS.md
``robots``    list the available robots
"""

from __future__ import annotations

import argparse
import ast
import sys

import numpy as np

from repro.core.result import SolverConfig
from repro.execution import KERNEL_DTYPES, ExecutionOptions, KernelSpec
from repro.kinematics.kernels import KERNEL_MODES
from repro.kinematics.robots import ROBOT_NAMES, named_robot
from repro.solvers import (
    SOLVER_REGISTRY,
    describe_solver_options,
    make_solver,
)

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dadu (DAC 2017) reproduction: Quick-IK and IKAcc",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--robot", default="dadu-25dof",
                       help="robot name (see `repro robots`)")
        p.add_argument("--target", type=float, nargs=3, metavar=("X", "Y", "Z"),
                       help="target position in metres")
        p.add_argument("--seed", type=int, default=0,
                       help="seed for the random target/restart")
        p.add_argument("--tolerance", type=float, default=1e-2,
                       help="accuracy constraint (metres)")
        p.add_argument("--max-iterations", type=int, default=10_000)
        p.add_argument("--kernel", default=None, choices=list(KERNEL_MODES),
                       help="FK/Jacobian kernel mode (default: the chain's, "
                            "i.e. scalar; see docs/performance.md)")

    def add_kernel_axes(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dtype", default=None, choices=list(KERNEL_DTYPES),
                       help="kernel floating-point precision (default: the "
                            "chain's, i.e. float64; float32 trades ~1e-7 m "
                            "of FK accuracy for bandwidth — see "
                            "docs/performance.md)")
        p.add_argument("--chunk", type=_positive_int, default=None,
                       help="FK rows per chunked sweep in the lock-step "
                            "engines (default: per-kernel)")

    def add_telemetry(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-out", metavar="PATH",
                       help="write a JSONL telemetry trace of every solve")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write aggregated metrics (latency percentiles, "
                            "counters) as JSON")

    solve = sub.add_parser(
        "solve", help="solve one IK target",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="per-solver options (pass via --opt NAME=VALUE):\n"
        + describe_solver_options(),
    )
    add_common(solve)
    add_kernel_axes(solve)
    add_telemetry(solve)
    solve.add_argument("--solver", default="JT-Speculation",
                       choices=sorted(SOLVER_REGISTRY))
    solve.add_argument("--speculations", type=int, default=64)
    solve.add_argument("--workers", type=_positive_int, default=1,
                       help="solve through the process-sharded batch layer "
                            "with this many workers (results are identical "
                            "for any worker count; see docs/parallel.md)")
    solve.add_argument("--on-error", default="raise",
                       choices=["raise", "skip", "fallback"],
                       help="failure policy: raise (default), skip (bad "
                            "targets / failed solves become typed "
                            "placeholder results), or fallback (failures "
                            "retry through the resilient solver chain; "
                            "see docs/robustness.md)")
    solve.add_argument("--opt", action="append", default=[], metavar="NAME=VALUE",
                       help="extra solver option (repeatable); values are "
                            "parsed as Python literals, unknown names are "
                            "rejected with the solver's accepted options")

    simulate = sub.add_parser("simulate", help="cycle-level IKAcc run")
    add_common(simulate)
    add_telemetry(simulate)
    simulate.add_argument("--ssus", type=int, default=32)
    simulate.add_argument("--speculations", type=int, default=64)

    trace = sub.add_parser("trace", help="Gantt chart of one IKAcc iteration")
    trace.add_argument("--robot", default="dadu-100dof")
    trace.add_argument("--ssus", type=int, default=32)
    trace.add_argument("--speculations", type=int, default=64)
    trace.add_argument("--width", type=int, default=72)

    bench = sub.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument("experiment",
                       choices=["figure4", "figure5a", "figure5b", "table2",
                                "table2_ratios", "table3", "energy",
                                "headline", "all"])
    bench.add_argument("--targets", type=int, default=None,
                       help="targets per DOF (default: REPRO_TARGETS or 20)")
    bench.add_argument("--dofs", default=None,
                       help="comma list, e.g. 12,25 (default: REPRO_DOFS or paper sweep)")
    bench.add_argument("--workers", type=_positive_int, default=1,
                       help="shard each solver's target batch across this "
                            "many worker processes (default 1; results are "
                            "identical for any worker count)")
    bench.add_argument("--max-iterations", type=_positive_int, default=None,
                       help="override the paper's per-solve iteration cap "
                            "(default: 10000)")
    bench.add_argument("--kernel", default=None, choices=list(KERNEL_MODES),
                       help="FK/Jacobian kernel mode for the evaluation "
                            "chains (default: scalar)")
    add_kernel_axes(bench)
    add_telemetry(bench)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="open-loop load test of the in-process serving layer",
        description="Drive the micro-batching IK server with an open-loop "
                    "(seeded Poisson) request stream and record throughput, "
                    "latency percentiles and batch-occupancy gauges "
                    "(see docs/serving.md).",
    )
    serve_bench.add_argument("--robot", default="dadu-50dof",
                             help="robot name (see `repro robots`)")
    serve_bench.add_argument("--solver", default="JT-Speculation",
                             choices=sorted(SOLVER_REGISTRY))
    serve_bench.add_argument("--requests", type=_positive_int, default=200,
                             help="total requests in the open-loop stream")
    serve_bench.add_argument("--rate", type=float, default=300.0,
                             help="offered load in requests/second")
    serve_bench.add_argument("--max-batch-size", type=_positive_int, default=32,
                             help="micro-batch size flush trigger")
    serve_bench.add_argument("--max-wait-ms", type=float, default=5.0,
                             help="micro-batch age flush trigger (ms)")
    serve_bench.add_argument("--dispatch-workers", type=_positive_int,
                             default=1,
                             help="concurrent dispatch loops draining the "
                                  "batcher (results are identical for any "
                                  "count; overlaps batch execution)")
    serve_bench.add_argument("--adaptive",
                             action=argparse.BooleanOptionalAction,
                             default=True,
                             help="per-group adaptive batching: tune the "
                                  "size/wait triggers from each group's "
                                  "arrival rate (--no-adaptive for the "
                                  "static triggers)")
    serve_bench.add_argument("--workload", default="iid",
                             choices=["iid", "tracking", "sessions"],
                             help="target stream shape: iid (independent "
                                  "workspace draws), tracking (smooth "
                                  "per-client trajectories — the warm-start "
                                  "workload), or sessions (the same "
                                  "trajectories streamed through "
                                  "TrackingSession handles: each tick is "
                                  "warm-started from that session's last "
                                  "solution; see docs/serving.md)")
    serve_bench.add_argument("--tracks", type=_positive_int, default=8,
                             help="simulated clients in the tracking/"
                                  "sessions workloads (sessions: one "
                                  "TrackingSession per client)")
    serve_bench.add_argument("--workers", type=_positive_int, default=None,
                             help="shard each micro-batch across this many "
                                  "worker processes (default: in-process)")
    serve_bench.add_argument("--kernel", default=None,
                             choices=list(KERNEL_MODES),
                             help="FK/Jacobian kernel mode for served solves")
    add_kernel_axes(serve_bench)
    serve_bench.add_argument("--compaction", default="auto",
                             choices=["auto", "on", "off"],
                             help="lock-step active-set compaction for "
                                  "served batches (auto: on; off keeps the "
                                  "gather/scatter-per-iteration layout)")
    serve_bench.add_argument("--on-error", default="skip",
                             choices=["raise", "skip", "fallback"],
                             help="per-batch failure policy (serving default: "
                                  "skip — a bad request degrades alone)")
    serve_bench.add_argument("--max-iterations", type=_positive_int,
                             default=None)
    serve_bench.add_argument("--tolerance", type=float, default=None)
    serve_bench.add_argument("--deadline-ms", type=float, default=None,
                             help="per-request latency budget; expired "
                                  "requests are rejected, not solved late")
    serve_bench.add_argument("--warm-start",
                             action=argparse.BooleanOptionalAction,
                             default=True,
                             help="IKSel-style ranked seed cache (default "
                                  "on; --no-warm-start restores the seeded "
                                  "cold draw and offline bit-comparability)")
    serve_bench.add_argument("--seed-k", type=_positive_int, default=None,
                             help="warm-start k-NN neighbourhood size "
                                  "(default: 8)")
    serve_bench.add_argument("--no-cold-baseline", dest="cold_baseline",
                             action="store_false",
                             help="skip the post-run cold-seed re-solve "
                                  "that measures the warm-start iteration "
                                  "reduction")
    serve_bench.add_argument("--seed", type=int, default=2017)
    serve_bench.add_argument("--out", default="BENCH_serving.json",
                             help="payload destination (JSON)")

    experiment = sub.add_parser(
        "experiment",
        help="declarative sweeps + the SQLite result store",
        description="Expand a robot x solver x kernel x workers x workload "
                    "grid, execute it resumably, and persist every cell's "
                    "metrics in a queryable SQLite store "
                    "(see docs/experiments.md).",
    )
    esub = experiment.add_subparsers(dest="experiment_command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default="experiments.sqlite",
                       help="SQLite result store path (created on demand)")
        p.add_argument("--lock-timeout", type=float, default=5.0,
                       help="seconds to wait on another writer before "
                            "failing with a locked-store error")

    exp_run = esub.add_parser(
        "run", help="expand a sweep grid and execute it (resumable)",
    )
    add_store(exp_run)
    exp_run.add_argument("--name", default="sweep",
                         help="sweep name (the store groups history by it)")
    exp_run.add_argument("--robots", default="dadu-12dof",
                         help="comma list of robot names")
    exp_run.add_argument("--solvers", default="JT-Speculation",
                         help="comma list of SOLVER_REGISTRY names")
    exp_run.add_argument("--kernels", default="-",
                         help="comma list of kernel specs (mode[:dtype]); "
                              "'-' inherits the chain's default")
    exp_run.add_argument("--workers", default="-", metavar="LIST",
                         help="comma list of sharding widths (e.g. 1,4); "
                              "'-' runs in-process")
    exp_run.add_argument("--workloads", default="batch",
                         help="comma list of workloads: batch, suite, serve")
    exp_run.add_argument("--targets", type=_positive_int, default=20,
                         help="problems (serve: requests) per cell")
    exp_run.add_argument("--seed", type=int, default=2017)
    exp_run.add_argument("--tolerance", type=float, default=None)
    exp_run.add_argument("--max-iterations", type=_positive_int, default=None)
    exp_run.add_argument("--rate", type=float, default=200.0,
                         help="offered load (req/s) for serve-workload cells")
    exp_run.add_argument("--fresh", action="store_true",
                         help="start a new run row even if an identical "
                              "sweep exists (records history for "
                              "regression queries instead of resuming)")

    exp_resume = esub.add_parser(
        "resume",
        help="re-run a stored sweep, executing only unfinished cells",
    )
    add_store(exp_resume)
    exp_resume.add_argument("--name", default="sweep",
                            help="sweep name to resume (newest run wins)")

    exp_query = esub.add_parser(
        "query", help="typed queries over the result store (strict JSON out)",
    )
    add_store(exp_query)
    what = exp_query.add_mutually_exclusive_group(required=True)
    what.add_argument("--runs", action="store_true",
                      help="list every run with its cell tally")
    what.add_argument("--latest", metavar="METRIC",
                      help="newest recorded value of METRIC")
    what.add_argument("--regressions", type=float, metavar="THRESHOLD",
                      help="flag (run-name, cell, metric) triples that "
                           "worsened by more than THRESHOLD (fraction) "
                           "between the two newest same-name runs; exits 1 "
                           "when any are found")
    what.add_argument("--compare", nargs=2, type=int,
                      metavar=("RUN_A", "RUN_B"),
                      help="join two runs' metrics on (cell, metric)")
    exp_query.add_argument("--cell", default=None,
                           help="restrict --latest to one cell key")
    exp_query.add_argument("--run-name", default=None,
                           help="restrict --latest/--regressions to one "
                                "run name")
    exp_query.add_argument("--metric", default=None,
                           help="restrict --regressions to one metric name")

    exp_import = esub.add_parser(
        "import",
        help="backfill committed BENCH_*.json payloads into the store",
    )
    add_store(exp_import)
    exp_import.add_argument("files", nargs="+",
                            help="BENCH_*.json payload files to import")

    report = sub.add_parser("report", help="write the EXPERIMENTS.md report")
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")

    sub.add_parser("robots", help="list available robots")
    return parser


def _kernel_spec(args) -> KernelSpec | None:
    """One :class:`KernelSpec` from ``--kernel`` / ``--dtype`` / ``--chunk``
    (``None`` when no axis was pinned: inherit the chain's defaults)."""
    name = getattr(args, "kernel", None)
    dtype = getattr(args, "dtype", None)
    chunk = getattr(args, "chunk", None)
    if name is None and dtype is None and chunk is None:
        return None
    return KernelSpec(name=name, dtype=dtype, chunk=chunk)


def _resolve_target(chain, args) -> np.ndarray:
    if args.target is not None:
        return np.asarray(args.target, dtype=float)
    rng = np.random.default_rng(args.seed)
    target = chain.end_position(chain.random_configuration(rng))
    print(f"random reachable target: {np.round(target, 4)}")
    return target


def _parse_solver_opts(pairs: list[str]) -> dict:
    """Parse repeated ``--opt NAME=VALUE`` flags (values: Python literals)."""
    options = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"--opt expects NAME=VALUE, got {pair!r}")
        try:
            options[name] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            options[name] = value  # bare strings, e.g. schedule=linear
    return options


class _TelemetryOutputs:
    """Build the tracer requested by ``--trace-out`` / ``--metrics-out``.

    Always also collects an in-memory summary so commands can print a
    one-line telemetry digest; ``finish()`` closes the JSONL file and writes
    the metrics report.
    """

    def __init__(self, args) -> None:
        from repro import telemetry

        self.trace_out = getattr(args, "trace_out", None)
        self.metrics_out = getattr(args, "metrics_out", None)
        self.requested = bool(self.trace_out or self.metrics_out)
        self.summary_sink = telemetry.SummaryTracer()
        self.jsonl = (
            telemetry.JsonlTracer(self.trace_out) if self.trace_out else None
        )
        self.registry = (
            telemetry.MetricsRegistry() if self.metrics_out else None
        )
        sinks = [
            s for s in (self.summary_sink, self.jsonl, self.registry)
            if s is not None
        ]
        self.tracer = telemetry.MultiTracer(*sinks)

    def finish(self) -> None:
        if self.jsonl is not None:
            self.jsonl.close()
            print(f"telemetry trace: {self.trace_out} "
                  f"({self.jsonl.lines_written} events)")
        if self.registry is not None:
            self.registry.to_json(self.metrics_out)
            print(f"telemetry metrics: {self.metrics_out}")
        summary = self.summary_sink.summary()
        counters = ", ".join(
            f"{name}={value}" for name, value in sorted(summary.counters.items())
        )
        print(f"telemetry: {summary.iterations} iteration events, {counters}")


def _cmd_solve(args) -> int:
    chain = named_robot(args.robot)
    config = SolverConfig(tolerance=args.tolerance, max_iterations=args.max_iterations,
                          kernel=_kernel_spec(args))
    kwargs = {"speculations": args.speculations} if args.solver == "JT-Speculation" else {}
    kwargs.update(_parse_solver_opts(args.opt))
    solver = make_solver(args.solver, chain, config=config, **kwargs)
    target = _resolve_target(chain, args)
    telemetry = _TelemetryOutputs(args)
    if args.workers > 1 or args.on_error != "raise":
        # The sharded batch layer carries the on_error machinery (guards,
        # typed placeholders, fallback retries); workers=1 runs it inline.
        from repro.parallel import ShardedBatchSolver

        batch = ShardedBatchSolver(
            solver, workers=args.workers, on_error=args.on_error
        ).solve_batch(
            [target],
            rng=np.random.default_rng(args.seed + 1),
            tracer=telemetry.tracer if telemetry.requested else None,
        )
        result = batch[0]
        if batch.failures:
            print(f"failures: {batch.failures.summary()}")
    else:
        result = solver.solve(
            target,
            rng=np.random.default_rng(args.seed + 1),
            tracer=telemetry.tracer if telemetry.requested else None,
        )
    print(result.summary())
    print(f"wall time: {result.wall_time * 1e3:.2f} ms (this Python substrate)")
    if telemetry.requested:
        telemetry.finish()
    return 0 if result.converged else 1


def _cmd_simulate(args) -> int:
    from repro.ikacc import IKAccConfig, IKAccSimulator

    chain = named_robot(args.robot)
    sim = IKAccSimulator(
        chain,
        config=IKAccConfig(n_ssus=args.ssus, speculations=args.speculations,
                           kernel=args.kernel),
        solver_config=SolverConfig(
            tolerance=args.tolerance, max_iterations=args.max_iterations
        ),
    )
    target = _resolve_target(chain, args)
    telemetry = _TelemetryOutputs(args)
    run = sim.solve(
        target,
        rng=np.random.default_rng(args.seed + 1),
        tracer=telemetry.tracer if telemetry.requested else None,
    )
    print(run.summary())
    print("cycle breakdown:", run.cycle_breakdown)
    print(f"average power: {run.average_power_w * 1e3:.1f} mW")
    if telemetry.requested:
        telemetry.finish()
    return 0 if run.converged else 1


def _cmd_trace(args) -> int:
    from repro.ikacc import IKAccConfig, IKAccSimulator, render_gantt, trace_iteration

    chain = named_robot(args.robot)
    sim = IKAccSimulator(
        chain, config=IKAccConfig(n_ssus=args.ssus, speculations=args.speculations)
    )
    print(render_gantt(trace_iteration(sim), width=args.width))
    print(f"per-iteration latency: {sim.seconds_per_full_iteration() * 1e6:.2f} us")
    return 0


class _BenchHealth:
    """Count solves/convergences from ``solve_end`` events.

    Understands both per-problem events (``converged`` boolean) and merged
    batch events from the sharded layer (``batch`` / ``converged_count``
    fields), so the failure accounting is correct for any worker count.
    """

    def __init__(self) -> None:
        self.solves = 0
        self.converged = 0
        self.by_solver: dict[str, tuple[int, int]] = {}

    def observe(self, solver: str, fields: dict) -> None:
        n = int(fields.get("batch", 1))
        c = int(fields.get(
            "converged_count", n if fields.get("converged") else 0
        ))
        self.solves += n
        self.converged += c
        prev = self.by_solver.get(solver, (0, 0))
        self.by_solver[solver] = (prev[0] + n, prev[1] + c)


class _HealthTracer:
    """Minimal always-on tracer: forward ``solve_end`` to a ``_BenchHealth``.

    Deliberately not a :class:`~repro.telemetry.tracer.TracerBase` — every
    hot-loop event is a flat no-op (no dict construction, no clock reads),
    so leaving it installed for an untraced bench costs only the per-call
    overhead the <5% telemetry budget already allows for.
    """

    enabled = True

    def __init__(self, health: _BenchHealth) -> None:
        self._health = health

    def solve_start(self, solver, dof, **fields) -> None:
        pass

    def iteration(self, index, error, **fields) -> None:
        pass

    def speculation_wave(self, wave, occupancy, **fields) -> None:
        pass

    def count(self, counter, amount=1) -> None:
        pass

    def add_phase(self, phase, seconds) -> None:
        pass

    def phase(self, name):
        from contextlib import nullcontext

        return nullcontext()

    def solve_end(self, solver, **fields) -> None:
        self._health.observe(solver, fields)


def _cmd_bench(args) -> int:
    from repro.evaluation.experiments import PaperExperiments
    from repro.telemetry import MultiTracer, use_tracer
    from repro.workloads.suite import EvaluationSuite

    dofs = tuple(int(d) for d in args.dofs.split(",")) if args.dofs else None
    suite = EvaluationSuite(
        dofs=dofs, targets_per_dof=args.targets,
        options=ExecutionOptions(
            kernel=_kernel_spec(args),
            workers=None if args.workers == 1 else args.workers,
        ),
    )
    experiments = PaperExperiments(suite=suite, max_iterations=args.max_iterations)

    telemetry = _TelemetryOutputs(args)
    health = _BenchHealth()
    if telemetry.requested:
        tracer = MultiTracer(_HealthTracer(health), telemetry.tracer)
    else:
        tracer = _HealthTracer(health)
    # Install the tracer process-wide: the experiment harness calls solvers
    # several layers deep, and every solve path falls back to the global
    # tracer when not handed one explicitly.
    with use_tracer(tracer):
        tables = experiments.all_tables()
        selected = tables if args.experiment == "all" else {
            args.experiment: tables[args.experiment]
        }
        for table in selected.values():
            print(table.to_ascii())
            print()
    if telemetry.requested:
        telemetry.finish()
    if health.solves and health.converged == 0:
        # Every solve failing is a broken benchmark, not a result table;
        # exiting 0 here used to hide total failure from CI pipelines.
        print(f"bench FAILED: 0/{health.solves} solves converged",
              file=sys.stderr)
        for name, (n, c) in sorted(health.by_solver.items()):
            print(f"  {name}: {c}/{n} converged", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.serving import run_serve_bench

    payload = run_serve_bench(
        robot=args.robot,
        solver=args.solver,
        requests=args.requests,
        rate_hz=args.rate,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        dispatch_workers=args.dispatch_workers,
        adaptive=args.adaptive,
        workers=args.workers,
        kernel=args.kernel,
        dtype=args.dtype,
        chunk=args.chunk,
        compaction=(
            None if args.compaction == "auto" else args.compaction == "on"
        ),
        on_error=args.on_error,
        tolerance=args.tolerance,
        max_iterations=args.max_iterations,
        warm_start=args.warm_start,
        seed_k=args.seed_k,
        workload=args.workload,
        tracks=args.tracks,
        cold_baseline=args.cold_baseline,
        deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        seed=args.seed,
    )
    Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    serving = payload["serving"]
    latency = payload["latency_s"]
    print(
        f"served {payload['completed']}/{payload['requests']} requests "
        f"({payload['converged']} converged) at "
        f"{payload['throughput_rps']:.1f} req/s"
    )
    print(
        f"latency p50/p90/p99: {latency['p50'] * 1e3:.2f} / "
        f"{latency['p90'] * 1e3:.2f} / {latency['p99'] * 1e3:.2f} ms"
    )
    print(
        f"batches: {serving['batches']} "
        f"(mean occupancy {serving['mean_occupancy']:.2f}, "
        f"peak {serving['occupancy_peak']}, "
        f"queue peak {serving['queue_depth_peak']})"
    )
    warm = payload["warm_start"]
    if warm["enabled"]:
        hits, misses = warm["cache_hits"], warm["cache_misses"]
        line = f"warm-start: {hits} cache hits / {hits + misses} lookups"
        baseline = warm.get("cold_baseline")
        if baseline and baseline["iteration_reduction"] is not None:
            line += (
                f"; mean iterations {baseline['warm_mean_iterations']:.1f} "
                f"warm vs {baseline['mean_iterations']:.1f} cold "
                f"({baseline['iteration_reduction'] * 100:.1f}% fewer)"
            )
        print(line)
    sessions = payload.get("sessions")
    if sessions:
        manager = sessions["manager"]
        line = (
            f"sessions: {sessions['count']} streams, "
            f"{manager['ticks']} ticks "
            f"({manager['warm_ticks']} warm-chained)"
        )
        baseline = sessions.get("cold_baseline")
        if baseline and baseline["iteration_reduction"] is not None:
            line += (
                f"; mean iterations "
                f"{baseline['warm_mean_iterations']:.1f} warm vs "
                f"{baseline['mean_iterations']:.1f} cold per-tick "
                f"({baseline['iteration_reduction'] * 100:.1f}% fewer)"
            )
        print(line)
    shed = payload["rejections"].get("slo_shed", 0)
    if shed:
        print(f"SLO shedding: {shed} requests shed at dispatch")
    print(f"wrote {args.out}")
    if payload["completed"] and payload["converged"] == 0:
        # Mirror the bench health check: a load test where nothing
        # converges is a broken serving stack, not a latency result.
        print(
            f"serve-bench FAILED: 0/{payload['completed']} served solves "
            "converged", file=sys.stderr,
        )
        return 1
    return 0


def _csv_axis(text: str, convert=None) -> tuple:
    """Parse a comma-list sweep axis; ``-`` (or empty) items mean ``None``."""
    values = []
    for item in text.split(","):
        item = item.strip()
        if item in ("", "-", "none", "None"):
            values.append(None)
        else:
            values.append(convert(item) if convert is not None else item)
    return tuple(values)


def _print_json(payload) -> None:
    import json

    print(json.dumps(payload, indent=2, sort_keys=True, allow_nan=False))


def _cmd_experiment(args) -> int:
    """Dispatch ``experiment run/resume/query/import`` against one store.

    Every subcommand prints one strict-JSON document; locked stores exit 1
    with a one-line stderr diagnosis instead of a traceback.
    """
    from repro.experiments import ResultStore, StoreLocked

    try:
        store = ResultStore(args.store, timeout_s=args.lock_timeout)
    except StoreLocked as exc:
        print(f"experiment store locked: {exc}", file=sys.stderr)
        return 1
    try:
        with store:
            return _EXPERIMENT_COMMANDS[args.experiment_command](args, store)
    except StoreLocked as exc:
        print(f"experiment store locked: {exc}", file=sys.stderr)
        return 1


def _experiment_run(args, store) -> int:
    from repro.experiments import SweepRunner, SweepSpec

    try:
        spec = SweepSpec(
            name=args.name,
            robots=_csv_axis(args.robots),
            solvers=_csv_axis(args.solvers),
            kernels=_csv_axis(args.kernels),
            workers=_csv_axis(args.workers, convert=int),
            workloads=_csv_axis(args.workloads),
            targets=args.targets,
            seed=args.seed,
            tolerance=args.tolerance,
            max_iterations=args.max_iterations,
            rate_hz=args.rate,
        )
    except (TypeError, ValueError) as exc:
        print(f"bad sweep spec: {exc}", file=sys.stderr)
        return 2
    result = SweepRunner(spec, store, fresh=args.fresh).run()
    _print_json({"sweep": spec.name, "store": args.store, **result.to_dict()})
    return 0 if result.failed == 0 else 1


def _experiment_resume(args, store) -> int:
    from repro.experiments import SweepRunner, SweepSpec

    run_id = store.latest_run_id(args.name)
    row = store.run_row(run_id) if run_id is not None else None
    if row is None or row["source"] != "sweep" or not row["spec_json"]:
        print(
            f"no resumable sweep named {args.name!r} in {args.store}"
            " (imports cannot be resumed)",
            file=sys.stderr,
        )
        return 1
    spec = SweepSpec.from_json(row["spec_json"])
    result = SweepRunner(spec, store).run()
    _print_json({"sweep": spec.name, "store": args.store, **result.to_dict()})
    return 0 if result.failed == 0 else 1


def _experiment_query(args, store) -> int:
    if args.runs:
        _print_json({"runs": store.runs()})
        return 0
    if args.latest is not None:
        value = store.latest_metric(
            args.latest, cell_key=args.cell, run_name=args.run_name
        )
        _print_json({
            "metric": args.latest,
            "cell": args.cell,
            "run_name": args.run_name,
            "value": value,
        })
        return 0
    if args.compare is not None:
        run_a, run_b = args.compare
        _print_json({
            "run_a": run_a,
            "run_b": run_b,
            "rows": store.compare_runs(run_a, run_b),
        })
        return 0
    flagged = store.regressions(
        args.regressions, metric=args.metric, run_name=args.run_name
    )
    _print_json({
        "threshold": args.regressions,
        "regressions": [r.to_dict() for r in flagged],
    })
    # A nonempty answer *is* the CI perf gate tripping.
    return 1 if flagged else 0


def _experiment_import(args, store) -> int:
    from repro.experiments import import_bench_file

    imports = []
    for path in args.files:
        try:
            imports.append(import_bench_file(store, path))
        except (OSError, ValueError) as exc:
            print(f"import failed: {exc}", file=sys.stderr)
            return 1
    _print_json({"imported": imports})
    return 0


_EXPERIMENT_COMMANDS = {
    "run": _experiment_run,
    "resume": _experiment_resume,
    "query": _experiment_query,
    "import": _experiment_import,
}


def _cmd_report(args) -> int:
    from repro.evaluation.report import main as report_main

    return report_main([args.output])


def _cmd_robots(_args) -> int:
    from repro.solvers import BATCH_REGISTRY

    print("named robots:", ", ".join(ROBOT_NAMES))
    print("generated:    dadu-<N>dof, snake-<N>dof, planar-<N>dof")
    print()
    print("solvers and their options (pass via `repro solve --opt NAME=VALUE`):")
    print(describe_solver_options())
    print()
    print("lock-step batch engines:", ", ".join(sorted(BATCH_REGISTRY)))
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "simulate": _cmd_simulate,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "serve-bench": _cmd_serve_bench,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "robots": _cmd_robots,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
