"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     solve one IK target with any solver
``simulate``  run the IKAcc cycle-level simulator on one target
``trace``     render the pipeline Gantt of one accelerator iteration
``bench``     regenerate a paper experiment table
``report``    write the full EXPERIMENTS.md
``robots``    list the available robots
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.result import SolverConfig
from repro.kinematics.robots import ROBOT_NAMES, named_robot
from repro.solvers import SOLVER_REGISTRY, make_solver

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dadu (DAC 2017) reproduction: Quick-IK and IKAcc",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--robot", default="dadu-25dof",
                       help="robot name (see `repro robots`)")
        p.add_argument("--target", type=float, nargs=3, metavar=("X", "Y", "Z"),
                       help="target position in metres")
        p.add_argument("--seed", type=int, default=0,
                       help="seed for the random target/restart")
        p.add_argument("--tolerance", type=float, default=1e-2,
                       help="accuracy constraint (metres)")
        p.add_argument("--max-iterations", type=int, default=10_000)

    solve = sub.add_parser("solve", help="solve one IK target")
    add_common(solve)
    solve.add_argument("--solver", default="JT-Speculation",
                       choices=sorted(SOLVER_REGISTRY))
    solve.add_argument("--speculations", type=int, default=64)

    simulate = sub.add_parser("simulate", help="cycle-level IKAcc run")
    add_common(simulate)
    simulate.add_argument("--ssus", type=int, default=32)
    simulate.add_argument("--speculations", type=int, default=64)

    trace = sub.add_parser("trace", help="Gantt chart of one IKAcc iteration")
    trace.add_argument("--robot", default="dadu-100dof")
    trace.add_argument("--ssus", type=int, default=32)
    trace.add_argument("--speculations", type=int, default=64)
    trace.add_argument("--width", type=int, default=72)

    bench = sub.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument("experiment",
                       choices=["figure4", "figure5a", "figure5b", "table2",
                                "table2_ratios", "table3", "energy",
                                "headline", "all"])
    bench.add_argument("--targets", type=int, default=None,
                       help="targets per DOF (default: REPRO_TARGETS or 20)")
    bench.add_argument("--dofs", default=None,
                       help="comma list, e.g. 12,25 (default: REPRO_DOFS or paper sweep)")

    report = sub.add_parser("report", help="write the EXPERIMENTS.md report")
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")

    sub.add_parser("robots", help="list available robots")
    return parser


def _resolve_target(chain, args) -> np.ndarray:
    if args.target is not None:
        return np.asarray(args.target, dtype=float)
    rng = np.random.default_rng(args.seed)
    target = chain.end_position(chain.random_configuration(rng))
    print(f"random reachable target: {np.round(target, 4)}")
    return target


def _cmd_solve(args) -> int:
    chain = named_robot(args.robot)
    config = SolverConfig(tolerance=args.tolerance, max_iterations=args.max_iterations)
    kwargs = {"speculations": args.speculations} if args.solver == "JT-Speculation" else {}
    solver = make_solver(args.solver, chain, config=config, **kwargs)
    target = _resolve_target(chain, args)
    result = solver.solve(target, rng=np.random.default_rng(args.seed + 1))
    print(result.summary())
    print(f"wall time: {result.wall_time * 1e3:.2f} ms (this Python substrate)")
    return 0 if result.converged else 1


def _cmd_simulate(args) -> int:
    from repro.ikacc import IKAccConfig, IKAccSimulator

    chain = named_robot(args.robot)
    sim = IKAccSimulator(
        chain,
        config=IKAccConfig(n_ssus=args.ssus, speculations=args.speculations),
        solver_config=SolverConfig(
            tolerance=args.tolerance, max_iterations=args.max_iterations
        ),
    )
    target = _resolve_target(chain, args)
    run = sim.solve(target, rng=np.random.default_rng(args.seed + 1))
    print(run.summary())
    print("cycle breakdown:", run.cycle_breakdown)
    print(f"average power: {run.average_power_w * 1e3:.1f} mW")
    return 0 if run.converged else 1


def _cmd_trace(args) -> int:
    from repro.ikacc import IKAccConfig, IKAccSimulator, render_gantt, trace_iteration

    chain = named_robot(args.robot)
    sim = IKAccSimulator(
        chain, config=IKAccConfig(n_ssus=args.ssus, speculations=args.speculations)
    )
    print(render_gantt(trace_iteration(sim), width=args.width))
    print(f"per-iteration latency: {sim.seconds_per_full_iteration() * 1e6:.2f} us")
    return 0


def _cmd_bench(args) -> int:
    from repro.evaluation.experiments import PaperExperiments
    from repro.workloads.suite import EvaluationSuite

    dofs = tuple(int(d) for d in args.dofs.split(",")) if args.dofs else None
    suite = EvaluationSuite(dofs=dofs, targets_per_dof=args.targets)
    experiments = PaperExperiments(suite=suite)
    tables = experiments.all_tables()
    selected = tables if args.experiment == "all" else {
        args.experiment: tables[args.experiment]
    }
    for table in selected.values():
        print(table.to_ascii())
        print()
    return 0


def _cmd_report(args) -> int:
    from repro.evaluation.report import main as report_main

    return report_main([args.output])


def _cmd_robots(_args) -> int:
    print("named robots:", ", ".join(ROBOT_NAMES))
    print("generated:    dadu-<N>dof, snake-<N>dof, planar-<N>dof")
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "simulate": _cmd_simulate,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "robots": _cmd_robots,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
