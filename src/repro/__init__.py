"""repro — reproduction of "Dadu: Accelerating Inverse Kinematics for
High-DOF Robots" (Lian et al., DAC 2017).

The package provides:

* a kinematics substrate (:mod:`repro.kinematics`);
* the Quick-IK algorithm (:mod:`repro.core`) and the baseline solvers the
  paper compares against (:mod:`repro.solvers`);
* a cycle-level simulator of the IKAcc accelerator (:mod:`repro.ikacc`);
* platform cost/energy models for Atom, TX1 and IKAcc
  (:mod:`repro.platforms`);
* workload generators and the paper's evaluation harness
  (:mod:`repro.workloads`, :mod:`repro.evaluation`).

Quickstart::

    from repro import api

    result = api.solve("dadu-100dof", [0.4, 0.2, 0.6], seed=0)
    print(result.summary())

(:func:`repro.api.solve` / :func:`repro.api.solve_batch` wrap the robot zoo,
the solver registries and the convergence config in one call; the classes
below remain available for hand-wiring.)
"""

from repro import api, telemetry
from repro.api import serve, solve, solve_batch
from repro.core import IKResult, QuickIKSolver, SolverConfig
from repro.core.result import BatchResult
from repro.execution import ExecutionOptions, KernelSpec
from repro.kinematics import (
    PAPER_DOFS,
    KinematicChain,
    Joint,
    JointLimits,
    hyper_redundant_chain,
    named_robot,
    paper_chain,
    planar_chain,
    puma560,
    random_chain,
    seven_dof_arm,
    stanford_arm,
)
from repro.control import TrajectoryFollower
from repro.solvers import (
    CyclicCoordinateDescentSolver,
    DampedLeastSquaresSolver,
    JacobianTransposeSolver,
    NullSpaceSolver,
    PoseQuickIKSolver,
    PseudoinverseSolver,
    RandomRestartSolver,
    SelectivelyDampedSolver,
    make_batch_solver,
    make_solver,
)

__version__ = "1.1.0"

__all__ = [
    "api",
    "telemetry",
    "serve",
    "solve",
    "solve_batch",
    "BatchResult",
    "ExecutionOptions",
    "KernelSpec",
    "IKResult",
    "QuickIKSolver",
    "SolverConfig",
    "PAPER_DOFS",
    "KinematicChain",
    "Joint",
    "JointLimits",
    "hyper_redundant_chain",
    "named_robot",
    "paper_chain",
    "planar_chain",
    "puma560",
    "random_chain",
    "seven_dof_arm",
    "stanford_arm",
    "CyclicCoordinateDescentSolver",
    "DampedLeastSquaresSolver",
    "JacobianTransposeSolver",
    "NullSpaceSolver",
    "PoseQuickIKSolver",
    "PseudoinverseSolver",
    "RandomRestartSolver",
    "SelectivelyDampedSolver",
    "TrajectoryFollower",
    "make_solver",
    "make_batch_solver",
    "__version__",
]
