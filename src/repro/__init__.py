"""repro — reproduction of "Dadu: Accelerating Inverse Kinematics for
High-DOF Robots" (Lian et al., DAC 2017).

The package provides:

* a kinematics substrate (:mod:`repro.kinematics`);
* the Quick-IK algorithm (:mod:`repro.core`) and the baseline solvers the
  paper compares against (:mod:`repro.solvers`);
* a cycle-level simulator of the IKAcc accelerator (:mod:`repro.ikacc`);
* platform cost/energy models for Atom, TX1 and IKAcc
  (:mod:`repro.platforms`);
* workload generators and the paper's evaluation harness
  (:mod:`repro.workloads`, :mod:`repro.evaluation`).

Quickstart::

    import numpy as np
    from repro import QuickIKSolver, paper_chain

    chain = paper_chain(100)                      # 100-DOF manipulator
    rng = np.random.default_rng(0)
    target = chain.end_position(chain.random_configuration(rng))
    result = QuickIKSolver(chain, speculations=64).solve(target, rng=rng)
    print(result.summary())
"""

from repro.core import IKResult, QuickIKSolver, SolverConfig
from repro.kinematics import (
    PAPER_DOFS,
    KinematicChain,
    Joint,
    JointLimits,
    hyper_redundant_chain,
    named_robot,
    paper_chain,
    planar_chain,
    puma560,
    random_chain,
    seven_dof_arm,
    stanford_arm,
)
from repro.control import TrajectoryFollower
from repro.solvers import (
    CyclicCoordinateDescentSolver,
    DampedLeastSquaresSolver,
    JacobianTransposeSolver,
    NullSpaceSolver,
    PoseQuickIKSolver,
    PseudoinverseSolver,
    RandomRestartSolver,
    SelectivelyDampedSolver,
    make_solver,
)

__version__ = "1.0.0"

__all__ = [
    "IKResult",
    "QuickIKSolver",
    "SolverConfig",
    "PAPER_DOFS",
    "KinematicChain",
    "Joint",
    "JointLimits",
    "hyper_redundant_chain",
    "named_robot",
    "paper_chain",
    "planar_chain",
    "puma560",
    "random_chain",
    "seven_dof_arm",
    "stanford_arm",
    "CyclicCoordinateDescentSolver",
    "DampedLeastSquaresSolver",
    "JacobianTransposeSolver",
    "NullSpaceSolver",
    "PoseQuickIKSolver",
    "PseudoinverseSolver",
    "RandomRestartSolver",
    "SelectivelyDampedSolver",
    "TrajectoryFollower",
    "make_solver",
    "__version__",
]
