"""Step-size (alpha) selection for Jacobian-transpose IK.

Two pieces live here:

* :func:`buss_alpha` — the near-optimal base step size of Eq. (8),
  ``alpha = <e, JJ^T e> / <JJ^T e, JJ^T e>``, which minimises the *linearised*
  error after the step ``dtheta = alpha J^T e``.
* Speculation schedules — the rules that expand ``alpha_base`` into the
  candidate set Quick-IK searches in parallel.  The paper's schedule is the
  linear one of Eq. (9), ``alpha_k = (k / Max) alpha_base``; the others are
  ablations of the design choice (DESIGN.md section 4).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "buss_alpha",
    "linear_schedule",
    "geometric_schedule",
    "extended_schedule",
    "single_schedule",
    "get_schedule",
    "SCHEDULE_NAMES",
    "FALLBACK_ALPHA",
]

#: Step size used when Eq. (8) degenerates (singular pose, ``JJ^T e = 0``).
FALLBACK_ALPHA = 1e-3


def buss_alpha(error: np.ndarray, jjte: np.ndarray) -> float:
    """Near-optimal Jacobian-transpose step size (Eq. 8).

    Parameters
    ----------
    error:
        Task-space error ``e = X_t - f(theta)``.
    jjte:
        The vector ``J J^T e`` (the task-space motion produced by a unit
        ``J^T e`` step, to first order).

    Returns
    -------
    float
        ``<e, JJ^T e> / <JJ^T e, JJ^T e>``, or :data:`FALLBACK_ALPHA` when the
        denominator vanishes or the value is non-positive/non-finite (which
        happens exactly at poses where ``e`` lies in the null space of
        ``J^T`` — the degenerate case the paper's random restarts avoid).
    """
    denominator = float(np.dot(jjte, jjte))
    if denominator <= 0.0:
        return FALLBACK_ALPHA
    alpha = float(np.dot(error, jjte)) / denominator
    if not np.isfinite(alpha) or alpha <= 0.0:
        return FALLBACK_ALPHA
    return alpha


# ----------------------------------------------------------------------
# Speculation schedules
# ----------------------------------------------------------------------

ScheduleFn = Callable[[float, int], np.ndarray]


def linear_schedule(alpha_base: float, count: int) -> np.ndarray:
    """The paper's schedule (Eq. 9): ``alpha_k = (k / Max) alpha_base``.

    ``k`` runs from 1 to ``Max``, so the largest candidate is exactly
    ``alpha_base`` (k = Max reproduces the plain Buss step) and the smallest
    is ``alpha_base / Max``.
    """
    if count < 1:
        raise ValueError("speculation count must be >= 1")
    ks = np.arange(1, count + 1, dtype=float)
    return (ks / count) * alpha_base


def geometric_schedule(
    alpha_base: float, count: int, ratio: float = 0.75
) -> np.ndarray:
    """Ablation: geometrically spaced candidates ``alpha_base * ratio^(Max-k)``.

    Packs more candidates near ``alpha_base`` and still reaches very small
    steps; the largest candidate is again exactly ``alpha_base``.
    """
    if count < 1:
        raise ValueError("speculation count must be >= 1")
    if not 0.0 < ratio < 1.0:
        raise ValueError("ratio must be in (0, 1)")
    exponents = np.arange(count - 1, -1, -1, dtype=float)
    return alpha_base * ratio**exponents


def extended_schedule(alpha_base: float, count: int) -> np.ndarray:
    """Ablation: linear schedule over ``(0, 2 alpha_base]``.

    Tests the paper's claim that speculating *beyond* ``alpha_base`` is not
    worthwhile (Section 4, "there is no speculative value larger than
    alpha_base").
    """
    if count < 1:
        raise ValueError("speculation count must be >= 1")
    ks = np.arange(1, count + 1, dtype=float)
    return (2.0 * ks / count) * alpha_base


def single_schedule(alpha_base: float, count: int) -> np.ndarray:
    """Degenerate schedule: only ``alpha_base`` (JT-Serial inside the Quick-IK
    machinery; used to sanity-check that Max = 1 recovers the baseline)."""
    del count
    return np.array([alpha_base])


_SCHEDULES: dict[str, ScheduleFn] = {
    "linear": linear_schedule,
    "geometric": geometric_schedule,
    "extended": extended_schedule,
    "single": single_schedule,
}

#: Names accepted by :func:`get_schedule`.
SCHEDULE_NAMES = tuple(sorted(_SCHEDULES))


def get_schedule(name: str) -> ScheduleFn:
    """Look up a speculation schedule by name."""
    try:
        return _SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown schedule {name!r}; known: {', '.join(SCHEDULE_NAMES)}"
        ) from None
