"""The paper's primary contribution: Quick-IK and its step-size machinery."""

from repro.core.alpha import (
    FALLBACK_ALPHA,
    SCHEDULE_NAMES,
    buss_alpha,
    get_schedule,
)
from repro.core.base import IterativeIKSolver
from repro.core.hybrid import HybridSpeculativeSolver
from repro.core.multistart import SpeculativeRestartSolver, best_seed
from repro.core.quick_ik import DEFAULT_SPECULATIONS, QuickIKSolver
from repro.core.result import IKResult, SolverConfig, StepOutcome

__all__ = [
    "FALLBACK_ALPHA",
    "SCHEDULE_NAMES",
    "buss_alpha",
    "get_schedule",
    "IterativeIKSolver",
    "DEFAULT_SPECULATIONS",
    "QuickIKSolver",
    "HybridSpeculativeSolver",
    "SpeculativeRestartSolver",
    "best_seed",
    "IKResult",
    "SolverConfig",
    "StepOutcome",
]
