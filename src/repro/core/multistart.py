"""Speculative restarts: use the SSU array for parallel seeding.

Algorithm 1 starts from *one* random configuration.  The same hardware that
evaluates 64 speculative step sizes per iteration can, in iteration zero,
evaluate 64 random *configurations* instead — and start the solve from the
one already closest to the target.  This costs exactly one extra wave pass
and reliably removes the worst-case restarts (the long tail that dominates
mean iteration counts).

Wraps any solver with the standard ``solve`` API.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import IKResult

__all__ = ["SpeculativeRestartSolver", "best_seed"]


def best_seed(
    chain,
    target: np.ndarray,
    candidates: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The random configuration (of ``candidates`` drawn) whose FK lands
    closest to ``target`` — one batched FK evaluation."""
    if candidates < 1:
        raise ValueError("candidates must be >= 1")
    qs = np.stack([chain.random_configuration(rng) for _ in range(candidates)])
    positions = chain.end_positions_batch(qs)
    errors = np.linalg.norm(positions - np.asarray(target, dtype=float), axis=1)
    return qs[int(np.argmin(errors))]


class SpeculativeRestartSolver:
    """Seed the inner solver with the best of ``seed_candidates`` restarts.

    The seeding pass is charged to the result's ``fk_evaluations`` so cost
    comparisons stay honest (it corresponds to one extra scheduler pass over
    the SSU array in hardware).
    """

    def __init__(self, inner, seed_candidates: int = 64) -> None:
        if seed_candidates < 1:
            raise ValueError("seed_candidates must be >= 1")
        self.inner = inner
        self.seed_candidates = int(seed_candidates)

    @property
    def name(self) -> str:
        """Label derived from the inner solver."""
        return f"{self.inner.name}+seeded"

    @property
    def chain(self):
        """The inner solver's chain."""
        return self.inner.chain

    def solve(
        self,
        target: np.ndarray,
        q0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> IKResult:
        """Solve from the best speculative seed (``q0`` overrides seeding)."""
        if rng is None:
            rng = np.random.default_rng()
        if q0 is None:
            q0 = best_seed(self.chain, target, self.seed_candidates, rng)
            extra_fk = self.seed_candidates
        else:
            extra_fk = 0
        result = self.inner.solve(target, q0=q0, rng=rng)
        result.fk_evaluations += extra_fk
        result.solver = self.name
        return result
