"""Quick-IK: speculative parallel Jacobian-transpose IK (paper Section 4).

Each iteration (Algorithm 1):

1. compute the Jacobian ``J`` and the base update ``dtheta_base = J^T e``;
2. compute the Buss base step size ``alpha_base`` (Eq. 8);
3. *speculate* ``Max`` candidate step sizes ``alpha_k = (k/Max) alpha_base``
   (Eq. 9), evaluate the true forward kinematics of every candidate
   ``theta + alpha_k dtheta_base``;
4. return immediately if any candidate meets the accuracy constraint
   (lines 12-13, first such ``k`` in enumeration order), otherwise keep the
   candidate with the smallest true error (line 16).

Because ``k = Max`` reproduces the plain Buss step, the greedy choice is never
worse per iteration than JT-Serial — that is the mechanism behind the 97%
iteration reduction.  All ``Max`` forward-kinematics evaluations are
independent, which is what IKAcc's SSU array exploits in hardware; here they
are evaluated as one batched numpy FK.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.alpha import ScheduleFn, buss_alpha, get_schedule
from repro.core.base import IterativeIKSolver
from repro.core.result import SolverConfig, StepOutcome
from repro.kinematics.chain import KinematicChain

__all__ = ["QuickIKSolver", "DEFAULT_SPECULATIONS"]

#: The paper's operating point: "we will set the number of speculations as 64"
#: (Section 6.2, Figure 4 trade-off).
DEFAULT_SPECULATIONS = 64


class QuickIKSolver(IterativeIKSolver):
    """The paper's primary contribution (Algorithm 1).

    Parameters
    ----------
    chain:
        Manipulator to solve for.
    speculations:
        ``Max``, the number of speculative step sizes per iteration.
    schedule:
        Speculation schedule name (default ``"linear"``, the paper's Eq. 9)
        or a callable ``(alpha_base, count) -> candidates``.
    config:
        Convergence policy (tolerance 1e-2 m, cap 10k, as in the paper).
    track_chosen:
        When true, records which candidate index won each iteration in
        :attr:`chosen_history` (used by the speculation-strategy ablation).
    """

    name = "JT-Speculation"

    def __init__(
        self,
        chain: KinematicChain,
        speculations: int = DEFAULT_SPECULATIONS,
        schedule: str | ScheduleFn = "linear",
        config: SolverConfig | None = None,
        track_chosen: bool = False,
    ) -> None:
        super().__init__(chain, config)
        if speculations < 1:
            raise ValueError("speculations must be >= 1")
        self.speculations = int(speculations)
        self.schedule: ScheduleFn = (
            get_schedule(schedule) if isinstance(schedule, str) else schedule
        )
        self.track_chosen = track_chosen
        #: Winning candidate index per iteration (when ``track_chosen``).
        self.chosen_history: list[int] = []

    def _step(
        self, q: np.ndarray, position: np.ndarray, target: np.ndarray
    ) -> StepOutcome:
        tr = self._tracer
        timed = tr.enabled
        if timed:
            t0 = time.perf_counter()
        error_vec = target - position
        jacobian = self.chain.jacobian_position(q)
        dq_base = jacobian.T @ error_vec  # Algorithm 1 line 4
        jjte = jacobian @ dq_base
        if timed:
            t1 = time.perf_counter()
            tr.add_phase("jacobian", t1 - t0)
        alpha_base = buss_alpha(error_vec, jjte)  # line 5

        alphas = self.schedule(alpha_base, self.speculations)  # lines 6-7
        candidates = q[None, :] + alphas[:, None] * dq_base[None, :]  # 8-9
        if self.config.respect_limits:
            candidates = np.clip(
                candidates, self.chain.lower_limits, self.chain.upper_limits
            )
        if timed:
            t2 = time.perf_counter()
            tr.add_phase("alpha", t2 - t1)
        positions = self.chain.end_positions_batch(candidates)  # line 10
        if timed:
            t3 = time.perf_counter()
            tr.add_phase("fk_sweep", t3 - t2)
        errors = np.linalg.norm(target[None, :] - positions, axis=1)  # line 11

        below = np.flatnonzero(errors < self.config.tolerance)
        if below.size:
            # Lines 12-13: the hardware returns the first candidate (in
            # enumeration order) that meets the accuracy constraint.
            chosen = int(below[0])
            early = True
        else:
            chosen = int(np.argmin(errors))  # line 16
            early = False
        if self.track_chosen:
            self.chosen_history.append(chosen)
        if timed:
            tr.add_phase("selection", time.perf_counter() - t3)
        return StepOutcome(
            q=candidates[chosen],
            position=positions[chosen],
            error=float(errors[chosen]),
            fk_evaluations=self.speculations,
            early_exit=early,
        )
