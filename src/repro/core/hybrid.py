"""Hybrid speculation: search step sizes *and* directions in parallel.

An extension of Quick-IK beyond the paper.  Algorithm 1 speculates only over
the scalar step size along the single transpose direction ``J^T e``.  Nothing
in the hardware requires that: each SSU evaluates *a candidate configuration*
— so the candidate set can mix direction families.  This solver speculates
over

* the paper's Eq. 9 grid along ``J^T e`` (a fraction of the budget), and
* damped-least-squares directions ``J^T (JJ^T + lambda^2 I)^-1 e`` for a
  log-spaced grid of damping values (the rest of the budget).

DLS directions dominate near singular poses where the raw transpose
direction stalls, while the cheap transpose candidates dominate far from
them — the argmin picks per-iteration whichever family is winning.  The cost
model is unchanged from the hardware's perspective (same number of FK
evaluations per iteration) except for the small serial add-on of the 3x3
solves, which the SPU's epilogue can absorb.
"""

from __future__ import annotations

import numpy as np

from repro.core.alpha import buss_alpha
from repro.core.base import IterativeIKSolver
from repro.core.result import SolverConfig, StepOutcome
from repro.kinematics.chain import KinematicChain

__all__ = ["HybridSpeculativeSolver"]


class HybridSpeculativeSolver(IterativeIKSolver):
    """Quick-IK with a mixed transpose/DLS candidate set.

    Parameters
    ----------
    speculations:
        Total candidate budget per iteration (FK evaluations).
    dls_fraction:
        Share of the budget spent on DLS-direction candidates.
    damping_range:
        ``(lambda_min, lambda_max)`` of the log-spaced damping grid.
    """

    name = "JT-Hybrid"

    def __init__(
        self,
        chain: KinematicChain,
        speculations: int = 64,
        config: SolverConfig | None = None,
        dls_fraction: float = 0.25,
        damping_range: tuple[float, float] = (1e-3, 1.0),
    ) -> None:
        super().__init__(chain, config)
        if speculations < 2:
            raise ValueError("hybrid speculation needs at least 2 candidates")
        if not 0.0 <= dls_fraction < 1.0:
            raise ValueError("dls_fraction must be in [0, 1)")
        if not 0.0 < damping_range[0] <= damping_range[1]:
            raise ValueError("damping_range must be positive and ordered")
        self.speculations = int(speculations)
        self.n_dls = int(round(dls_fraction * speculations))
        self.n_jt = self.speculations - self.n_dls
        if self.n_dls > 0:
            self.dampings = np.geomspace(
                damping_range[0], damping_range[1], self.n_dls
            )
        else:
            self.dampings = np.empty(0)

    def _step(
        self, q: np.ndarray, position: np.ndarray, target: np.ndarray
    ) -> StepOutcome:
        error_vec = target - position
        jacobian = self.chain.jacobian_position(q)
        dq_base = jacobian.T @ error_vec
        alpha_base = buss_alpha(error_vec, jacobian @ dq_base)

        candidates = []
        # Family 1: the paper's Eq. 9 grid along the transpose direction.
        ks = np.arange(1, self.n_jt + 1) / self.n_jt
        candidates.append(q[None, :] + (ks * alpha_base)[:, None] * dq_base[None, :])
        # Family 2: DLS directions over the damping grid (full steps).
        if self.n_dls:
            jjt = jacobian @ jacobian.T
            eye = np.eye(jjt.shape[0])
            dls_steps = []
            for lam in self.dampings:
                rhs = np.linalg.solve(jjt + (lam * lam) * eye, error_vec)
                dls_steps.append(q + jacobian.T @ rhs)
            candidates.append(np.stack(dls_steps))
        stacked = np.concatenate(candidates, axis=0)

        positions = self.chain.end_positions_batch(stacked)
        errors = np.linalg.norm(target[None, :] - positions, axis=1)
        below = np.flatnonzero(errors < self.config.tolerance)
        chosen = int(below[0]) if below.size else int(np.argmin(errors))
        return StepOutcome(
            q=stacked[chosen],
            position=positions[chosen],
            error=float(errors[chosen]),
            fk_evaluations=stacked.shape[0],
            early_exit=bool(below.size),
        )
