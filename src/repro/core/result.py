"""Shared result/configuration types for every IK solver in the repository.

The fields mirror the quantities the paper reports:

* ``iterations`` — outer-loop count (Figures 4 and 5a).
* ``work`` — ``speculations x iterations``, the computation-load metric of
  Figure 5(b) ("For JT-serial and J-1-SVD, the speculation is one").
* ``fk_evaluations`` — exact forward-kinematics call count, used by the
  platform cost models to price a solve on Atom / TX1 / IKAcc (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolverConfig", "StepOutcome", "IKResult"]

#: Paper accuracy constraint: 1e-2 metre (Section 6.1).
DEFAULT_TOLERANCE = 1e-2

#: Paper iteration cap: 10k (Section 6.1).
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class SolverConfig:
    """Convergence policy shared by all solvers.

    Parameters
    ----------
    tolerance:
        Accuracy constraint on ``||X_t - f(theta)||`` in metres.
    max_iterations:
        Hard cap on outer iterations; a run that hits it is *not converged*.
    record_history:
        When true, the per-iteration error norms are kept on the result.
    respect_limits:
        When true, every candidate configuration is clamped into the joint
        limits before evaluation (an extension; the paper ignores limits).
    """

    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    record_history: bool = True
    respect_limits: bool = False

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass
class StepOutcome:
    """What one solver iteration produced.

    ``position``/``error`` are optional: a solver that already evaluated the
    FK of its new configuration (Quick-IK evaluates every speculation) reports
    them so the driver loop does not recompute; a solver that did not leaves
    them ``None``.
    """

    q: np.ndarray
    position: np.ndarray | None = None
    error: float | None = None
    fk_evaluations: int = 0
    early_exit: bool = False


@dataclass
class IKResult:
    """Outcome of one IK solve."""

    q: np.ndarray
    converged: bool
    iterations: int
    error: float
    target: np.ndarray
    solver: str
    dof: int
    speculations: int = 1
    fk_evaluations: int = 0
    wall_time: float = 0.0
    error_history: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def work(self) -> int:
        """Computation load ``speculations x iterations`` (Figure 5b)."""
        return self.speculations * self.iterations

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "FAILED"
        return (
            f"{self.solver}: {status} in {self.iterations} iterations, "
            f"error {self.error:.3e} m ({self.dof} DOF, "
            f"{self.fk_evaluations} FK evals)"
        )
