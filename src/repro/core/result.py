"""Shared result/configuration types for every IK solver in the repository.

The fields mirror the quantities the paper reports:

* ``iterations`` — outer-loop count (Figures 4 and 5a).
* ``work`` — ``speculations x iterations``, the computation-load metric of
  Figure 5(b) ("For JT-serial and J-1-SVD, the speculation is one").
* ``fk_evaluations`` — exact forward-kinematics call count, used by the
  platform cost models to price a solve on Atom / TX1 / IKAcc (Table 2).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.execution import KernelSpec
    from repro.resilience.watchdogs import WatchdogConfig

__all__ = ["SolverConfig", "StepOutcome", "IKResult", "BatchResult"]

#: Paper accuracy constraint: 1e-2 metre (Section 6.1).
DEFAULT_TOLERANCE = 1e-2

#: Paper iteration cap: 10k (Section 6.1).
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class SolverConfig:
    """Convergence policy shared by all solvers.

    Parameters
    ----------
    tolerance:
        Accuracy constraint on ``||X_t - f(theta)||`` in metres.
    max_iterations:
        Hard cap on outer iterations; a run that hits it is *not converged*.
    record_history:
        When true, the per-iteration error norms are kept on the result.
    respect_limits:
        When true, every candidate configuration is clamped into the joint
        limits before evaluation (an extension; the paper ignores limits).
    watchdog:
        Optional :class:`~repro.resilience.watchdogs.WatchdogConfig`.  When
        set, the shared driver arms one watchdog per solve (wall-clock
        deadline, divergence and stall detectors) and records trips as a
        typed early exit on ``IKResult.status``.  ``None`` (the default)
        costs the hot loop a single ``is not None`` check per solve.
    kernel:
        FK/Jacobian kernel selection (see :mod:`repro.kinematics.kernels`):
        a mode name (``"scalar"`` pins the original link-by-link loops,
        ``"vectorized"`` the stacked-matmul fast path), a ``"mode:dtype"``
        shorthand, or a full :class:`~repro.execution.KernelSpec` pinning
        mode, dtype and chunk size.  ``None`` (the default) inherits
        whatever kernel the chain was built with, which is scalar/float64
        unless the caller opted in.
    """

    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    record_history: bool = True
    respect_limits: bool = False
    watchdog: "WatchdogConfig | None" = None
    kernel: "str | KernelSpec | None" = None

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.kernel_spec  # validates the mode/dtype eagerly

    @property
    def kernel_spec(self) -> "KernelSpec | None":
        """``kernel`` normalised to a :class:`~repro.execution.KernelSpec`
        (``None`` when no kernel preference is set)."""
        if self.kernel is None:
            return None
        from repro.execution import KernelSpec

        return KernelSpec.coerce(self.kernel)


@dataclass
class StepOutcome:
    """What one solver iteration produced.

    ``position``/``error`` are optional: a solver that already evaluated the
    FK of its new configuration (Quick-IK evaluates every speculation) reports
    them so the driver loop does not recompute; a solver that did not leaves
    them ``None``.
    """

    q: np.ndarray
    position: np.ndarray | None = None
    error: float | None = None
    fk_evaluations: int = 0
    early_exit: bool = False


@dataclass
class IKResult:
    """Outcome of one IK solve.

    ``status`` is the typed termination reason: ``"converged"`` /
    ``"max_iterations"`` from the driver, ``"nonfinite"`` when a step
    produced a non-finite update, a watchdog status (``"deadline"`` /
    ``"diverged"`` / ``"stalled"``), or a guard / worker failure kind from
    the resilience layer (see ``docs/robustness.md``).  Legacy constructors
    that never set it leave the empty string.
    """

    q: np.ndarray
    converged: bool
    iterations: int
    error: float
    target: np.ndarray
    solver: str
    dof: int
    speculations: int = 1
    fk_evaluations: int = 0
    wall_time: float = 0.0
    error_history: np.ndarray = field(default_factory=lambda: np.empty(0))
    status: str = ""

    @property
    def work(self) -> int:
        """Computation load ``speculations x iterations`` (Figure 5b)."""
        return self.speculations * self.iterations

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "FAILED"
        return (
            f"{self.solver}: {status} in {self.iterations} iterations, "
            f"error {self.error:.3e} m ({self.dof} DOF, "
            f"{self.fk_evaluations} FK evals)"
        )


@dataclass
class BatchResult(Sequence):
    """Outcome of one batch solve: per-problem results plus aggregates.

    Every ``solve_batch`` entry point returns one of these.  It is a
    :class:`~collections.abc.Sequence` of :class:`IKResult`, so pre-existing
    callers that iterated/indexed the old ``list[IKResult]`` return value
    keep working unchanged.

    ``wall_time`` is the *aggregate* wall time of the whole batch (the
    per-problem ``result.wall_time`` fields amortise it); ``telemetry`` is an
    optional summary dict attached when the batch ran under a tracer;
    ``failures`` is a :class:`~repro.resilience.report.FailureReport`
    attached by the resilient batch paths (``on_error="skip"/"fallback"``)
    accounting for every guarded, failed or recovered problem.
    """

    results: list[IKResult]
    solver: str
    wall_time: float = 0.0
    telemetry: dict[str, Any] | None = None
    failures: Any = None

    # -- sequence protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):  # type: ignore[override]
        return self.results[index]

    def __iter__(self) -> Iterator[IKResult]:
        return iter(self.results)

    # -- aggregates -----------------------------------------------------

    @property
    def converged_count(self) -> int:
        """Number of problems that met the accuracy constraint."""
        return sum(1 for r in self.results if r.converged)

    @property
    def convergence_rate(self) -> float:
        """Fraction of converged problems (NaN for an empty batch)."""
        if not self.results:
            return float("nan")
        return self.converged_count / len(self.results)

    @property
    def total_iterations(self) -> int:
        """Outer-loop iterations summed over the batch."""
        return sum(r.iterations for r in self.results)

    @property
    def total_fk_evaluations(self) -> int:
        """FK evaluations summed over the batch."""
        return sum(r.fk_evaluations for r in self.results)

    def summary(self) -> str:
        """One-line human-readable summary."""
        n = len(self.results)
        return (
            f"{self.solver}: {self.converged_count}/{n} converged, "
            f"{self.total_iterations} iterations, "
            f"{self.total_fk_evaluations} FK evals, "
            f"{self.wall_time * 1e3:.2f} ms total"
        )
