"""Driver loop shared by every iterative IK solver.

Algorithm 1's outer structure (random initial configuration, iterate until the
accuracy constraint or the iteration cap) is identical for the Jacobian
transpose, pseudoinverse, DLS, SDLS, CCD and Quick-IK solvers; each solver
only customises one iteration via :meth:`IterativeIKSolver._step`.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod

import numpy as np

from repro.core.result import BatchResult, IKResult, SolverConfig, StepOutcome
from repro.kinematics.chain import KinematicChain
from repro.telemetry.tracer import NULL_TRACER, Tracer, get_tracer

__all__ = ["IterativeIKSolver"]


class IterativeIKSolver(ABC):
    """Base class for iterative task-space IK solvers.

    Subclasses set :attr:`name` (used in every report/table) and
    :attr:`speculations` (1 for serial methods; the Figure 5b load metric is
    ``speculations x iterations``), and implement :meth:`_step`.
    """

    #: Solver label used in tables (overridden by subclasses).
    name = "iterative-ik"

    #: Candidate evaluations per iteration (1 for serial methods).
    speculations = 1

    #: Full Jacobian builds per iteration (0 for CCD); telemetry counter.
    jacobians_per_step = 1

    def __init__(
        self, chain: KinematicChain, config: SolverConfig | None = None
    ) -> None:
        self.config = config or SolverConfig()
        # ``config.kernel`` overrides the chain's FK/Jacobian kernel mode
        # (and, via a KernelSpec, its dtype); ``None`` inherits whatever the
        # chain was built with.
        spec = self.config.kernel_spec
        self.chain = spec.apply(chain) if spec is not None else chain
        #: Tracer active for the current solve; ``_step`` implementations may
        #: read it (guarding on ``.enabled``) to time their internal phases.
        self._tracer: Tracer = NULL_TRACER

    @abstractmethod
    def _step(
        self, q: np.ndarray, position: np.ndarray, target: np.ndarray
    ) -> StepOutcome:
        """Run one iteration from configuration ``q``.

        ``position`` is ``f(q)`` (already evaluated by the driver) and
        ``target`` is ``X_t``.  Returns the new configuration, optionally with
        its already-evaluated position/error, plus the number of FK
        evaluations the step performed.
        """

    def initial_configuration(
        self, q0: np.ndarray | None, rng: np.random.Generator | None
    ) -> np.ndarray:
        """Resolve the starting configuration.

        Algorithm 1 line 1 sets theta randomly; callers may instead pass an
        explicit ``q0`` (e.g. the previous trajectory waypoint's solution).
        """
        if q0 is not None:
            q0 = np.asarray(q0, dtype=float)
            if q0.shape != (self.chain.dof,):
                raise ValueError(
                    f"q0 must have shape ({self.chain.dof},), got {q0.shape}"
                )
            return q0.copy()
        if rng is None:
            rng = np.random.default_rng()
        return self.chain.random_configuration(rng)

    def solve(
        self,
        target: np.ndarray,
        q0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
    ) -> IKResult:
        """Solve ``theta = f^-1(X_t)`` for a 3-D target position.

        Parameters
        ----------
        target:
            Target end-effector position ``X_t`` (3-vector).
        q0:
            Optional starting configuration; random when omitted.
        rng:
            Random generator used when ``q0`` is omitted.
        tracer:
            Telemetry sink; defaults to the process-global tracer
            (:data:`~repro.telemetry.NULL_TRACER` unless one is installed).
        """
        target = np.asarray(target, dtype=float)
        if target.shape != (3,):
            raise ValueError(f"target must be a 3-vector, got shape {target.shape}")

        tr = tracer if tracer is not None else get_tracer()
        self._tracer = tr
        traced = tr.enabled
        config = self.config
        start = time.perf_counter()
        q = self.initial_configuration(q0, rng)
        position = self.chain.end_position(q)
        error = float(np.linalg.norm(target - position))
        fk_evaluations = 1
        history = [error] if config.record_history else None
        if traced:
            tr.solve_start(self.name, self.chain.dof, target=target,
                           speculations=self.speculations,
                           kernel=self.chain.kernel)
            tr.count("fk_evaluations")

        # Watchdog (deadline / divergence / stall detectors): armed only
        # when configured, so the null path pays one ``is not None`` check.
        watchdog = (
            config.watchdog.start() if config.watchdog is not None else None
        )
        status = ""
        iterations = 0
        converged = error < config.tolerance
        while not converged and iterations < config.max_iterations:
            prev_q, prev_position, prev_error = q, position, error
            outcome = self._step(q, position, target)
            iterations += 1
            fk_evaluations += outcome.fk_evaluations
            q = outcome.q
            if config.respect_limits:
                q = self.chain.clamp(q)
                # Clamping may invalidate the step's reported position.
                outcome.position = None
                outcome.error = None
            if outcome.position is None:
                position = self.chain.end_position(q)
                fk_evaluations += 1
            else:
                position = outcome.position
            if outcome.error is None:
                error = float(np.linalg.norm(target - position))
            else:
                error = float(outcome.error)
            if history is not None:
                history.append(error)
            converged = error < config.tolerance or outcome.early_exit
            if traced:
                # The driver ran one extra FK when the step left position
                # unset (or limits-clamping invalidated it, which also
                # resets ``outcome.position`` to None).
                step_fk = outcome.fk_evaluations + (
                    1 if outcome.position is None else 0
                )
                tr.count("fk_evaluations", step_fk)
                tr.count("jacobian_builds", self.jacobians_per_step)
                tr.count("candidate_evaluations", self.speculations)
                tr.iteration(iterations, error, fk_evaluations=step_fk)
            if not converged:
                if not math.isfinite(error):
                    # A non-finite update would otherwise propagate through
                    # every remaining iteration (NaN comparisons are False,
                    # so the loop burns the whole budget computing garbage).
                    # Keep the last finite state and exit typed.
                    q, position, error = prev_q, prev_position, prev_error
                    status = "nonfinite"
                    if traced:
                        tr.count("nonfinite_exits")
                    break
                if watchdog is not None:
                    verdict = watchdog.check(error)
                    if verdict is not None:
                        status = verdict
                        if traced:
                            tr.count(f"watchdog_{verdict}")
                        break

        converged = bool(error < config.tolerance)
        if not status:
            status = "converged" if converged else "max_iterations"
        if traced:
            tr.solve_end(
                self.name,
                converged=converged,
                iterations=iterations,
                error=error,
                fk_evaluations=fk_evaluations,
                wall_time=time.perf_counter() - start,
                status=status,
            )
            self._tracer = NULL_TRACER
        return IKResult(
            q=q,
            converged=converged,
            iterations=iterations,
            error=error,
            target=target,
            solver=self.name,
            dof=self.chain.dof,
            speculations=self.speculations,
            fk_evaluations=fk_evaluations,
            wall_time=time.perf_counter() - start,
            error_history=(
                np.asarray(history) if history is not None else np.empty(0)
            ),
            status=status,
        )

    def solve_batch(
        self,
        targets: np.ndarray,
        rng: np.random.Generator | None = None,
        q0: np.ndarray | None = None,
        tracer: Tracer | None = None,
    ) -> BatchResult:
        """Solve a batch of targets (one random restart each).

        The paper's evaluation solves 1K target positions per DOF
        configuration; this is the entry point the harness uses.  Returns a
        :class:`BatchResult` (a sequence of per-target :class:`IKResult`, so
        callers of the historical ``list[IKResult]`` API are unaffected).

        ``q0`` may be one configuration (shared by every target) or one row
        per target — the same broadcast the lock-step engines and the
        sharded pool accept, so callers (e.g. the serving layer) can hand
        any batch path pre-resolved per-problem initial configurations.
        """
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if targets.shape[1] != 3:
            raise ValueError("targets must have shape (M, 3)")
        if rng is None:
            rng = np.random.default_rng()
        q0_rows = None
        if q0 is not None:
            q0 = np.asarray(q0, dtype=float)
            if q0.ndim == 2:
                if q0.shape != (targets.shape[0], self.chain.dof):
                    raise ValueError(
                        f"q0 must broadcast to "
                        f"({targets.shape[0]}, {self.chain.dof}), "
                        f"got {q0.shape}"
                    )
                q0_rows = q0
        start = time.perf_counter()
        results = [
            self.solve(
                t,
                q0=q0_rows[i] if q0_rows is not None else q0,
                rng=rng,
                tracer=tracer,
            )
            for i, t in enumerate(targets)
        ]
        return BatchResult(
            results=results,
            solver=self.name,
            wall_time=time.perf_counter() - start,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(chain={self.chain.name!r}, "
            f"tolerance={self.config.tolerance}, "
            f"max_iterations={self.config.max_iterations})"
        )
