"""Target-position generators for the evaluation workloads.

The paper solves "1K target positions" per DOF configuration without
specifying their distribution.  The generators here cover the reasonable
readings:

* :func:`reachable_targets` — forward kinematics of uniformly random joint
  configurations.  Guaranteed solvable, spans the whole workspace interior;
  this is the default for every paper experiment.
* :func:`shell_targets` — uniform directions at a controlled fraction of the
  chain's maximum reach.  Progressively harder as the fraction approaches 1;
  used by the difficulty-sweep ablation (not guaranteed solvable beyond
  ~0.9 for arbitrary chains).
* :func:`extended_pose_targets` — FK of configurations with a narrowed joint
  range, i.e. nearly-extended arms.  Guaranteed solvable *and* near the
  boundary — the stress workload.
"""

from __future__ import annotations

import numpy as np

from repro.kinematics.chain import KinematicChain

__all__ = [
    "reachable_targets",
    "shell_targets",
    "extended_pose_targets",
    "TARGET_GENERATORS",
    "make_targets",
]


def reachable_targets(
    chain: KinematicChain, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` targets as FK of uniform random configurations; ``(M, 3)``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    qs = np.stack([chain.random_configuration(rng) for _ in range(count)])
    return chain.end_positions_batch(qs)


def shell_targets(
    chain: KinematicChain,
    count: int,
    rng: np.random.Generator,
    min_fraction: float = 0.0,
    max_fraction: float = 0.8,
) -> np.ndarray:
    """Targets uniform in a spherical shell around the base; ``(M, 3)``.

    Radii are sampled so the points are uniform in *volume* between
    ``min_fraction`` and ``max_fraction`` of the total reach.  Reachability is
    not verified — keep ``max_fraction`` conservative for arbitrary chains.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0.0 <= min_fraction < max_fraction <= 1.0:
        raise ValueError("need 0 <= min_fraction < max_fraction <= 1")
    reach = chain.total_reach()
    directions = rng.normal(size=(count, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    low, high = min_fraction**3, max_fraction**3
    radii = reach * rng.uniform(low, high, size=count) ** (1.0 / 3.0)
    base_origin = chain.base[:3, 3]
    return base_origin[None, :] + radii[:, None] * directions


def extended_pose_targets(
    chain: KinematicChain,
    count: int,
    rng: np.random.Generator,
    range_fraction: float = 0.2,
) -> np.ndarray:
    """Targets as FK of nearly-extended configurations; ``(M, 3)``.

    Joint values are drawn from the central ``range_fraction`` of each
    joint's limit interval, producing targets close to the workspace boundary
    that are still guaranteed reachable.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0.0 < range_fraction <= 1.0:
        raise ValueError("range_fraction must be in (0, 1]")
    lower = chain.lower_limits
    upper = chain.upper_limits
    center = 0.5 * (lower + upper)
    half_span = 0.5 * (upper - lower) * range_fraction
    qs = rng.uniform(
        center - half_span, center + half_span, size=(count, chain.dof)
    )
    return chain.end_positions_batch(qs)


#: Named generators for CLI/bench parameterisation.
TARGET_GENERATORS = {
    "reachable": reachable_targets,
    "shell": shell_targets,
    "extended": extended_pose_targets,
}


def make_targets(
    kind: str,
    chain: KinematicChain,
    count: int,
    rng: np.random.Generator,
    **kwargs,
) -> np.ndarray:
    """Dispatch to a named target generator."""
    try:
        generator = TARGET_GENERATORS[kind]
    except KeyError:
        known = ", ".join(sorted(TARGET_GENERATORS))
        raise KeyError(f"unknown target kind {kind!r}; known: {known}") from None
    return generator(chain, count, rng, **kwargs)
