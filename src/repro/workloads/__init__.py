"""Workloads: target generators and the paper's evaluation suite."""

from repro.workloads.suite import (
    DEFAULT_TARGET_COUNT,
    PAPER_TARGET_COUNT,
    EvaluationSuite,
    SolverStats,
    aggregate_results,
    default_dofs,
    default_target_count,
)
from repro.workloads.targets import (
    TARGET_GENERATORS,
    extended_pose_targets,
    make_targets,
    reachable_targets,
    shell_targets,
)

__all__ = [
    "DEFAULT_TARGET_COUNT",
    "PAPER_TARGET_COUNT",
    "EvaluationSuite",
    "SolverStats",
    "aggregate_results",
    "default_dofs",
    "default_target_count",
    "TARGET_GENERATORS",
    "extended_pose_targets",
    "make_targets",
    "reachable_targets",
    "shell_targets",
]
