"""The paper's evaluation suite: manipulators, targets and aggregation.

One :class:`EvaluationSuite` instance pins down everything an experiment
needs to be reproducible: the DOF sweep (12/25/50/75/100), the per-DOF
manipulator (seeded, deterministic), the target distribution and count, and
the solver seed.  Experiments (:mod:`repro.evaluation.experiments`) only add
*which solvers* to run.

The paper solves 1000 targets per DOF; pure-Python runs default to a smaller
deterministic sample, overridable with the ``REPRO_TARGETS`` environment
variable (the statistics are means over i.i.d. targets, stable well below
1000 samples).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterativeIKSolver
from repro.core.result import IKResult
from repro.execution import ExecutionOptions
from repro.kinematics.chain import KinematicChain
from repro.kinematics.robots import PAPER_DOFS, paper_chain
from repro.workloads.targets import make_targets

__all__ = [
    "default_target_count",
    "default_dofs",
    "SolverStats",
    "aggregate_results",
    "EvaluationSuite",
]

#: Targets per DOF when ``REPRO_TARGETS`` is unset.
DEFAULT_TARGET_COUNT = 20

#: The paper's per-DOF target count (Section 6.2).
PAPER_TARGET_COUNT = 1000


def default_target_count() -> int:
    """Targets per DOF configuration, honouring ``REPRO_TARGETS``."""
    raw = os.environ.get("REPRO_TARGETS", "")
    if raw.strip():
        value = int(raw)
        if value < 1:
            raise ValueError("REPRO_TARGETS must be >= 1")
        return value
    return DEFAULT_TARGET_COUNT


def default_dofs() -> tuple[int, ...]:
    """DOF sweep, honouring ``REPRO_DOFS`` (comma-separated, e.g. "12,25")."""
    raw = os.environ.get("REPRO_DOFS", "")
    if raw.strip():
        dofs = tuple(int(part) for part in raw.split(",") if part.strip())
        if not dofs or any(d < 1 for d in dofs):
            raise ValueError("REPRO_DOFS must be a comma list of positive ints")
        return dofs
    return PAPER_DOFS


@dataclass(frozen=True)
class SolverStats:
    """Aggregate of one solver over one target set (one Figure-5 bar)."""

    solver: str
    dof: int
    speculations: int
    n_targets: int
    mean_iterations: float
    median_iterations: float
    max_iterations: int
    mean_work: float
    mean_fk_evaluations: float
    success_rate: float
    mean_error: float
    mean_wall_time: float
    iterations: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0))

    def row(self) -> dict:
        """Flat dict for table formatting."""
        return {
            "solver": self.solver,
            "dof": self.dof,
            "speculations": self.speculations,
            "targets": self.n_targets,
            "mean_iterations": self.mean_iterations,
            "median_iterations": self.median_iterations,
            "mean_work": self.mean_work,
            "success_rate": self.success_rate,
        }


def aggregate_results(results: list[IKResult]) -> SolverStats:
    """Collapse per-target results into a :class:`SolverStats`."""
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    iterations = np.array([r.iterations for r in results])
    first = results[0]
    return SolverStats(
        solver=first.solver,
        dof=first.dof,
        speculations=first.speculations,
        n_targets=len(results),
        mean_iterations=float(iterations.mean()),
        median_iterations=float(np.median(iterations)),
        max_iterations=int(iterations.max()),
        mean_work=float(
            np.mean([r.work for r in results])
        ),
        mean_fk_evaluations=float(np.mean([r.fk_evaluations for r in results])),
        success_rate=float(np.mean([r.converged for r in results])),
        mean_error=float(np.mean([r.error for r in results])),
        mean_wall_time=float(np.mean([r.wall_time for r in results])),
        iterations=iterations,
    )


class EvaluationSuite:
    """Deterministic workload: chains + targets for the paper's DOF sweep.

    Parameters
    ----------
    dofs:
        DOF configurations (default: ``REPRO_DOFS`` or the paper's
        12/25/50/75/100).
    targets_per_dof:
        Targets per configuration (default: :func:`default_target_count`).
    target_kind:
        Generator name from :mod:`repro.workloads.targets`.
    seed:
        Master seed; targets and solver restarts derive from it.
    total_reach:
        Reach of the generated manipulators (metres).
    options:
        Typed execution policy (:class:`~repro.execution.ExecutionOptions`):
        the kernel spec (mode / dtype / chunk) is applied to every
        evaluation chain, and ``workers`` shards each solver run.
    workers:
        Deprecated alias for ``options.workers`` (default 1: in-process).
        Any value produces identical per-target results — the sharded path
        draws the same restart stream (see :mod:`repro.parallel`).
    kernel:
        Deprecated alias for ``options.kernel``: FK/Jacobian kernel mode
        for the evaluation chains (:mod:`repro.kinematics.kernels`);
        ``None`` keeps the chains' default (scalar).
    """

    def __init__(
        self,
        dofs: tuple[int, ...] | None = None,
        targets_per_dof: int | None = None,
        target_kind: str = "reachable",
        seed: int = 2017,
        total_reach: float = 1.2,
        workers: int | None = None,
        kernel: str | None = None,
        options: "ExecutionOptions | None" = None,
    ) -> None:
        if dofs is None:
            dofs = default_dofs()
        if not dofs:
            raise ValueError("dofs must be non-empty")
        self.dofs = tuple(dofs)
        self.targets_per_dof = (
            default_target_count() if targets_per_dof is None else targets_per_dof
        )
        if self.targets_per_dof < 1:
            raise ValueError("targets_per_dof must be >= 1")
        self.target_kind = target_kind
        self.seed = seed
        self.total_reach = total_reach
        # workers=1 was the old explicit default; it adds no information, so
        # it does not count as a legacy usage worth warning about.
        self.options = ExecutionOptions.from_legacy(
            options, "EvaluationSuite",
            kernel=kernel,
            workers=None if workers == 1 else workers,
        )
        self.workers = (
            self.options.workers if self.options.workers is not None else 1
        )
        spec = self.options.kernel
        self.kernel = spec.name if spec is not None else None
        self._chains: dict[int, KinematicChain] = {}
        self._targets: dict[int, np.ndarray] = {}

    def chain(self, dof: int) -> KinematicChain:
        """The (cached) evaluation manipulator for ``dof``."""
        if dof not in self._chains:
            chain = paper_chain(dof, total_reach=self.total_reach)
            spec = self.options.kernel
            if spec is not None:
                chain = spec.apply(chain)
            self._chains[dof] = chain
        return self._chains[dof]

    def targets(self, dof: int) -> np.ndarray:
        """The (cached, deterministic) target set for ``dof``; ``(M, 3)``."""
        if dof not in self._targets:
            rng = np.random.default_rng((self.seed, dof))
            self._targets[dof] = make_targets(
                self.target_kind, self.chain(dof), self.targets_per_dof, rng
            )
        return self._targets[dof]

    def solver_rng(self, dof: int, solver_name: str) -> np.random.Generator:
        """Deterministic restart RNG per (dof, solver).

        Uses a stable CRC of the name — Python's ``hash()`` is randomised per
        process and would break cross-run reproducibility.
        """
        name_key = zlib.crc32(solver_name.encode())
        return np.random.default_rng((self.seed, dof, name_key))

    def run_solver(self, solver: IterativeIKSolver, dof: int) -> SolverStats:
        """Run ``solver`` over the target set of ``dof`` and aggregate."""
        if solver.chain is not self.chain(dof):
            raise ValueError(
                "solver was built for a different chain; use suite.chain(dof)"
            )
        return aggregate_results(self.run_results(solver, dof))

    def run_results(self, solver: IterativeIKSolver, dof: int) -> list[IKResult]:
        """Like :meth:`run_solver` but returning the raw per-target results.

        With ``workers > 1`` the target batch is sharded across worker
        processes; the per-target results are identical to the in-process
        run (the parent draws the same restart stream in target order).
        """
        rng = self.solver_rng(dof, solver.name)
        if self.workers > 1:
            from repro.parallel import solve_batch_sharded

            batch = solve_batch_sharded(
                solver, self.targets(dof), workers=self.workers, rng=rng,
                timeout=self.options.timeout,
            )
            return list(batch.results)
        return [solver.solve(t, rng=rng) for t in self.targets(dof)]

    def __repr__(self) -> str:
        return (
            f"EvaluationSuite(dofs={self.dofs}, targets_per_dof="
            f"{self.targets_per_dof}, kind={self.target_kind!r}, seed={self.seed})"
        )
