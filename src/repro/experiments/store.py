"""SQLite-backed experiment ledger: schema, migrations, typed queries.

One :class:`ResultStore` wraps one SQLite file holding the whole perf
trajectory:

* ``runs`` — one row per sweep execution or benchmark import (name, spec
  JSON, fingerprint, source, status, timestamps);
* ``cells`` — one row per grid cell per run, unique on
  ``(run_id, cell_key)`` so a resumed sweep can never duplicate work;
  status walks ``pending → running → done`` (or ``failed``);
* ``metrics`` — scalar measurements per cell, unique on
  ``(cell_id, name)``, each tagged with a direction (``lower``/``higher``
  is better) so regressions are a query, not a convention;
* ``artifacts`` — full JSON payloads (e.g. a serve-bench result) attached
  to a run or a cell.

Durability/versioning contract:

* the database runs in WAL journal mode (concurrent readers never block
  on the writer);
* ``PRAGMA user_version`` carries the schema version.  Opening an older
  store applies the :data:`MIGRATIONS` chain one step at a time inside a
  transaction; opening a *newer* store (written by a future version of
  this code) refuses loudly rather than guessing;
* every metric value must be finite — the store shares the repo's strict
  ``allow_nan=False`` JSON convention, and SQLite would silently coerce a
  NaN to NULL otherwise (a lost measurement masquerading as a write).

Lock handling: all public methods translate SQLite's ``database is
locked`` into :class:`StoreLocked` after the configured ``timeout_s``, so
CLI callers can report "someone else holds the store" instead of dumping
a traceback.
"""

from __future__ import annotations

import json
import math
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "SCHEMA_VERSION",
    "MIGRATIONS",
    "StoreLocked",
    "StoreVersionError",
    "ResultStore",
    "Regression",
    "metric_direction",
]

#: Current schema version, persisted via ``PRAGMA user_version``.
SCHEMA_VERSION = 1

#: Migration hooks: ``{from_version: callable(connection)}`` upgrading a
#: store one schema version.  Version 1 is the genesis schema, so the chain
#: is empty today; a future PR that adds a column registers
#: ``MIGRATIONS[1]`` and bumps :data:`SCHEMA_VERSION` to 2.
MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {}


class StoreLocked(RuntimeError):
    """Another connection holds the store's write lock past ``timeout_s``."""


class StoreVersionError(RuntimeError):
    """The store was written by a newer schema than this code understands."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    source      TEXT NOT NULL CHECK (source IN ('sweep', 'import')),
    fingerprint TEXT,
    spec_json   TEXT,
    status      TEXT NOT NULL DEFAULT 'running'
                CHECK (status IN ('running', 'done', 'failed')),
    created_at  REAL NOT NULL,
    finished_at REAL
);
CREATE INDEX IF NOT EXISTS idx_runs_name ON runs (name, id);

CREATE TABLE IF NOT EXISTS cells (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    cell_key      TEXT NOT NULL,
    scenario_json TEXT,
    status        TEXT NOT NULL DEFAULT 'pending'
                  CHECK (status IN ('pending', 'running', 'done', 'failed')),
    error         TEXT,
    started_at    REAL,
    finished_at   REAL,
    UNIQUE (run_id, cell_key)
);
CREATE INDEX IF NOT EXISTS idx_cells_key ON cells (cell_key);

CREATE TABLE IF NOT EXISTS metrics (
    id        INTEGER PRIMARY KEY,
    cell_id   INTEGER NOT NULL REFERENCES cells (id) ON DELETE CASCADE,
    name      TEXT NOT NULL,
    value     REAL NOT NULL,
    unit      TEXT,
    direction TEXT NOT NULL DEFAULT 'lower'
              CHECK (direction IN ('lower', 'higher')),
    UNIQUE (cell_id, name)
);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);

CREATE TABLE IF NOT EXISTS artifacts (
    id         INTEGER PRIMARY KEY,
    run_id     INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    cell_id    INTEGER REFERENCES cells (id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    json       TEXT NOT NULL,
    created_at REAL NOT NULL
);
"""

#: Substrings marking a metric where *larger* values are better.  Everything
#: else (times, latencies, iteration counts, errors) regresses upward.
_HIGHER_IS_BETTER = (
    "speedup",
    "converged",
    "convergence",
    "success",
    "throughput",
    "per_s",
    "reduction",
    "hit_rate",
    "hits",
    "occupancy",
    "completed",
)


def metric_direction(name: str) -> str:
    """Heuristic direction for a metric name: ``'higher'`` or ``'lower'``.

    Callers can always override per metric at insert time; this keeps the
    committed-benchmark importer and the sweep runner from hand-tagging
    every field.
    """
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_IS_BETTER):
        return "higher"
    return "lower"


@dataclass(frozen=True)
class Regression:
    """One flagged (run-name, cell, metric) degradation."""

    run_name: str
    cell_key: str
    metric: str
    direction: str
    baseline: float
    latest: float
    baseline_run_id: int
    latest_run_id: int

    @property
    def ratio(self) -> float:
        """``latest / baseline`` (``inf`` when the baseline is zero)."""
        if self.baseline == 0.0:
            return math.inf
        return self.latest / self.baseline

    def to_dict(self) -> dict[str, Any]:
        ratio = self.ratio
        return {
            "run_name": self.run_name,
            "cell_key": self.cell_key,
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline,
            "latest": self.latest,
            "ratio": ratio if math.isfinite(ratio) else None,
            "baseline_run_id": self.baseline_run_id,
            "latest_run_id": self.latest_run_id,
        }


class ResultStore:
    """One SQLite experiment ledger; safe to reopen and resume against.

    Parameters
    ----------
    path:
        Database file (created on first open).  ``":memory:"`` works for
        tests.
    timeout_s:
        How long to wait on another writer before raising
        :class:`StoreLocked`.
    """

    def __init__(self, path: "str | Path", timeout_s: float = 5.0) -> None:
        self.path = str(path)
        self.timeout_s = float(timeout_s)
        self._conn: sqlite3.Connection | None = None
        with self._guard():
            self._connect()

    # -- connection / schema --------------------------------------------

    def _connect(self) -> None:
        conn = sqlite3.connect(self.path, timeout=self.timeout_s)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA foreign_keys=ON")
        self._conn = conn
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            conn.close()
            self._conn = None
            raise StoreVersionError(
                f"store {self.path!r} has schema version {version}, but this "
                f"code understands <= {SCHEMA_VERSION}; upgrade repro before "
                "touching it"
            )
        if version == 0:
            with conn:
                conn.executescript(_SCHEMA)
                conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            return
        while version < SCHEMA_VERSION:
            try:
                migrate = MIGRATIONS[version]
            except KeyError:
                raise StoreVersionError(
                    f"no migration registered from schema version {version} "
                    f"(store {self.path!r}; code is at {SCHEMA_VERSION})"
                ) from None
            with conn:
                migrate(conn)
                version += 1
                conn.execute(f"PRAGMA user_version = {version}")

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError("store is closed")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        return self.conn.execute("PRAGMA user_version").fetchone()[0]

    @contextmanager
    def _guard(self) -> Iterator[None]:
        """Translate lock contention into :class:`StoreLocked`."""
        try:
            yield
        except sqlite3.OperationalError as exc:
            if "locked" in str(exc) or "busy" in str(exc):
                raise StoreLocked(
                    f"experiment store {self.path!r} is locked by another "
                    f"process (waited {self.timeout_s:g}s); retry when the "
                    "other run finishes or point --store elsewhere"
                ) from exc
            raise

    # -- runs ------------------------------------------------------------

    def create_run(
        self,
        name: str,
        source: str = "sweep",
        spec_json: str | None = None,
        fingerprint: str | None = None,
    ) -> int:
        with self._guard(), self.conn as conn:
            cursor = conn.execute(
                "INSERT INTO runs (name, source, fingerprint, spec_json,"
                " created_at) VALUES (?, ?, ?, ?, ?)",
                (name, source, fingerprint, spec_json, time.time()),
            )
            return int(cursor.lastrowid)

    def find_resumable_run(self, name: str, fingerprint: str) -> int | None:
        """Newest sweep run with this name + spec fingerprint, if any."""
        with self._guard():
            row = self.conn.execute(
                "SELECT id FROM runs WHERE name = ? AND fingerprint = ?"
                " AND source = 'sweep' ORDER BY id DESC LIMIT 1",
                (name, fingerprint),
            ).fetchone()
        return int(row["id"]) if row else None

    def run_row(self, run_id: int) -> dict[str, Any]:
        with self._guard():
            row = self.conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no run with id {run_id}")
        return dict(row)

    def latest_run_id(self, name: str) -> int | None:
        with self._guard():
            row = self.conn.execute(
                "SELECT id FROM runs WHERE name = ? ORDER BY id DESC LIMIT 1",
                (name,),
            ).fetchone()
        return int(row["id"]) if row else None

    def finish_run(self, run_id: int, status: str) -> None:
        if status not in ("done", "failed"):
            raise ValueError("run status must be 'done' or 'failed'")
        with self._guard(), self.conn as conn:
            conn.execute(
                "UPDATE runs SET status = ?, finished_at = ? WHERE id = ?",
                (status, time.time(), run_id),
            )

    def runs(self) -> list[dict[str, Any]]:
        """Every run row, oldest first, with its cell-status tally."""
        with self._guard():
            rows = self.conn.execute(
                "SELECT r.*, COUNT(c.id) AS cells,"
                " SUM(c.status = 'done') AS cells_done,"
                " SUM(c.status = 'failed') AS cells_failed"
                " FROM runs r LEFT JOIN cells c ON c.run_id = r.id"
                " GROUP BY r.id ORDER BY r.id",
            ).fetchall()
        return [dict(row) for row in rows]

    # -- cells -----------------------------------------------------------

    def ensure_cells(
        self, run_id: int, cells: "list[tuple[str, str | None]]"
    ) -> None:
        """Insert ``(cell_key, scenario_json)`` rows that don't exist yet.

        ``INSERT OR IGNORE`` against the ``(run_id, cell_key)`` uniqueness
        constraint is what makes resume idempotent: re-running a sweep can
        only ever *fill in* missing rows, never duplicate them.
        """
        with self._guard(), self.conn as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO cells (run_id, cell_key,"
                " scenario_json) VALUES (?, ?, ?)",
                [(run_id, key, scenario) for key, scenario in cells],
            )

    def cell_statuses(self, run_id: int) -> dict[str, str]:
        with self._guard():
            rows = self.conn.execute(
                "SELECT cell_key, status FROM cells WHERE run_id = ?",
                (run_id,),
            ).fetchall()
        return {row["cell_key"]: row["status"] for row in rows}

    def cell_id(self, run_id: int, cell_key: str) -> int:
        with self._guard():
            row = self.conn.execute(
                "SELECT id FROM cells WHERE run_id = ? AND cell_key = ?",
                (run_id, cell_key),
            ).fetchone()
        if row is None:
            raise KeyError(f"run {run_id} has no cell {cell_key!r}")
        return int(row["id"])

    def mark_cell(
        self,
        run_id: int,
        cell_key: str,
        status: str,
        error: str | None = None,
    ) -> None:
        if status not in ("pending", "running", "done", "failed"):
            raise ValueError(f"bad cell status {status!r}")
        column = "started_at" if status == "running" else "finished_at"
        with self._guard(), self.conn as conn:
            updated = conn.execute(
                f"UPDATE cells SET status = ?, error = ?, {column} = ?"
                " WHERE run_id = ? AND cell_key = ?",
                (status, error, time.time(), run_id, cell_key),
            ).rowcount
        if updated != 1:
            raise KeyError(f"run {run_id} has no cell {cell_key!r}")

    def cells(self, run_id: int) -> list[dict[str, Any]]:
        with self._guard():
            rows = self.conn.execute(
                "SELECT * FROM cells WHERE run_id = ? ORDER BY id",
                (run_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    # -- metrics / artifacts ---------------------------------------------

    def record_metrics(
        self,
        run_id: int,
        cell_key: str,
        metrics: "dict[str, float]",
        units: "dict[str, str] | None" = None,
        directions: "dict[str, str] | None" = None,
    ) -> int:
        """Upsert scalar metrics for one cell; returns the count written.

        Values must be finite (the strict-JSON convention; SQLite would
        otherwise coerce NaN to NULL and lose the measurement silently).
        Non-numeric and ``None`` values are rejected, not skipped — the
        caller decides what is a metric.
        """
        cell = self.cell_id(run_id, cell_key)
        rows = []
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"metric {name!r} must be a number, got {value!r}"
                )
            value = float(value)
            if not math.isfinite(value):
                raise ValueError(
                    f"metric {name!r} is {value!r}; the store is strict-JSON "
                    "(allow_nan=False) — record undefined ratios as absent, "
                    "not NaN"
                )
            direction = (directions or {}).get(name) or metric_direction(name)
            if direction not in ("lower", "higher"):
                raise ValueError(f"bad direction {direction!r} for {name!r}")
            rows.append((cell, name, value, (units or {}).get(name), direction))
        with self._guard(), self.conn as conn:
            conn.executemany(
                "INSERT INTO metrics (cell_id, name, value, unit, direction)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (cell_id, name) DO UPDATE SET"
                " value = excluded.value, unit = excluded.unit,"
                " direction = excluded.direction",
                rows,
            )
        return len(rows)

    def metrics_for_cell(self, run_id: int, cell_key: str) -> dict[str, float]:
        cell = self.cell_id(run_id, cell_key)
        with self._guard():
            rows = self.conn.execute(
                "SELECT name, value FROM metrics WHERE cell_id = ?"
                " ORDER BY name",
                (cell,),
            ).fetchall()
        return {row["name"]: row["value"] for row in rows}

    def record_artifact(
        self,
        run_id: int,
        name: str,
        payload: Any,
        cell_key: str | None = None,
    ) -> None:
        """Attach a JSON artifact to a run (or one of its cells)."""
        text = json.dumps(payload, sort_keys=True, allow_nan=False)
        cell = self.cell_id(run_id, cell_key) if cell_key is not None else None
        with self._guard(), self.conn as conn:
            conn.execute(
                "INSERT INTO artifacts (run_id, cell_id, name, json,"
                " created_at) VALUES (?, ?, ?, ?, ?)",
                (run_id, cell, name, text, time.time()),
            )

    def artifacts(self, run_id: int) -> list[dict[str, Any]]:
        with self._guard():
            rows = self.conn.execute(
                "SELECT id, cell_id, name, json, created_at FROM artifacts"
                " WHERE run_id = ? ORDER BY id",
                (run_id,),
            ).fetchall()
        return [
            {**dict(row), "payload": json.loads(row["json"])} for row in rows
        ]

    # -- typed queries ---------------------------------------------------

    def latest_metric(
        self,
        metric: str,
        cell_key: str | None = None,
        run_name: str | None = None,
    ) -> float | None:
        """The newest recorded value of ``metric`` (filtered by cell/run).

        "Newest" is by run id then cell id — insertion order, which the
        append-only runs table makes chronological.
        """
        query = (
            "SELECT m.value FROM metrics m"
            " JOIN cells c ON c.id = m.cell_id"
            " JOIN runs r ON r.id = c.run_id"
            " WHERE m.name = ?"
        )
        params: list[Any] = [metric]
        if cell_key is not None:
            query += " AND c.cell_key = ?"
            params.append(cell_key)
        if run_name is not None:
            query += " AND r.name = ?"
            params.append(run_name)
        query += " ORDER BY r.id DESC, c.id DESC LIMIT 1"
        with self._guard():
            row = self.conn.execute(query, params).fetchone()
        return float(row["value"]) if row else None

    def compare_runs(self, run_a: int, run_b: int) -> list[dict[str, Any]]:
        """Join two runs' metrics on ``(cell_key, metric)``.

        Returns one row per shared measurement with both values and the
        ``b / a`` ratio (``None`` when ``a`` is zero); cells or metrics
        present in only one run are omitted (they have nothing to compare
        against).
        """
        with self._guard():
            rows = self.conn.execute(
                "SELECT ca.cell_key AS cell_key, ma.name AS metric,"
                " ma.direction AS direction,"
                " ma.value AS value_a, mb.value AS value_b"
                " FROM cells ca"
                " JOIN metrics ma ON ma.cell_id = ca.id"
                " JOIN cells cb ON cb.run_id = ? AND cb.cell_key = ca.cell_key"
                " JOIN metrics mb ON mb.cell_id = cb.id AND mb.name = ma.name"
                " WHERE ca.run_id = ?"
                " ORDER BY ca.cell_key, ma.name",
                (run_b, run_a),
            ).fetchall()
        out = []
        for row in rows:
            value_a, value_b = row["value_a"], row["value_b"]
            out.append({
                "cell_key": row["cell_key"],
                "metric": row["metric"],
                "direction": row["direction"],
                "value_a": value_a,
                "value_b": value_b,
                "ratio": (value_b / value_a) if value_a != 0.0 else None,
            })
        return out

    def regressions(
        self,
        threshold: float = 0.1,
        metric: str | None = None,
        run_name: str | None = None,
    ) -> list[Regression]:
        """Every (run-name, cell, metric) that moved the wrong way.

        For each run *name*, the newest run is compared against the run
        immediately before it (same name); a measurement regresses when it
        worsens by more than ``threshold`` (fractional) in its direction —
        a latency up 10%+, a speedup down 10%+.  Run names with fewer than
        two runs contribute nothing: history has to exist to regress
        against.
        """
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        with self._guard():
            names = [
                row["name"]
                for row in self.conn.execute(
                    "SELECT name FROM runs"
                    + (" WHERE name = ?" if run_name is not None else "")
                    + " GROUP BY name HAVING COUNT(*) >= 2 ORDER BY name",
                    (run_name,) if run_name is not None else (),
                ).fetchall()
            ]
        flagged: list[Regression] = []
        for name in names:
            with self._guard():
                pair = self.conn.execute(
                    "SELECT id FROM runs WHERE name = ?"
                    " ORDER BY id DESC LIMIT 2",
                    (name,),
                ).fetchall()
            latest_id, baseline_id = int(pair[0]["id"]), int(pair[1]["id"])
            for row in self.compare_runs(baseline_id, latest_id):
                if metric is not None and row["metric"] != metric:
                    continue
                baseline, latest = row["value_a"], row["value_b"]
                if baseline == 0.0:
                    worse = row["direction"] == "lower" and latest > 0.0
                elif row["direction"] == "lower":
                    worse = latest > baseline * (1.0 + threshold)
                else:
                    worse = latest < baseline * (1.0 - threshold)
                if worse:
                    flagged.append(Regression(
                        run_name=name,
                        cell_key=row["cell_key"],
                        metric=row["metric"],
                        direction=row["direction"],
                        baseline=baseline,
                        latest=latest,
                        baseline_run_id=baseline_id,
                        latest_run_id=latest_id,
                    ))
        return flagged

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r}, schema=v{SCHEMA_VERSION})"
