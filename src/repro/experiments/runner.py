"""Resumable sweep execution: expand a grid, run each cell, record it.

:class:`SweepRunner` turns a :class:`~repro.experiments.spec.SweepSpec`
into store rows: one ``runs`` row per (name, spec-fingerprint) pair, one
``cells`` row per grid cell (unique, so restarts cannot duplicate work),
metrics and a JSON artifact per completed cell.

The resume contract:

* a cell that finished (``done``) is **skipped** on every later run — its
  metrics are history, not something to overwrite;
* a cell found ``pending``, ``failed``, or stale-``running`` (the status a
  killed process leaves behind) is (re)executed;
* cell identity is the deterministic cell key, so the same spec always
  maps onto the same rows no matter how many times the process died.

Each cell executes through one of the repo's existing entry points,
selected by the scenario's ``workload``:

* ``batch`` — :func:`repro.api.solve_batch` over seeded reachable targets;
* ``suite`` — the paper's :class:`~repro.workloads.suite.EvaluationSuite`
  aggregation for the robot's DOF;
* ``serve`` — the open-loop :func:`~repro.serving.loadgen.run_serve_bench`
  loadgen (offered load from ``SweepSpec.rate_hz``).

Telemetry: the runner emits ``experiment_runs_started``,
``experiment_cells_started`` / ``_completed`` / ``_failed`` / ``_skipped``
counters and times each execution under the ``experiment_cell`` phase,
through whatever :class:`~repro.telemetry.tracer.Tracer` is installed.

Fault injection: ``fault_hook(index, scenario)`` is invoked before each
cell executes; an exception it raises propagates *uncaught* — the hook
models the process dying mid-sweep (chaos-style), not a solver error, so
the cell is left ``running`` in the store exactly as a SIGKILL would.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.execution import ExecutionOptions
from repro.experiments.spec import ScenarioSpec, SweepSpec
from repro.experiments.store import ResultStore
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = ["SweepRunner", "SweepResult", "execute_scenario"]


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` pass."""

    run_id: int
    total: int
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    statuses: dict[str, str] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Every cell is ``done`` (the sweep needs no further resume)."""
        return all(status == "done" for status in self.statuses.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "completed": self.completed,
            "statuses": dict(self.statuses),
        }


def _scenario_rng(scenario: ScenarioSpec) -> np.random.Generator:
    """Deterministic per-cell generator: seed × stable key CRC.

    The CRC (not ``hash()``, which is salted per process) keeps the target
    draw reproducible across runs and machines, and distinct per cell so
    two cells never share a workload by accident.
    """
    key_crc = zlib.crc32(scenario.cell_key().encode("utf-8"))
    return np.random.default_rng((scenario.seed, key_crc))


def _reachable_targets(chain, n: int, rng: np.random.Generator) -> np.ndarray:
    return np.stack([
        chain.end_position(chain.random_configuration(rng)) for _ in range(n)
    ])


def _options(scenario: ScenarioSpec) -> ExecutionOptions:
    return ExecutionOptions(kernel=scenario.kernel, workers=scenario.workers)


def _run_batch(scenario: ScenarioSpec) -> tuple[dict, dict]:
    from repro import api

    chain = api.resolve_robot(scenario.robot)
    rng = _scenario_rng(scenario)
    targets = _reachable_targets(chain, scenario.targets, rng)
    start = time.perf_counter()
    batch = api.solve_batch(
        chain,
        targets,
        scenario.solver,
        rng=rng,
        tolerance=scenario.tolerance,
        max_iterations=scenario.max_iterations,
        options=_options(scenario),
    )
    wall_s = time.perf_counter() - start
    iterations = [result.iterations for result in batch]
    metrics = {
        "wall_s": wall_s,
        "solves_per_s": len(batch) / wall_s if wall_s > 0 else 0.0,
        "converged": batch.converged_count,
        "convergence_rate": batch.converged_count / len(batch),
        "mean_iterations": float(np.mean(iterations)),
        "total_iterations": batch.total_iterations,
        "mean_error": float(np.mean([result.error for result in batch])),
    }
    artifact = {
        "entry_point": "api.solve_batch",
        "targets": scenario.targets,
        "iterations": iterations,
        "statuses": sorted({result.status for result in batch}),
    }
    return metrics, artifact


def _run_suite(scenario: ScenarioSpec) -> tuple[dict, dict]:
    from repro.api import resolve_robot
    from repro.core.result import SolverConfig
    from repro.solvers.registry import make_solver
    from repro.workloads.suite import EvaluationSuite

    dof = resolve_robot(scenario.robot).dof
    suite = EvaluationSuite(
        dofs=(dof,),
        targets_per_dof=scenario.targets,
        seed=scenario.seed,
        options=_options(scenario),
    )
    config = None
    if scenario.tolerance is not None or scenario.max_iterations is not None:
        defaults = SolverConfig()
        config = SolverConfig(
            tolerance=(
                scenario.tolerance
                if scenario.tolerance is not None
                else defaults.tolerance
            ),
            max_iterations=(
                scenario.max_iterations
                if scenario.max_iterations is not None
                else defaults.max_iterations
            ),
        )
    solver = make_solver(scenario.solver, suite.chain(dof), config=config)
    stats = suite.run_solver(solver, dof)
    metrics = {
        "mean_iterations": stats.mean_iterations,
        "median_iterations": stats.median_iterations,
        "max_iterations": stats.max_iterations,
        "mean_work": stats.mean_work,
        "mean_fk_evaluations": stats.mean_fk_evaluations,
        "success_rate": stats.success_rate,
        "mean_error": stats.mean_error,
        "mean_wall_s": stats.mean_wall_time,
    }
    artifact = {
        "entry_point": "EvaluationSuite.run_solver",
        "dof": dof,
        "targets": stats.n_targets,
        "speculations": stats.speculations,
    }
    return metrics, artifact


def _run_serve(scenario: ScenarioSpec, rate_hz: float) -> tuple[dict, dict]:
    from repro.serving.loadgen import run_serve_bench

    from repro.execution import KernelSpec

    spec = KernelSpec.coerce(scenario.kernel)
    payload = run_serve_bench(
        robot=scenario.robot,
        solver=scenario.solver,
        requests=scenario.targets,
        rate_hz=rate_hz,
        workers=scenario.workers,
        kernel=spec.name if spec is not None else None,
        dtype=spec.dtype if spec is not None else None,
        tolerance=scenario.tolerance,
        max_iterations=scenario.max_iterations,
        cold_baseline=False,
        seed=scenario.seed,
    )
    metrics = {
        "completed": payload["completed"],
        "converged": payload["converged"],
        "throughput_rps": payload["throughput_rps"],
        "makespan_s": payload["makespan_s"],
    }
    if payload["convergence_rate"] is not None:
        metrics["convergence_rate"] = payload["convergence_rate"]
    for name, value in payload["latency_s"].items():
        if value is not None:
            metrics[f"latency_{name}_s"] = value
    return metrics, {"entry_point": "run_serve_bench", "payload": payload}


def execute_scenario(
    scenario: ScenarioSpec, rate_hz: float = 200.0
) -> tuple[dict, dict]:
    """Run one cell through its workload's entry point.

    Returns ``(metrics, artifact)``: finite scalar measurements for the
    ``metrics`` table, and a JSON payload describing the run for the
    ``artifacts`` table.
    """
    if scenario.workload == "batch":
        return _run_batch(scenario)
    if scenario.workload == "suite":
        return _run_suite(scenario)
    if scenario.workload == "serve":
        return _run_serve(scenario, rate_hz)
    raise ValueError(f"unknown workload {scenario.workload!r}")  # unreachable


class SweepRunner:
    """Execute a :class:`SweepSpec` against a :class:`ResultStore`.

    Parameters
    ----------
    spec:
        The validated grid to run.
    store:
        Where rows land; reopened stores resume, fresh stores start clean.
    tracer:
        Telemetry sink; defaults to the process-global tracer.
    fault_hook:
        Chaos-test injection point, called as ``fault_hook(index,
        scenario)`` immediately before each cell executes.  Exceptions
        propagate uncaught (they model the process dying, so the cell must
        be left ``running`` in the store).
    fresh:
        Force a new run row even when a resumable (same name + same spec
        fingerprint) run exists — the knob that turns repeated sweeps into
        *history* for ``regressions()`` instead of no-op resumes.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore,
        tracer: "Tracer | None" = None,
        fault_hook: "Callable[[int, ScenarioSpec], None] | None" = None,
        fresh: bool = False,
    ) -> None:
        self.spec = spec
        self.store = store
        self._tracer = tracer
        self.fault_hook = fault_hook
        self.fresh = fresh

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _ensure_run(self) -> int:
        fingerprint = self.spec.fingerprint()
        run_id = (
            None
            if self.fresh
            else self.store.find_resumable_run(self.spec.name, fingerprint)
        )
        if run_id is None:
            run_id = self.store.create_run(
                self.spec.name,
                source="sweep",
                spec_json=self.spec.to_json(),
                fingerprint=fingerprint,
            )
        self.store.ensure_cells(run_id, [
            (
                scenario.cell_key(),
                json.dumps(
                    scenario.to_dict(), sort_keys=True, allow_nan=False
                ),
            )
            for scenario in self.spec.expand()
        ])
        return run_id

    def run(self) -> SweepResult:
        """One pass over the grid: execute what isn't ``done``, skip the rest.

        Always returns (no exception) for per-cell execution errors —
        those mark the cell ``failed`` and continue, so one diverging
        solver cannot starve the rest of the grid.  Only fault-hook
        exceptions (simulated kills) and store errors propagate.
        """
        tracer = self.tracer
        run_id = self._ensure_run()
        tracer.count("experiment_runs_started")
        statuses = self.store.cell_statuses(run_id)
        result = SweepResult(run_id=run_id, total=len(self.spec.expand()))
        for index, scenario in enumerate(self.spec.expand()):
            key = scenario.cell_key()
            if statuses.get(key) == "done":
                result.skipped += 1
                result.statuses[key] = "done"
                tracer.count("experiment_cells_skipped")
                continue
            self.store.mark_cell(run_id, key, "running")
            tracer.count("experiment_cells_started")
            if self.fault_hook is not None:
                # Raises propagate uncaught: the cell stays 'running', the
                # exact state a SIGKILL mid-execution leaves behind.
                self.fault_hook(index, scenario)
            try:
                with tracer.phase("experiment_cell"):
                    metrics, artifact = execute_scenario(
                        scenario, rate_hz=self.spec.rate_hz
                    )
            except Exception as exc:
                self.store.mark_cell(
                    run_id, key, "failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
                result.failed += 1
                result.statuses[key] = "failed"
                tracer.count("experiment_cells_failed")
                continue
            self.store.record_metrics(run_id, key, metrics)
            self.store.record_artifact(run_id, "cell_result", artifact, key)
            self.store.mark_cell(run_id, key, "done")
            result.executed += 1
            result.statuses[key] = "done"
            tracer.count("experiment_cells_completed")
        self.store.finish_run(
            run_id, "done" if result.failed == 0 else "failed"
        )
        return result
