"""Declarative sweep specs: :class:`ScenarioSpec` and :class:`SweepSpec`.

A *scenario* is one fully-pinned experiment cell — robot × solver × kernel
× workers × workload plus the workload-shape knobs (problem count, seed,
convergence policy).  A *sweep* is a named grid over those axes; expanding
it yields the scenarios in a deterministic order, each addressable by a
stable **cell key** that encodes every field and decodes back losslessly
(:meth:`ScenarioSpec.cell_key` / :meth:`ScenarioSpec.from_cell_key`).

Validation happens at construction, against the real registries: a typo'd
solver name is rejected with the ``SOLVER_REGISTRY`` listing, a bad kernel
with the ``KernelSpec`` modes, a bad robot with the robot zoo's naming
rule — the same error a mis-typed ``api.solve`` call would produce, but
*before* a 40-cell sweep burns half its budget.

Cell keys (``field=value`` pairs joined with ``&``, values percent-quoted)
are what the SQLite store indexes on: the same spec always expands to the
same keys, which is what makes sweeps resumable and histories comparable
across runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from urllib.parse import quote, unquote

from repro.execution import KernelSpec
from repro.kinematics.robots import named_robot
from repro.solvers.registry import SOLVER_REGISTRY

__all__ = [
    "EXPERIMENT_WORKLOADS",
    "ScenarioSpec",
    "SweepSpec",
]

#: Entry points a cell can execute through: ``batch`` → ``api.solve_batch``
#: over seeded workspace targets, ``suite`` → the paper's
#: :class:`~repro.workloads.suite.EvaluationSuite` aggregation, ``serve`` →
#: the open-loop :func:`~repro.serving.loadgen.run_serve_bench` loadgen.
EXPERIMENT_WORKLOADS = ("batch", "suite", "serve")

#: Field order of the cell-key encoding (also the decode contract — a key
#: with fields missing or reordered is rejected, not guessed at).
_KEY_FIELDS = (
    "robot",
    "solver",
    "kernel",
    "workers",
    "workload",
    "targets",
    "seed",
    "tolerance",
    "max_iterations",
)


def _validate_robot(robot: str) -> str:
    if not isinstance(robot, str) or not robot:
        raise ValueError(f"robot must be a non-empty name, got {robot!r}")
    try:
        named_robot(robot)
    except KeyError as exc:
        # named_robot's message already lists the zoo + generator patterns.
        raise ValueError(f"bad robot in spec: {exc.args[0]}") from None
    return robot


def _validate_solver(solver: str) -> str:
    if solver not in SOLVER_REGISTRY:
        known = ", ".join(sorted(SOLVER_REGISTRY))
        raise ValueError(
            f"unknown solver {solver!r} in spec; registered solvers: {known}"
        )
    return solver


def _canonical_kernel(kernel) -> str | None:
    """Canonicalise a kernel axis value to a ``mode[:dtype]`` string.

    Accepts ``None`` (inherit the chain's kernel), a mode name, a
    ``"mode:dtype"`` shorthand, or a :class:`KernelSpec`; validation is
    delegated to :meth:`KernelSpec.coerce` so the error names the known
    modes/dtypes.
    """
    spec = KernelSpec.coerce(kernel)
    if spec is None:
        return None
    if spec.chunk is not None:
        raise ValueError(
            "spec kernels pin mode/dtype only; chunk is a tuning knob, "
            "not a sweep axis"
        )
    if spec.name is None and spec.dtype is None:
        return None
    if spec.dtype is None:
        return spec.name
    return f"{spec.name or 'scalar'}:{spec.dtype}"


@dataclass(frozen=True)
class ScenarioSpec:
    """One sweep cell: everything a run needs to be reproducible.

    Parameters
    ----------
    robot:
        Robot name (the zoo's ``named_robot`` naming rule).
    solver:
        Any ``SOLVER_REGISTRY`` name.
    kernel:
        ``None`` (inherit), a kernel mode, or ``"mode:dtype"``.
    workers:
        Process-sharding width for the batch path (``None`` = in-process).
    workload:
        One of :data:`EXPERIMENT_WORKLOADS`.
    targets:
        Problems per cell (requests, for the ``serve`` workload).
    seed:
        Master seed; targets and solver randomness derive from it.
    tolerance / max_iterations:
        Convergence policy overrides (``None`` = solver defaults).
    """

    robot: str
    solver: str
    kernel: str | None = None
    workers: int | None = None
    workload: str = "batch"
    targets: int = 20
    seed: int = 2017
    tolerance: float | None = None
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        _validate_robot(self.robot)
        _validate_solver(self.solver)
        object.__setattr__(self, "kernel", _canonical_kernel(self.kernel))
        if self.workers is not None:
            workers = int(self.workers)
            if workers < 1:
                raise ValueError("workers must be >= 1")
            object.__setattr__(self, "workers", workers)
        if self.workload not in EXPERIMENT_WORKLOADS:
            known = ", ".join(EXPERIMENT_WORKLOADS)
            raise ValueError(
                f"unknown workload {self.workload!r} in spec; known: {known}"
            )
        if self.workload == "suite" and not self.robot.startswith("dadu-"):
            raise ValueError(
                "the suite workload runs the paper's evaluation chains; "
                f"robot must be dadu-<N>dof, got {self.robot!r}"
            )
        if int(self.targets) < 1:
            raise ValueError("targets must be >= 1")
        object.__setattr__(self, "targets", int(self.targets))
        object.__setattr__(self, "seed", int(self.seed))
        if self.tolerance is not None:
            tolerance = float(self.tolerance)
            if tolerance <= 0:
                raise ValueError("tolerance must be positive")
            object.__setattr__(self, "tolerance", tolerance)
        if self.max_iterations is not None:
            cap = int(self.max_iterations)
            if cap < 1:
                raise ValueError("max_iterations must be >= 1")
            object.__setattr__(self, "max_iterations", cap)

    # -- cell keys -------------------------------------------------------

    def cell_key(self) -> str:
        """Stable, lossless identity: ``field=value&...`` in fixed order.

        ``None`` encodes as the empty value; everything else is
        percent-quoted ``repr``-free text (floats via :func:`repr` so the
        decode is bit-exact).
        """
        parts = []
        for name in _KEY_FIELDS:
            value = getattr(self, name)
            if value is None:
                text = ""
            elif isinstance(value, float):
                text = repr(value)
            else:
                text = str(value)
            parts.append(f"{name}={quote(text, safe='')}")
        return "&".join(parts)

    @classmethod
    def from_cell_key(cls, key: str) -> "ScenarioSpec":
        """Inverse of :meth:`cell_key`; rejects malformed keys loudly."""
        fields: dict[str, str] = {}
        for part in key.split("&"):
            name, sep, value = part.partition("=")
            if not sep or name not in _KEY_FIELDS or name in fields:
                raise ValueError(f"malformed cell key {key!r} (at {part!r})")
            fields[name] = unquote(value)
        missing = [name for name in _KEY_FIELDS if name not in fields]
        if missing:
            raise ValueError(f"cell key {key!r} is missing fields {missing}")
        return cls(
            robot=fields["robot"],
            solver=fields["solver"],
            kernel=fields["kernel"] or None,
            workers=int(fields["workers"]) if fields["workers"] else None,
            workload=fields["workload"],
            targets=int(fields["targets"]),
            seed=int(fields["seed"]),
            tolerance=float(fields["tolerance"]) if fields["tolerance"] else None,
            max_iterations=(
                int(fields["max_iterations"])
                if fields["max_iterations"]
                else None
            ),
        )

    def to_dict(self) -> dict:
        """JSON-safe dict (the store's ``scenario_json`` payload)."""
        return asdict(self)


@dataclass(frozen=True)
class SweepSpec:
    """A named grid over the scenario axes.

    Axis tuples may not be empty; duplicates are rejected (a duplicated
    axis value would silently halve the apparent grid).  ``rate_hz`` only
    matters for cells with the ``serve`` workload (the offered load).
    """

    name: str
    robots: tuple[str, ...] = ("dadu-12dof",)
    solvers: tuple[str, ...] = ("JT-Speculation",)
    kernels: tuple[str | None, ...] = (None,)
    workers: tuple[int | None, ...] = (None,)
    workloads: tuple[str, ...] = ("batch",)
    targets: int = 20
    seed: int = 2017
    tolerance: float | None = None
    max_iterations: int | None = None
    rate_hz: float = 200.0
    _scenarios: tuple[ScenarioSpec, ...] = field(
        default=(), init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ValueError("sweep name must be a non-empty string")
        for axis in ("robots", "solvers", "kernels", "workers", "workloads"):
            values = getattr(self, axis)
            if not isinstance(values, tuple):
                values = tuple(values)
                object.__setattr__(self, axis, values)
            if not values:
                raise ValueError(f"sweep axis {axis!r} must be non-empty")
            if len(set(values)) != len(values):
                raise ValueError(f"sweep axis {axis!r} has duplicate values")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        # Expanding eagerly front-loads *all* validation: a bad value on any
        # axis fails SweepSpec construction with the registry-aware message.
        object.__setattr__(self, "_scenarios", self._expand())

    def _expand(self) -> tuple[ScenarioSpec, ...]:
        scenarios = []
        for robot, solver, kernel, workers, workload in itertools.product(
            self.robots, self.solvers, self.kernels, self.workers,
            self.workloads,
        ):
            scenarios.append(ScenarioSpec(
                robot=robot,
                solver=solver,
                kernel=kernel,
                workers=workers,
                workload=workload,
                targets=self.targets,
                seed=self.seed,
                tolerance=self.tolerance,
                max_iterations=self.max_iterations,
            ))
        keys = [s.cell_key() for s in scenarios]
        if len(set(keys)) != len(keys):  # pragma: no cover - defence in depth
            raise ValueError("sweep expansion produced duplicate cell keys")
        return tuple(scenarios)

    def expand(self) -> tuple[ScenarioSpec, ...]:
        """The grid's scenarios, in deterministic product order."""
        return self._scenarios

    def cell_keys(self) -> tuple[str, ...]:
        """The grid's cell keys (same order as :meth:`expand`)."""
        return tuple(s.cell_key() for s in self._scenarios)

    # -- persistence -----------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the store's ``spec_json``."""
        payload = {
            "name": self.name,
            "robots": list(self.robots),
            "solvers": list(self.solvers),
            "kernels": list(self.kernels),
            "workers": list(self.workers),
            "workloads": list(self.workloads),
            "targets": self.targets,
            "seed": self.seed,
            "tolerance": self.tolerance,
            "max_iterations": self.max_iterations,
            "rate_hz": self.rate_hz,
        }
        return json.dumps(payload, sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            robots=tuple(payload["robots"]),
            solvers=tuple(payload["solvers"]),
            kernels=tuple(payload["kernels"]),
            workers=tuple(payload["workers"]),
            workloads=tuple(payload["workloads"]),
            targets=payload["targets"],
            seed=payload["seed"],
            tolerance=payload["tolerance"],
            max_iterations=payload["max_iterations"],
            rate_hz=payload["rate_hz"],
        )

    def fingerprint(self) -> str:
        """Content hash of the canonical JSON; the resume identity.

        Two sweeps resume into the same run row iff their fingerprints
        match — a changed grid starts a fresh run instead of silently
        mixing histories.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]
