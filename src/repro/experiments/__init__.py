"""Experiment orchestration and the persistent SQLite result store.

The perf trajectory behind every reproduction claim — kernel speedups,
warm-start savings, session convergence — used to live in one-shot
``BENCH_*.json`` blobs and ephemeral :class:`~repro.workloads.suite.
EvaluationSuite` runs.  This package makes it declarative, resumable and
queryable:

* :mod:`repro.experiments.spec` — :class:`ScenarioSpec` /
  :class:`SweepSpec`: a validated grid over robot × solver × kernel ×
  workers × workload, expanded into deterministic cell keys;
* :mod:`repro.experiments.runner` — :class:`SweepRunner`: executes each
  cell through the existing ``api.solve_batch`` / ``EvaluationSuite`` /
  ``run_serve_bench`` entry points, records per-cell status, and resumes a
  killed sweep by skipping completed cells;
* :mod:`repro.experiments.store` — :class:`ResultStore`: the SQLite
  ledger (``runs``/``cells``/``metrics``/``artifacts``, WAL mode,
  schema-versioned) with typed queries — :meth:`~ResultStore.latest_metric`,
  :meth:`~ResultStore.compare_runs`, :meth:`~ResultStore.regressions`;
* :mod:`repro.experiments.importer` — backfills the committed
  ``BENCH_*.json`` payloads so history starts populated.

CLI: ``python -m repro experiment run/resume/query/import`` (see
``docs/experiments.md``).
"""

from repro.experiments.importer import (
    BENCH_RUN_NAMES,
    import_bench_file,
    import_bench_payloads,
)
from repro.experiments.runner import SweepResult, SweepRunner, execute_scenario
from repro.experiments.spec import (
    EXPERIMENT_WORKLOADS,
    ScenarioSpec,
    SweepSpec,
)
from repro.experiments.store import (
    MIGRATIONS,
    SCHEMA_VERSION,
    Regression,
    ResultStore,
    StoreLocked,
    StoreVersionError,
    metric_direction,
)

__all__ = [
    "EXPERIMENT_WORKLOADS",
    "ScenarioSpec",
    "SweepSpec",
    "SweepRunner",
    "SweepResult",
    "execute_scenario",
    "ResultStore",
    "Regression",
    "StoreLocked",
    "StoreVersionError",
    "SCHEMA_VERSION",
    "MIGRATIONS",
    "metric_direction",
    "import_bench_file",
    "import_bench_payloads",
    "BENCH_RUN_NAMES",
]
