"""Backfill committed ``BENCH_*.json`` payloads into a result store.

The repo's perf trajectory predates the store: kernel speedups live in
``BENCH_kernels.json``, the parallel-scaling curve in
``BENCH_parallel.json``, and the serving load tests in
``BENCH_serving.json``.  This importer maps each payload shape onto the
``runs``/``cells``/``metrics`` schema so history starts populated — a
fresh store can immediately answer "did the 50-DOF engine solve regress?"
against the committed numbers.

Each file becomes one run (``source='import'``); its logical groups
become cells keyed by a readable path (``engine/vectorized/float32/
compaction=on``), and every finite scalar underneath becomes a metric with
a direction inferred by :func:`~repro.experiments.store.metric_direction`.
The raw payload is attached as a run-level artifact, so nothing the
flattening drops is lost.

Importing the *same* file twice creates a second run with the same name —
which is exactly what :meth:`ResultStore.regressions` compares, making
"re-run the benchmark, import, query" the whole CI perf gate.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.experiments.store import ResultStore

__all__ = ["import_bench_file", "import_bench_payloads", "BENCH_RUN_NAMES"]

#: ``payload["benchmark"]`` tag → run name used in the store.
BENCH_RUN_NAMES = {
    "kernel-speedup": "bench-kernels",
    "parallel-scaling": "bench-parallel",
    "serving": "bench-serving",
}

#: Keys that describe configuration rather than measurement; their numeric
#: values would otherwise import as (meaningless, never-regressing) metrics.
_CONFIG_KEYS = ("config", "workload", "notes", "benchmark", "seed", "robot")


def _numeric(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(float(value))
    )


def _flatten(payload: dict, prefix: str = "") -> dict[str, float]:
    """Finite scalars from a nested dict, dotted-path keyed.

    Non-numeric leaves, nulls (the strict-JSON spelling of "undefined")
    and non-finite values are skipped — they are description, not
    measurement.
    """
    out: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{path}."))
        elif _numeric(value):
            out[path] = float(value)
    return out


def _kernel_cells(payload: dict) -> dict[str, dict[str, float]]:
    cells: dict[str, dict[str, float]] = {}
    headline = {
        name: float(payload[name])
        for name in ("headline_speedup", "engine_headline_speedup")
        if _numeric(payload.get(name))
    }
    if headline:
        cells["headline"] = headline
    for section, values in payload.get("sections", {}).items():
        cells[f"sections/{section}"] = _flatten(values)
    for label, values in payload.get("kernel_matrix", {}).items():
        cells[f"kernel_matrix/{label}"] = _flatten(values)
    for case, values in payload.get("engine", {}).get("cases", {}).items():
        cells[f"engine/{case}"] = _flatten(values)
    return cells


def _parallel_cells(payload: dict) -> dict[str, dict[str, float]]:
    cells: dict[str, dict[str, float]] = {}
    for run in payload.get("runs", []):
        metrics = _flatten(run)
        metrics.pop("workers", None)
        cells[f"workers={run['workers']}"] = metrics
    return cells


def _serving_cells(payload: dict) -> dict[str, dict[str, float]]:
    workload = payload.get("workload", "iid")
    metrics = _flatten({
        key: value
        for key, value in payload.items()
        if key not in _CONFIG_KEYS
    })
    # `requests`/`dof` are workload shape, not measurements.
    for shape_key in ("requests", "dof", "offered_rate_hz"):
        metrics.pop(shape_key, None)
    return {f"workload={workload}": metrics}


_CELL_BUILDERS = {
    "kernel-speedup": _kernel_cells,
    "parallel-scaling": _parallel_cells,
    "serving": _serving_cells,
}


def import_bench_file(
    store: ResultStore,
    path: "str | Path",
    run_name: str | None = None,
) -> dict[str, Any]:
    """Import one ``BENCH_*.json`` payload; returns an import summary.

    The payload must carry a known ``"benchmark"`` tag (see
    :data:`BENCH_RUN_NAMES`); unknown shapes are rejected rather than
    half-imported.
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    benchmark = payload.get("benchmark")
    if benchmark not in _CELL_BUILDERS:
        known = ", ".join(sorted(_CELL_BUILDERS))
        raise ValueError(
            f"{path}: unknown benchmark tag {benchmark!r}; importable: {known}"
        )
    name = run_name or BENCH_RUN_NAMES[benchmark]
    cells = _CELL_BUILDERS[benchmark](payload)
    if not cells:
        raise ValueError(f"{path}: payload produced no importable cells")
    run_id = store.create_run(name, source="import", spec_json=None)
    store.ensure_cells(run_id, [(key, None) for key in cells])
    n_metrics = 0
    for key, metrics in cells.items():
        store.mark_cell(run_id, key, "done")
        if metrics:
            n_metrics += store.record_metrics(run_id, key, metrics)
    store.record_artifact(run_id, path.name, payload)
    store.finish_run(run_id, "done")
    return {
        "file": str(path),
        "benchmark": benchmark,
        "run_name": name,
        "run_id": run_id,
        "cells": len(cells),
        "metrics": n_metrics,
    }


def import_bench_payloads(
    store: ResultStore, paths: "list[str | Path]"
) -> list[dict[str, Any]]:
    """Import several payload files (the committed trio, typically)."""
    return [import_bench_file(store, path) for path in paths]
