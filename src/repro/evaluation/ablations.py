"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation:

* speculation **schedule** (the paper's linear Eq. 9 vs geometric vs a range
  extended past ``alpha_base``) — tests the Section-4 claim that speculating
  above ``alpha_base`` is not worthwhile;
* **SSU count** design space — wave count vs area (the paper picked 32 SSUs
  for 64 speculations without showing the sweep);
* **SPU pipelining** (Figure 3a vs 3b) — what the fused pipeline buys;
* JT-Serial **step-size rule** (classic constant gain vs per-iteration Buss
  Eq. 8) — quantifies how much of Quick-IK's win is the line search itself;
* float32 **datapath precision** margins.
"""

from __future__ import annotations

import numpy as np

from repro.core.alpha import SCHEDULE_NAMES
from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.evaluation.tables import TableResult
from repro.ikacc.accelerator import IKAccSimulator
from repro.ikacc.config import IKAccConfig
from repro.ikacc.power import IKAccPowerModel
from repro.ikacc.quantization import fk_precision_report
from repro.solvers.jacobian_transpose import JacobianTransposeSolver
from repro.workloads.suite import EvaluationSuite

__all__ = [
    "hybrid_direction_ablation",
    "morphology_ablation",
    "tolerance_sweep",
    "schedule_ablation",
    "ssu_count_sweep",
    "spu_pipeline_ablation",
    "alpha_mode_ablation",
    "precision_ablation",
    "all_ablations",
]


def schedule_ablation(
    suite: EvaluationSuite | None = None,
    schedules: tuple[str, ...] = ("linear", "geometric", "extended"),
    speculations: int = 64,
) -> TableResult:
    """Mean Quick-IK iterations per speculation schedule."""
    suite = suite or EvaluationSuite()
    for name in schedules:
        if name not in SCHEDULE_NAMES:
            raise KeyError(f"unknown schedule {name!r}")
    headers = ["dof"] + list(schedules)
    rows = []
    for dof in suite.dofs:
        row: list[object] = [dof]
        for name in schedules:
            solver = QuickIKSolver(
                suite.chain(dof), speculations=speculations, schedule=name
            )
            row.append(suite.run_solver(solver, dof).mean_iterations)
        rows.append(row)
    return TableResult(
        title="Ablation: speculation schedule (mean iterations)",
        headers=headers,
        rows=rows,
        notes=["'linear' is the paper's Eq. 9"],
    )


def ssu_count_sweep(
    dof: int = 100,
    ssu_counts: tuple[int, ...] = (8, 16, 32, 64, 128),
    speculations: int = 64,
) -> TableResult:
    """Design space: SSU count vs iteration latency, area and power budget."""
    from repro.kinematics.robots import paper_chain

    chain = paper_chain(dof)
    headers = [
        "SSUs",
        "waves",
        "us/iteration",
        "area (mm^2)",
        "leakage (mW)",
    ]
    rows = []
    for count in ssu_counts:
        config = IKAccConfig(n_ssus=count, speculations=speculations)
        sim = IKAccSimulator(chain, config=config)
        power = IKAccPowerModel(config)
        rows.append(
            [
                count,
                config.waves_per_iteration,
                sim.seconds_per_full_iteration() * 1e6,
                power.area_mm2(),
                power.leakage_power_w() * 1e3,
            ]
        )
    return TableResult(
        title=f"Ablation: SSU count design space ({dof} DOF, {speculations} speculations)",
        headers=headers,
        rows=rows,
        notes=["the paper's design point is 32 SSUs (2 waves)"],
    )


def spu_pipeline_ablation(
    dofs: tuple[int, ...] = (12, 25, 50, 75, 100)
) -> TableResult:
    """Figure 3 ablation: fused pipeline vs original four-loop flow."""
    from repro.kinematics.robots import paper_chain

    headers = ["dof", "pipelined (cycles)", "unpipelined (cycles)", "speedup"]
    rows = []
    for dof in dofs:
        chain = paper_chain(dof)
        piped = IKAccSimulator(chain, config=IKAccConfig(spu_pipelined=True))
        flat = IKAccSimulator(chain, config=IKAccConfig(spu_pipelined=False))
        a = piped.spu.cycles_per_iteration()
        b = flat.spu.cycles_per_iteration()
        rows.append([dof, a, b, b / a])
    return TableResult(
        title="Ablation: SPU serial-block pipelining (Figure 3)",
        headers=headers,
        rows=rows,
        notes=["unpipelined flow includes the intermediate-array memory traffic"],
    )


def alpha_mode_ablation(
    suite: EvaluationSuite | None = None, speculations: int = 64
) -> TableResult:
    """How much of Quick-IK's win is the line search vs the Buss step alone."""
    suite = suite or EvaluationSuite()
    headers = ["dof", "JT classic gain", "JT Buss alpha", "Quick-IK"]
    rows = []
    for dof in suite.dofs:
        chain = suite.chain(dof)
        classic = JacobianTransposeSolver(chain, alpha_mode="classic")
        buss = JacobianTransposeSolver(chain, alpha_mode="buss")
        buss.name = "JT-Buss"  # distinct cache/rng key
        qik = QuickIKSolver(chain, speculations=speculations)
        rows.append(
            [
                dof,
                suite.run_solver(classic, dof).mean_iterations,
                suite.run_solver(buss, dof).mean_iterations,
                suite.run_solver(qik, dof).mean_iterations,
            ]
        )
    return TableResult(
        title="Ablation: transpose step-size rule (mean iterations)",
        headers=headers,
        rows=rows,
        notes=[
            "the Buss step is Quick-IK's k = Max candidate; the remaining gap "
            "is the value of the parallel line search",
        ],
    )


def precision_ablation(
    dofs: tuple[int, ...] = (12, 25, 50, 75, 100), samples: int = 256
) -> TableResult:
    """Float32 datapath FK error vs the 1e-2 m accuracy constraint."""
    from repro.kinematics.robots import paper_chain

    headers = ["dof", "max fp32 FK error (m)", "margin vs 1e-2 m"]
    rows = []
    for dof in dofs:
        report = fk_precision_report(paper_chain(dof), samples=samples)
        rows.append([dof, report.max_error_m, report.margin_vs(1e-2)])
    return TableResult(
        title="Ablation: float32 datapath precision",
        headers=headers,
        rows=rows,
        notes=["margin = tolerance / worst observed FK round-off"],
    )


def hybrid_direction_ablation(
    dof: int = 25,
    n_targets: int = 10,
    speculations: int = 64,
    seed: int = 2,
) -> TableResult:
    """Extension: speculate over directions too (transpose + DLS families).

    Compares plain Quick-IK with :class:`~repro.core.hybrid.
    HybridSpeculativeSolver` on an easy (interior) and a hard (near-boundary)
    workload under the *same* per-iteration FK budget.  Near singular poses
    the DLS candidates rescue the transpose direction — the hybrid wins by
    orders of magnitude on the hard workload at no hardware cost.
    """
    from repro.core.hybrid import HybridSpeculativeSolver
    from repro.kinematics.robots import hyper_redundant_chain
    from repro.workloads.targets import extended_pose_targets, reachable_targets

    chain = hyper_redundant_chain(dof)
    rng = np.random.default_rng(seed)
    workloads = {
        "interior": reachable_targets(chain, n_targets, rng),
        "near-boundary": extended_pose_targets(
            chain, n_targets, rng, range_fraction=0.25
        ),
    }
    config = SolverConfig(max_iterations=5000, record_history=False)
    rows = []
    for label, targets in workloads.items():
        row: list[object] = [label]
        for solver in (
            QuickIKSolver(chain, speculations=speculations, config=config),
            HybridSpeculativeSolver(chain, speculations=speculations, config=config),
        ):
            restart = np.random.default_rng(seed + 7)
            results = [solver.solve(t, rng=restart) for t in targets]
            row.append(float(np.mean([r.iterations for r in results])))
            row.append(float(np.mean([r.converged for r in results])))
        rows.append(row)
    return TableResult(
        title=f"Extension: hybrid direction speculation ({dof}-DOF snake, "
        f"{speculations} candidates)",
        headers=[
            "workload",
            "Quick-IK iters",
            "Quick-IK success",
            "Hybrid iters",
            "Hybrid success",
        ],
        rows=rows,
        notes=[
            "same FK budget per iteration; the hybrid replaces 1/4 of the "
            "Eq. 9 grid with damped-least-squares directions",
        ],
    )


def morphology_ablation(
    dof: int = 25,
    n_targets: int = 10,
    speculations: int = 64,
    seed: int = 3,
) -> TableResult:
    """How chain morphology shapes the Figure-5 story.

    The paper never describes its manipulators; this ablation runs the three
    methods on three morphology classes of the same DOF and reach — the
    seeded random chain (our evaluation default), the alternating-twist
    snake, and the planar chain — to show which conclusions are
    geometry-robust (the ~97% reduction is; absolute iteration counts are
    not).
    """
    from repro.kinematics.robots import (
        hyper_redundant_chain,
        paper_chain,
        planar_chain,
    )
    from repro.solvers.pseudoinverse import PseudoinverseSolver
    from repro.workloads.targets import reachable_targets

    config = SolverConfig(record_history=False)
    morphologies = {
        "random (paper_chain)": paper_chain(dof),
        "snake": hyper_redundant_chain(dof),
        "planar": planar_chain(dof),
    }
    rows = []
    for label, chain in morphologies.items():
        rng = np.random.default_rng(seed)
        targets = reachable_targets(chain, n_targets, rng)
        means = []
        for solver in (
            JacobianTransposeSolver(chain, config=config),
            PseudoinverseSolver(chain, config=config, error_clamp=None),
            QuickIKSolver(chain, speculations=speculations, config=config),
        ):
            restart = np.random.default_rng(seed + 11)
            results = [solver.solve(t, rng=restart) for t in targets]
            means.append(float(np.mean([r.iterations for r in results])))
        jt, svd, qik = means
        rows.append([label, jt, svd, qik, 1.0 - qik / jt])
    return TableResult(
        title=f"Ablation: chain morphology ({dof} DOF, mean iterations)",
        headers=["morphology", "JT-Serial", "J-1-SVD", "JT-Speculation", "reduction"],
        rows=rows,
        notes=["the iteration-reduction claim holds across morphologies"],
    )


def all_ablations(suite: EvaluationSuite | None = None) -> dict[str, TableResult]:
    """Every ablation, keyed by id.

    The fixed-workload ablations (hybrid/morphology/tolerance) scale their
    target counts with the suite's, so a tiny suite (tests, smoke runs) stays
    fast while the default run uses the full sample.
    """
    suite = suite or EvaluationSuite()
    n_targets = min(10, suite.targets_per_dof)
    mid_dof = min(25, max(suite.dofs))
    return {
        "schedule": schedule_ablation(suite),
        "ssu_sweep": ssu_count_sweep(dof=max(suite.dofs)),
        "spu_pipeline": spu_pipeline_ablation(tuple(suite.dofs)),
        "alpha_mode": alpha_mode_ablation(suite),
        "precision": precision_ablation(tuple(suite.dofs)),
        "hybrid": hybrid_direction_ablation(dof=mid_dof, n_targets=n_targets),
        "morphology": morphology_ablation(dof=mid_dof, n_targets=n_targets),
        "tolerance": tolerance_sweep(dof=mid_dof, n_targets=n_targets),
    }


def tolerance_sweep(
    dof: int = 25,
    tolerances: tuple[float, ...] = (1e-1, 1e-2, 1e-3, 1e-4),
    n_targets: int = 10,
    speculations: int = 64,
    seed: int = 4,
) -> TableResult:
    """Iterations vs the accuracy constraint (the paper fixes 1e-2 m).

    The serial transpose method converges linearly, so its cost scales with
    ``log(1/tolerance)`` times a large conditioning-dependent constant; the
    sweep quantifies how much of each method's budget the final digits cost.
    """
    from repro.kinematics.robots import paper_chain
    from repro.solvers.pseudoinverse import PseudoinverseSolver
    from repro.workloads.targets import reachable_targets

    chain = paper_chain(dof)
    rng = np.random.default_rng(seed)
    targets = reachable_targets(chain, n_targets, rng)
    rows = []
    for tolerance in tolerances:
        config = SolverConfig(
            tolerance=tolerance, max_iterations=20_000, record_history=False
        )
        row: list[object] = [tolerance]
        for solver in (
            JacobianTransposeSolver(chain, config=config),
            PseudoinverseSolver(chain, config=config, error_clamp=None),
            QuickIKSolver(chain, speculations=speculations, config=config),
        ):
            restart = np.random.default_rng(seed + 13)
            results = [solver.solve(t, rng=restart) for t in targets]
            row.append(float(np.mean([r.iterations for r in results])))
        rows.append(row)
    return TableResult(
        title=f"Ablation: accuracy-constraint sweep ({dof} DOF, mean iterations)",
        headers=["tolerance (m)", "JT-Serial", "J-1-SVD", "JT-Speculation"],
        rows=rows,
        notes=["the paper's constraint is 1e-2 m (Section 6.1)"],
    )
