"""Statistical utilities for the evaluation: bootstrap confidence intervals.

The paper reports bare means over 1000 targets; at our reduced target counts
the sampling noise matters, so the harness can attach nonparametric bootstrap
confidence intervals to every mean it reports, and test whether two solvers'
means are distinguishable at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BootstrapCI",
    "bootstrap_mean_ci",
    "bootstrap_ratio_ci",
    "means_differ",
]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def half_width(self) -> float:
        """Half the interval width (a +/- style error bar)."""
        return 0.5 * (self.upper - self.lower)

    def __str__(self) -> str:
        return f"{self.estimate:.4g} [{self.lower:.4g}, {self.upper:.4g}]"


def bootstrap_mean_ci(
    samples: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the mean of ``samples``."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 1:
        raise ValueError("samples must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("resamples must be >= 10")
    if rng is None:
        rng = np.random.default_rng(0)
    indices = rng.integers(0, samples.size, size=(resamples, samples.size))
    means = samples[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(samples.mean()),
        lower=float(np.quantile(means, tail)),
        upper=float(np.quantile(means, 1.0 - tail)),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_ratio_ci(
    numerator: np.ndarray,
    denominator: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapCI:
    """CI for ``mean(numerator) / mean(denominator)``.

    This is the quantity behind the paper's headline ratios (e.g. the 97%
    iteration reduction is ``1 - mean(QIK)/mean(JT)``); the two sample sets
    are resampled independently.
    """
    numerator = np.asarray(numerator, dtype=float)
    denominator = np.asarray(denominator, dtype=float)
    if numerator.size < 1 or denominator.size < 1:
        raise ValueError("samples must be non-empty")
    if rng is None:
        rng = np.random.default_rng(0)
    num_idx = rng.integers(0, numerator.size, size=(resamples, numerator.size))
    den_idx = rng.integers(0, denominator.size, size=(resamples, denominator.size))
    num_means = numerator[num_idx].mean(axis=1)
    den_means = np.maximum(denominator[den_idx].mean(axis=1), 1e-300)
    ratios = num_means / den_means
    tail = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(numerator.mean() / max(denominator.mean(), 1e-300)),
        lower=float(np.quantile(ratios, tail)),
        upper=float(np.quantile(ratios, 1.0 - tail)),
        confidence=confidence,
        resamples=resamples,
    )


def means_differ(
    a: np.ndarray,
    b: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> bool:
    """True when the bootstrap CI of ``mean(a) - mean(b)`` excludes zero."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if rng is None:
        rng = np.random.default_rng(0)
    a_idx = rng.integers(0, a.size, size=(resamples, a.size))
    b_idx = rng.integers(0, b.size, size=(resamples, b.size))
    deltas = a[a_idx].mean(axis=1) - b[b_idx].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    lower = float(np.quantile(deltas, tail))
    upper = float(np.quantile(deltas, 1.0 - tail))
    return not (lower <= 0.0 <= upper)
