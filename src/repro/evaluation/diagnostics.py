"""Convergence diagnostics: *why* a solver behaved the way it did.

Provides the quantitative backing for the Figure-4 analysis in
EXPERIMENTS.md — in particular the distribution of the winning speculation
index (where in the ``(0, alpha_base]`` grid Quick-IK's line search lands) —
plus generic error-trajectory statistics (convergence rate, plateaus,
non-monotone steps) applicable to any solver's ``error_history``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.evaluation.tables import TableResult

__all__ = [
    "TrajectoryDiagnostics",
    "analyze_history",
    "ChosenIndexStats",
    "chosen_index_stats",
    "figure4_investigation",
]


@dataclass(frozen=True)
class TrajectoryDiagnostics:
    """Statistics of one error history."""

    iterations: int
    initial_error: float
    final_error: float
    geometric_rate: float  # median per-iteration error ratio
    increases: int  # iterations where the error grew
    longest_plateau: int  # longest run with <1% relative progress

    @property
    def monotone(self) -> bool:
        """True when the error never increased."""
        return self.increases == 0

    def iterations_to_reach(self, target_error: float) -> float:
        """Extrapolated iterations to a given error at the observed rate."""
        if target_error <= 0.0 or self.final_error <= target_error:
            return 0.0
        if not 0.0 < self.geometric_rate < 1.0:
            return math.inf
        return math.log(target_error / self.final_error) / math.log(
            self.geometric_rate
        )


def analyze_history(history: np.ndarray) -> TrajectoryDiagnostics:
    """Summarise an error history (as produced on :class:`IKResult`)."""
    history = np.asarray(history, dtype=float)
    if history.size < 1:
        raise ValueError("history must contain at least the initial error")
    if history.size == 1:
        return TrajectoryDiagnostics(
            iterations=0,
            initial_error=float(history[0]),
            final_error=float(history[0]),
            geometric_rate=1.0,
            increases=0,
            longest_plateau=0,
        )
    ratios = history[1:] / np.maximum(history[:-1], 1e-300)
    increases = int(np.sum(ratios > 1.0 + 1e-12))
    plateau = 0
    longest = 0
    for ratio in ratios:
        if ratio > 0.99:
            plateau += 1
            longest = max(longest, plateau)
        else:
            plateau = 0
    return TrajectoryDiagnostics(
        iterations=history.size - 1,
        initial_error=float(history[0]),
        final_error=float(history[-1]),
        geometric_rate=float(np.median(ratios)),
        increases=increases,
        longest_plateau=longest,
    )


@dataclass(frozen=True)
class ChosenIndexStats:
    """Distribution of Quick-IK's winning candidate index (0-based)."""

    speculations: int
    samples: int
    mean_fraction: float  # mean of (chosen + 1) / Max
    median_fraction: float
    fraction_at_max: float  # how often the plain Buss step wins
    fraction_bottom_eighth: float  # how often a tiny step wins

    def summary(self) -> str:
        """One-line description."""
        return (
            f"Max={self.speculations}: winner at {self.mean_fraction:.2f} of "
            f"alpha_base on average; Buss step wins {self.fraction_at_max:.0%}, "
            f"tiny steps win {self.fraction_bottom_eighth:.0%}"
        )


def chosen_index_stats(
    chosen_history: list[int], speculations: int
) -> ChosenIndexStats:
    """Aggregate a :attr:`QuickIKSolver.chosen_history`."""
    if not chosen_history:
        raise ValueError("chosen_history is empty")
    chosen = np.asarray(chosen_history, dtype=float)
    fractions = (chosen + 1.0) / speculations
    return ChosenIndexStats(
        speculations=speculations,
        samples=chosen.size,
        mean_fraction=float(fractions.mean()),
        median_fraction=float(np.median(fractions)),
        fraction_at_max=float(np.mean(chosen == speculations - 1)),
        fraction_bottom_eighth=float(np.mean(fractions <= 0.125)),
    )


def figure4_investigation(
    chain,
    targets: np.ndarray,
    speculation_counts: tuple[int, ...] = (16, 32, 64, 128),
    config: SolverConfig | None = None,
    seed: int = 0,
) -> TableResult:
    """Where does the line search land, per speculation count?

    The EXPERIMENTS.md claim: the winning candidate sits at a *scale-free*
    interior fraction of the grid, which is why refining the grid (more
    speculations) does not cut iterations on our workloads.
    """
    config = config or SolverConfig(record_history=False)
    rows = []
    for count in speculation_counts:
        solver = QuickIKSolver(
            chain, speculations=count, config=config, track_chosen=True
        )
        iterations = 0
        rng = np.random.default_rng(seed)
        for target in np.atleast_2d(targets):
            iterations += solver.solve(target, rng=rng).iterations
        stats = chosen_index_stats(solver.chosen_history, count)
        rows.append(
            [
                count,
                iterations / len(np.atleast_2d(targets)),
                stats.mean_fraction,
                stats.median_fraction,
                stats.fraction_at_max,
                stats.fraction_bottom_eighth,
            ]
        )
    return TableResult(
        title=f"Figure 4 investigation: winning-candidate position ({chain.name})",
        headers=[
            "speculations",
            "mean iters",
            "mean k/Max",
            "median k/Max",
            "Buss step wins",
            "tiny step wins",
        ],
        rows=rows,
        notes=[
            "a scale-free k/Max across rows explains the flat Figure 4",
        ],
    )
