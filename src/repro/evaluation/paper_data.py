"""The paper's published numbers, transcribed for side-by-side comparison.

Everything the evaluation section reports numerically lives here so that the
benchmark harness can print "paper vs reproduced" columns and EXPERIMENTS.md
can be generated mechanically.
"""

from __future__ import annotations

__all__ = [
    "PAPER_DOFS",
    "METHODS",
    "TABLE2_MS",
    "TABLE3_PLATFORMS",
    "HEADLINE_CLAIMS",
    "FIGURE4_SPECULATIONS",
    "FIGURE5_CLAIMS",
    "ACCURACY_M",
    "MAX_ITERATIONS",
    "TARGETS_PER_DOF",
]

#: DOF sweep of the evaluation (Section 6.2).
PAPER_DOFS = (12, 25, 50, 75, 100)

#: Table 1 — the method/platform matrix.
METHODS = {
    "JT-Serial": "Original transpose method on Intel Atom",
    "J-1-SVD": "SVD pseudoinverse method (KDL) on Intel Atom",
    "JT-Speculation": "Quick-IK on Intel Atom",
    "JT-TX1": "Quick-IK on NVIDIA TX1 (GPU + A57 serial part)",
    "JT-IKAcc": "Quick-IK on the IKAcc accelerator",
}

#: Table 2 — average solve time in milliseconds over 1K solutions.
#: Rows keyed by DOF; columns in Table 1 order.
TABLE2_MS = {
    12: {
        "JT-Serial": 622.05,
        "J-1-SVD": 96.76,
        "JT-Speculation": 288.06,
        "JT-TX1": 38.30,
        "JT-IKAcc": 0.3042,
    },
    25: {
        "JT-Serial": 2330.53,
        "J-1-SVD": 144.57,
        "JT-Speculation": 656.15,
        "JT-TX1": 47.91,
        "JT-IKAcc": 0.8243,
    },
    50: {
        "JT-Serial": 6010.24,
        "J-1-SVD": 469.87,
        "JT-Speculation": 5285.14,
        "JT-TX1": 185.18,
        "JT-IKAcc": 4.5373,
    },
    75: {
        "JT-Serial": 9570.49,
        "J-1-SVD": 637.57,
        "JT-Speculation": 7704.93,
        "JT-TX1": 217.91,
        "JT-IKAcc": 7.6572,
    },
    100: {
        "JT-Serial": 12990.81,
        "J-1-SVD": 1382.35,
        "JT-Speculation": 12383.25,
        "JT-TX1": 311.74,
        "JT-IKAcc": 12.1125,
    },
}

#: Table 3 — platform details.
TABLE3_PLATFORMS = {
    "Atom": {"technology": "32nm", "frequency": "1.86GHz", "avg_power_w": 10.0},
    "TX1": {"technology": "20nm", "frequency": "up to 1.9GHz", "avg_power_w": 4.8},
    "IKAcc": {
        "technology": "65nm 1.1V",
        "frequency": "1GHz",
        "avg_power_w": 0.1586,
        "area_mm2": 2.27,
    },
}

#: Abstract / Section 6 headline claims.
HEADLINE_CLAIMS = {
    "iteration_reduction": 0.97,  # Quick-IK vs the original transpose method
    "speedup_vs_jt_serial_atom": 1700.0,  # IKAcc vs CPU JT-Serial
    "speedup_vs_tx1": 30.0,  # IKAcc vs GPU Quick-IK
    "energy_efficiency_vs_tx1": 776.0,  # IKAcc vs GPU Quick-IK
    "energy_efficiency_vs_atom_svd": 5200.0,  # IKAcc vs Atom pseudoinverse
    "ms_at_100_dof": 12.0,  # "solve IK problem in 12 milliseconds for 100 DOF"
    "ikacc_energy_100dof_mj": 1.92,  # "just consumes about 1.92 mJ"
}

#: Figure 4 sweep ("the results show that 64 speculations may be a great
#: choice"); the paper plots iteration counts but prints no numbers.
FIGURE4_SPECULATIONS = (16, 32, 64, 128)

#: Figure 5 qualitative claims (the charts are log-scale without gridline
#: values; these are the statements the text makes about them).
FIGURE5_CLAIMS = (
    "Quick-IK reduces iterations by ~97% vs the original transpose method",
    "Quick-IK reaches the iteration level of the pseudoinverse method",
    "Quick-IK's computation load (speculations x iterations) is similar to "
    "the original transpose method's",
)

#: Evaluation constants (Section 6.1/6.2).
ACCURACY_M = 1e-2
MAX_ITERATIONS = 10_000
TARGETS_PER_DOF = 1000
