"""Experiment harness: regenerates every figure and table of the paper.

:class:`PaperExperiments` owns a deterministic workload
(:class:`~repro.workloads.suite.EvaluationSuite`) and lazily caches solver
statistics, so e.g. Table 2 and Figure 5 share the same underlying runs.

All headline numbers flow from three ingredients:

* iteration statistics of real solver runs (Figures 4, 5a, 5b);
* the platform cost models priced with those statistics (Table 2);
* energy = power x time, with IKAcc's energy integrated by its component
  model (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.quick_ik import QuickIKSolver
from repro.core.result import SolverConfig
from repro.evaluation import paper_data
from repro.evaluation.tables import TableResult
from repro.execution import ExecutionOptions
from repro.ikacc.accelerator import IKAccRunResult
from repro.ikacc.config import IKAccConfig
from repro.platforms.atom import AtomModel
from repro.platforms.ikacc_platform import IKAccPlatform
from repro.platforms.tx1 import TX1Model
from repro.solvers.jacobian_transpose import JacobianTransposeSolver
from repro.solvers.pseudoinverse import PseudoinverseSolver
from repro.workloads.suite import EvaluationSuite, SolverStats

__all__ = ["PaperExperiments"]


class PaperExperiments:
    """Regenerates Figures 4/5 and Tables 2/3 plus the headline claims.

    Parameters
    ----------
    suite:
        Workload; defaults to the paper sweep (12/25/50/75/100 DOF,
        ``REPRO_TARGETS`` targets each, reachable-target distribution).
    speculations:
        Quick-IK ``Max`` (paper operating point: 64).
    ikacc_config:
        Accelerator configuration (paper design point: 32 SSUs, 1 GHz).
    workers:
        Worker processes for the solver runs when building the default
        suite (ignored when an explicit ``suite`` is passed — the suite
        carries its own ``workers``).  Statistics are identical for any
        worker count; only wall-clock changes.
    """

    def __init__(
        self,
        suite: EvaluationSuite | None = None,
        speculations: int = 64,
        ikacc_config: IKAccConfig | None = None,
        workers: int = 1,
        max_iterations: int | None = None,
    ) -> None:
        self.suite = suite or EvaluationSuite(options=ExecutionOptions(
            workers=None if workers == 1 else workers,
        ))
        self.speculations = speculations
        self.solver_config = SolverConfig(
            tolerance=paper_data.ACCURACY_M,
            max_iterations=(
                max_iterations
                if max_iterations is not None
                else paper_data.MAX_ITERATIONS
            ),
            record_history=False,
        )
        self.atom = AtomModel()
        self.tx1 = TX1Model()
        self.ikacc = IKAccPlatform(
            ikacc_config or IKAccConfig(speculations=speculations)
        )
        self._stats: dict[tuple[str, int, int], SolverStats] = {}
        self._ikacc_runs: dict[int, list[IKAccRunResult]] = {}

    # ------------------------------------------------------------------
    # Cached runs
    # ------------------------------------------------------------------

    def _make_solver(self, name: str, dof: int, speculations: int):
        chain = self.suite.chain(dof)
        if name == "JT-Serial":
            return JacobianTransposeSolver(chain, config=self.solver_config)
        if name == "J-1-SVD":
            return PseudoinverseSolver(
                chain, config=self.solver_config, error_clamp=None
            )
        if name == "JT-Speculation":
            return QuickIKSolver(
                chain, speculations=speculations, config=self.solver_config
            )
        raise KeyError(f"unknown method {name!r}")

    def stats(
        self, name: str, dof: int, speculations: int | None = None
    ) -> SolverStats:
        """Aggregate statistics of ``name`` at ``dof`` (cached)."""
        specs = self.speculations if speculations is None else speculations
        key = (name, dof, specs if name == "JT-Speculation" else 1)
        if key not in self._stats:
            solver = self._make_solver(name, dof, specs)
            self._stats[key] = self.suite.run_solver(solver, dof)
        return self._stats[key]

    def ikacc_runs(self, dof: int) -> list[IKAccRunResult]:
        """Cycle-level IKAcc runs over the suite's targets at ``dof``."""
        if dof not in self._ikacc_runs:
            self._ikacc_runs[dof] = self.ikacc.simulate(
                self.suite.chain(dof),
                self.suite.targets(dof),
                rng=self.suite.solver_rng(dof, "JT-IKAcc"),
                solver_config=self.solver_config,
            )
        return self._ikacc_runs[dof]

    def ikacc_mean_ms(self, dof: int) -> float:
        """Mean simulated IKAcc solve time (ms) at ``dof``."""
        runs = self.ikacc_runs(dof)
        return float(np.mean([r.seconds for r in runs])) * 1e3

    def ikacc_mean_energy_mj(self, dof: int) -> float:
        """Mean simulated IKAcc solve energy (mJ) at ``dof``."""
        runs = self.ikacc_runs(dof)
        return float(np.mean([r.energy_j for r in runs])) * 1e3

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------

    def figure4(
        self, speculation_counts: tuple[int, ...] = paper_data.FIGURE4_SPECULATIONS
    ) -> TableResult:
        """Figure 4: Quick-IK iterations vs number of speculations."""
        headers = ["speculations"] + [f"{dof}-DOF" for dof in self.suite.dofs]
        rows = []
        for count in speculation_counts:
            row: list[object] = [count]
            for dof in self.suite.dofs:
                row.append(self.stats("JT-Speculation", dof, count).mean_iterations)
            rows.append(row)
        return TableResult(
            title="Figure 4: iterations vs speculation count (mean per solve)",
            headers=headers,
            rows=rows,
            notes=[
                "paper: iterations decline with speculations; 64 is the "
                "chosen trade-off (128 adds little)",
                f"targets per DOF: {self.suite.targets_per_dof} "
                f"(paper: {paper_data.TARGETS_PER_DOF})",
            ],
        )

    def figure5a(self) -> TableResult:
        """Figure 5(a): iterations per method across the DOF sweep."""
        headers = ["dof", "JT-Serial", "J-1-SVD", "JT-Speculation", "reduction"]
        rows = []
        for dof in self.suite.dofs:
            jt = self.stats("JT-Serial", dof).mean_iterations
            svd = self.stats("J-1-SVD", dof).mean_iterations
            qik = self.stats("JT-Speculation", dof).mean_iterations
            rows.append([dof, jt, svd, qik, 1.0 - qik / jt])
        return TableResult(
            title="Figure 5(a): mean iterations per method",
            headers=headers,
            rows=rows,
            notes=list(paper_data.FIGURE5_CLAIMS[:2]),
        )

    def figure5b(self) -> TableResult:
        """Figure 5(b): computation load = speculations x iterations."""
        headers = ["dof", "JT-Serial", "J-1-SVD", "JT-Speculation"]
        rows = []
        for dof in self.suite.dofs:
            rows.append(
                [
                    dof,
                    self.stats("JT-Serial", dof).mean_work,
                    self.stats("J-1-SVD", dof).mean_work,
                    self.stats("JT-Speculation", dof).mean_work,
                ]
            )
        return TableResult(
            title="Figure 5(b): computation load (speculations x iterations)",
            headers=headers,
            rows=rows,
            notes=[paper_data.FIGURE5_CLAIMS[2]],
        )

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def table2(self) -> TableResult:
        """Table 2: average solve time (ms) per method/platform."""
        headers = [
            "dof",
            "JT-Serial (Atom)",
            "J-1-SVD (Atom)",
            "JT-Speculation (Atom)",
            "JT-TX1",
            "JT-IKAcc",
        ]
        rows = []
        for dof in self.suite.dofs:
            jt = self.stats("JT-Serial", dof)
            svd = self.stats("J-1-SVD", dof)
            qik = self.stats("JT-Speculation", dof)
            rows.append(
                [
                    dof,
                    self.atom.estimate(
                        "JT-Serial", dof, jt.mean_iterations
                    ).milliseconds,
                    self.atom.estimate(
                        "J-1-SVD", dof, svd.mean_iterations
                    ).milliseconds,
                    self.atom.estimate(
                        "JT-Speculation", dof, qik.mean_iterations, self.speculations
                    ).milliseconds,
                    self.tx1.estimate(
                        "JT-Speculation", dof, qik.mean_iterations, self.speculations
                    ).milliseconds,
                    self.ikacc_mean_ms(dof),
                ]
            )
        return TableResult(
            title="Table 2: average solve time (ms)",
            headers=headers,
            rows=rows,
            notes=[
                "Atom/TX1 columns: cost models priced with measured iteration "
                "counts; IKAcc column: cycle-level simulation",
            ],
        )

    def table2_vs_paper(self) -> TableResult:
        """Side-by-side of the Table 2 *ratios* (ours vs the paper's).

        Absolute milliseconds are not comparable across testbeds; the
        architectural ratios are the reproducible quantity.
        """
        ours = self.table2()
        headers = [
            "dof",
            "Atom-QIK/IKAcc (ours)",
            "Atom-QIK/IKAcc (paper)",
            "TX1/IKAcc (ours)",
            "TX1/IKAcc (paper)",
            "JT-Serial/QIK Atom (ours)",
            "JT-Serial/QIK Atom (paper)",
        ]
        rows = []
        for row in ours.rows:
            dof = int(row[0])
            paper = paper_data.TABLE2_MS[dof]
            jt_ms, svd_ms, qik_ms, tx1_ms, ikacc_ms = (
                float(row[1]),
                float(row[2]),
                float(row[3]),
                float(row[4]),
                float(row[5]),
            )
            del svd_ms
            rows.append(
                [
                    dof,
                    qik_ms / ikacc_ms,
                    paper["JT-Speculation"] / paper["JT-IKAcc"],
                    tx1_ms / ikacc_ms,
                    paper["JT-TX1"] / paper["JT-IKAcc"],
                    jt_ms / qik_ms,
                    paper["JT-Serial"] / paper["JT-Speculation"],
                ]
            )
        return TableResult(
            title="Table 2 (derived): cross-platform speedup ratios vs paper",
            headers=headers,
            rows=rows,
        )

    def table3(self) -> TableResult:
        """Table 3: platform details (technology/frequency/power/area)."""
        measured_power = self.ikacc.avg_power_w
        area = self.ikacc.power_model.area_mm2()
        rows = [
            ["Atom", "32nm", "1.86GHz", 10.0, "-"],
            ["TX1", "20nm", "up to 1.9GHz", 4.8, "-"],
            ["IKAcc", "65nm 1.1V", "1GHz", measured_power, area],
        ]
        return TableResult(
            title="Table 3: platform details",
            headers=["platform", "technology", "frequency", "avg power (W)", "area (mm^2)"],
            rows=rows,
            notes=[
                f"paper IKAcc: {paper_data.TABLE3_PLATFORMS['IKAcc']['avg_power_w']} W, "
                f"{paper_data.TABLE3_PLATFORMS['IKAcc']['area_mm2']} mm^2 "
                "(ours from the component-level model)",
            ],
        )

    def energy_table(self) -> TableResult:
        """Energy per solve (mJ) per platform across the DOF sweep.

        The quantitative backing of Section 6.3.2's prose (e.g. IKAcc
        ~1.92 mJ at 100 DOF, TX1 ~1.49 J at 100 DOF).
        """
        headers = [
            "dof",
            "JT-Serial Atom (mJ)",
            "J-1-SVD Atom (mJ)",
            "QIK Atom (mJ)",
            "QIK TX1 (mJ)",
            "QIK IKAcc (mJ)",
        ]
        rows = []
        for dof in self.suite.dofs:
            jt = self.stats("JT-Serial", dof)
            svd = self.stats("J-1-SVD", dof)
            qik = self.stats("JT-Speculation", dof)
            atom_jt = self.atom.estimate("JT-Serial", dof, jt.mean_iterations)
            atom_svd = self.atom.estimate("J-1-SVD", dof, svd.mean_iterations)
            atom_qik = self.atom.estimate(
                "JT-Speculation", dof, qik.mean_iterations, self.speculations
            )
            tx1_qik = self.tx1.estimate(
                "JT-Speculation", dof, qik.mean_iterations, self.speculations
            )
            rows.append(
                [
                    dof,
                    atom_jt.energy_j * 1e3,
                    atom_svd.energy_j * 1e3,
                    atom_qik.energy_j * 1e3,
                    tx1_qik.energy_j * 1e3,
                    self.ikacc_mean_energy_mj(dof),
                ]
            )
        return TableResult(
            title="Energy per solve (mJ)",
            headers=headers,
            rows=rows,
            notes=[
                "Atom/TX1: rated average power x modeled time; IKAcc: "
                "integrated component-level energy",
            ],
        )

    # ------------------------------------------------------------------
    # Headline claims
    # ------------------------------------------------------------------

    def headline_claims(self) -> TableResult:
        """The abstract's numbers, measured on our substrate."""
        reductions = []
        for dof in self.suite.dofs:
            jt = self.stats("JT-Serial", dof).mean_iterations
            qik = self.stats("JT-Speculation", dof).mean_iterations
            reductions.append(1.0 - qik / jt)

        table2 = self.table2()
        jt_over_ikacc = []
        tx1_over_ikacc = []
        for row in table2.rows:
            jt_over_ikacc.append(float(row[1]) / float(row[5]))
            tx1_over_ikacc.append(float(row[4]) / float(row[5]))

        energy = self.energy_table()
        eff_vs_tx1 = []
        eff_vs_atom_svd = []
        for row in energy.rows:
            eff_vs_tx1.append(float(row[4]) / float(row[5]))
            eff_vs_atom_svd.append(float(row[2]) / float(row[5]))

        dof_max = self.suite.dofs[-1]
        rows = [
            [
                "iteration reduction vs JT-Serial",
                f"{min(reductions):.1%}..{max(reductions):.1%}",
                f"{paper_data.HEADLINE_CLAIMS['iteration_reduction']:.0%}",
            ],
            [
                "IKAcc speedup vs JT-Serial (Atom)",
                f"{min(jt_over_ikacc):.0f}x..{max(jt_over_ikacc):.0f}x",
                f"{paper_data.HEADLINE_CLAIMS['speedup_vs_jt_serial_atom']:.0f}x",
            ],
            [
                "IKAcc speedup vs TX1 Quick-IK",
                f"{min(tx1_over_ikacc):.0f}x..{max(tx1_over_ikacc):.0f}x",
                f"{paper_data.HEADLINE_CLAIMS['speedup_vs_tx1']:.0f}x",
            ],
            [
                f"IKAcc energy efficiency vs TX1 (at {dof_max} DOF)",
                f"{eff_vs_tx1[-1]:.0f}x (range {min(eff_vs_tx1):.0f}x..{max(eff_vs_tx1):.0f}x)",
                f"{paper_data.HEADLINE_CLAIMS['energy_efficiency_vs_tx1']:.0f}x",
            ],
            [
                f"IKAcc energy efficiency vs Atom J-1-SVD (at {dof_max} DOF)",
                f"{eff_vs_atom_svd[-1]:.0f}x (range {min(eff_vs_atom_svd):.0f}x..{max(eff_vs_atom_svd):.0f}x)",
                f"{paper_data.HEADLINE_CLAIMS['energy_efficiency_vs_atom_svd']:.0f}x",
            ],
            [
                f"IKAcc ms/solve at {dof_max} DOF",
                f"{self.ikacc_mean_ms(dof_max):.3f} ms",
                f"{paper_data.HEADLINE_CLAIMS['ms_at_100_dof']:.0f} ms",
            ],
            [
                f"IKAcc energy at {dof_max} DOF",
                f"{self.ikacc_mean_energy_mj(dof_max):.3f} mJ",
                f"{paper_data.HEADLINE_CLAIMS['ikacc_energy_100dof_mj']} mJ",
            ],
        ]
        return TableResult(
            title="Headline claims: measured vs paper",
            headers=["claim", "measured (range over DOF sweep)", "paper"],
            rows=rows,
            notes=[
                "absolute ms/mJ depend on the authors' iteration counts "
                "(unpublished); ratios are the reproducible quantity",
            ],
        )

    def all_tables(self) -> dict[str, TableResult]:
        """Every figure/table, keyed by experiment id."""
        return {
            "figure4": self.figure4(),
            "figure5a": self.figure5a(),
            "figure5b": self.figure5b(),
            "table2": self.table2(),
            "table2_ratios": self.table2_vs_paper(),
            "table3": self.table3(),
            "energy": self.energy_table(),
            "headline": self.headline_claims(),
        }
