"""Plain-text / markdown table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TableResult", "format_cell", "render_ascii", "render_markdown"]


@dataclass
class TableResult:
    """One regenerated figure/table: headers, rows, provenance notes."""

    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[object]:
        """Extract one column by header name."""
        try:
            index = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; have {self.headers}"
            ) from None
        return [row[index] for row in self.rows]

    def to_ascii(self) -> str:
        """Render as an aligned plain-text table."""
        return render_ascii(self)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        return render_markdown(self)


def format_cell(value: object) -> str:
    """Human-friendly scalar formatting (4 significant digits for floats)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_ascii(table: TableResult) -> str:
    """Aligned fixed-width rendering with title and footnotes."""
    cells = [[format_cell(v) for v in row] for row in table.rows]
    widths = [
        max(len(table.headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(table.headers[i])
        for i in range(len(table.headers))
    ]
    lines = [table.title, "=" * len(table.title)]
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(table.headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_markdown(table: TableResult) -> str:
    """GitHub-flavoured markdown rendering."""
    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.headers) + " |")
    lines.append("|" + "|".join("---" for _ in table.headers) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(format_cell(v) for v in row) + " |")
    if table.notes:
        lines.append("")
        for note in table.notes:
            lines.append(f"*{note}*")
    return "\n".join(lines)
