"""Evaluation harness: experiments, ablations, tables, paper data."""

from repro.evaluation.ablations import (
    all_ablations,
    alpha_mode_ablation,
    hybrid_direction_ablation,
    morphology_ablation,
    precision_ablation,
    schedule_ablation,
    spu_pipeline_ablation,
    ssu_count_sweep,
)
from repro.evaluation.diagnostics import (
    analyze_history,
    chosen_index_stats,
    figure4_investigation,
)
from repro.evaluation.experiments import PaperExperiments
from repro.evaluation.report import generate_report
from repro.evaluation.stats import (
    BootstrapCI,
    bootstrap_mean_ci,
    bootstrap_ratio_ci,
    means_differ,
)
from repro.evaluation.tables import TableResult, render_ascii, render_markdown

__all__ = [
    "all_ablations",
    "alpha_mode_ablation",
    "hybrid_direction_ablation",
    "morphology_ablation",
    "precision_ablation",
    "schedule_ablation",
    "spu_pipeline_ablation",
    "ssu_count_sweep",
    "PaperExperiments",
    "analyze_history",
    "chosen_index_stats",
    "figure4_investigation",
    "generate_report",
    "BootstrapCI",
    "bootstrap_mean_ci",
    "bootstrap_ratio_ci",
    "means_differ",
    "TableResult",
    "render_ascii",
    "render_markdown",
]
