"""EXPERIMENTS.md generator: run everything, render paper-vs-measured.

Usage::

    python -m repro.evaluation.report [output.md]

Honours ``REPRO_TARGETS`` (targets per DOF configuration; the paper used
1000, the default here is small enough for a laptop run).
"""

from __future__ import annotations

import sys
import time

from repro.evaluation.ablations import all_ablations
from repro.evaluation.experiments import PaperExperiments
from repro.evaluation.tables import TableResult
from repro.workloads.suite import EvaluationSuite

__all__ = ["generate_report", "main"]

_PREAMBLE = """# EXPERIMENTS — paper vs measured

Reproduction of the evaluation of *Dadu: Accelerating Inverse Kinematics for
High-DOF Robots* (Lian et al., DAC 2017).  Regenerate with::

    python -m repro.evaluation.report EXPERIMENTS.md

Context for reading the numbers:

* Iteration statistics come from real solver runs on seeded random
  manipulators with random reachable targets (the paper's manipulators and
  target distribution are unpublished; see DESIGN.md).
* Atom/TX1 times are cost models priced with counted work (our substitution
  for the authors' physical testbed); IKAcc times/energies come from the
  cycle-level simulator and its component-level power model.
* Absolute milliseconds therefore depend on our iteration counts and
  calibration; the **ratios and trends** are the reproduced quantities.

## Reproduction status summary

| Claim | Status |
|---|---|
| Fig. 5a: ~97% iteration cut vs JT-Serial | **reproduced** (97-99%) |
| Fig. 5a: Quick-IK at the pseudoinverse's iteration level | **reproduced** |
| Fig. 5b: Quick-IK keeps JT-Serial's computation load | **reproduced** |
| Fig. 4: 64 vs 128 speculations equivalent | **reproduced** |
| Fig. 4: iterations *decline* 16 -> 64 speculations | **not reproduced** — see below |
| Table 2: IKAcc ~1000x vs Quick-IK-on-Atom, 26-126x vs TX1, falling with DOF | **reproduced** (ratios) |
| Table 3: 2.27 mm^2 / 158.6 mW | **reproduced** within ~10% by the component model |
| 776x energy efficiency vs TX1 at 100 DOF | **reproduced** within ~1.3x |

### Why Figure 4's decline does not reproduce

On every workload we constructed (random reachable targets, near-boundary
shells, nearly-extended poses; random and snake geometries), Quick-IK's mean
iteration count is *flat* in the speculation count: the winning candidate is
an interior point of the `(0, alpha_base]` grid whose relative position is
scale-free, so refining the grid does not shorten the search.  Eq. (9)'s
grids are even nested (`Max=16` is a subset of `Max=64`), so per-iteration
greedy error is monotone in `Max` — yet end-to-end iterations are not, since
a greedy line search may zig-zag.  A declining curve would require a regime
where `alpha_base` *systematically* overshoots by a large factor (so that
only the `k << Max` candidates are usable and their granularity matters);
the paper's unpublished manipulators/targets presumably sit in such a regime,
ours do not.  The design-point claim the paper actually uses — 64
speculations suffice, 128 adds nothing — holds in our data.
"""


def generate_report(
    suite: EvaluationSuite | None = None,
    include_ablations: bool = True,
) -> str:
    """Run every experiment and return the markdown report."""
    start = time.perf_counter()
    experiments = PaperExperiments(suite=suite)
    sections: list[str] = [_PREAMBLE]

    sections.append(
        f"Workload: `{experiments.suite!r}`\n"
    )
    for key, table in experiments.all_tables().items():
        sections.append(_render(key, table))
    if include_ablations:
        sections.append("## Ablations (beyond the paper)\n")
        for key, table in all_ablations(experiments.suite).items():
            sections.append(_render(key, table))
    sections.append(
        f"\n*Report generated in {time.perf_counter() - start:.1f} s.*\n"
    )
    return "\n\n".join(sections)


def _render(key: str, table: TableResult) -> str:
    return f"<!-- experiment: {key} -->\n{table.to_markdown()}"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "EXPERIMENTS.md"
    text = generate_report()
    with open(output, "w") as handle:
        handle.write(text)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
