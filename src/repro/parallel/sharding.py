"""Deterministic batch partitioning and seeding for sharded execution.

The invariant everything here serves: **the partition must never influence
the numerics**.  Results for ``workers=1`` and ``workers=8`` have to be
bit-for-bit identical, and identical to the in-process engines given the
same seed.  Two mechanisms guarantee it:

1. **Initial configurations are resolved in the parent, before sharding**,
   by :func:`resolve_batch_q0` — drawing ``chain.random_configuration(rng)``
   once per problem *in problem order*, which is exactly the draw sequence
   both the scalar driver loop and the lock-step engines perform.  Shards
   then receive explicit per-problem ``q0`` rows, so no worker ever touches
   the shared stream.
2. **Per-problem RNG streams are spawned, not split**, by
   :func:`spawn_problem_seeds`: one ``np.random.SeedSequence.spawn(m)`` call
   derives an independent child per *problem index*.  A shard covering
   problems ``[lo, hi)`` receives children ``lo..hi-1``, so any solver-side
   randomness (e.g. future restart support) is keyed to the problem, never
   to the shard layout.

Shards themselves (:func:`shard_slices`) are contiguous, balanced,
order-preserving index ranges — merging is a plain concatenation by shard
index.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_slices", "resolve_batch_q0", "spawn_problem_seeds"]


def shard_slices(m: int, shards: int) -> list[tuple[int, int]]:
    """Split ``m`` problems into ``<= shards`` contiguous ``(start, stop)`` ranges.

    Balanced to within one problem (the first ``m % shards`` ranges are one
    longer), order-preserving, and never empty: with ``m < shards`` you get
    ``m`` singleton ranges.
    """
    if m < 0:
        raise ValueError("m must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if m == 0:
        return []
    shards = min(shards, m)
    base, extra = divmod(m, shards)
    slices = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def resolve_batch_q0(
    chain,
    m: int,
    q0: np.ndarray | None,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Per-problem initial configurations, shape ``(m, dof)``.

    Mirrors the lock-step engines' ``_initial_configurations`` exactly: an
    explicit ``q0`` is broadcast ((dof,) shared or (m, dof) per problem);
    otherwise each problem draws ``chain.random_configuration(rng)`` in
    problem order — the same stream consumption as an unsharded run, which
    is what makes sharded and in-process results identical under one seed.
    """
    dof = chain.dof
    if q0 is None:
        if rng is None:
            rng = np.random.default_rng()
        return np.stack([chain.random_configuration(rng) for _ in range(m)])
    q0 = np.asarray(q0, dtype=float)
    qs = np.tile(q0, (m, 1)) if q0.ndim == 1 else q0.copy()
    if qs.shape != (m, dof):
        raise ValueError(f"q0 must broadcast to ({m}, {dof})")
    return qs


def spawn_problem_seeds(
    m: int, rng: np.random.Generator | None
) -> list[np.random.SeedSequence]:
    """One independent :class:`~numpy.random.SeedSequence` per problem.

    Children derive from the generator's own seed sequence when available
    (``default_rng(seed)`` carries one), so the spawn is reproducible from
    the caller's seed; an unseeded call gets fresh entropy.  Because the
    spawn is per problem — not per shard — regrouping problems into a
    different number of shards cannot change any problem's stream.
    """
    root = None
    if rng is not None:
        root = getattr(rng.bit_generator, "seed_seq", None)
    if root is None:
        root = np.random.SeedSequence()
    return list(root.spawn(m)) if m else []
