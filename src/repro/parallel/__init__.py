"""Process-parallel sharded batch solving.

Shards a target batch across worker subprocesses — each shard running the
existing scalar or lock-step engines unchanged — and merges the per-shard
results into one order-preserving :class:`~repro.core.result.BatchResult`
with merged telemetry.  ``workers=1`` and ``workers=N`` are bit-identical
under the same seed (see :mod:`repro.parallel.sharding` for why), and both
match the unsharded engines.

Usage::

    from repro import api

    batch = api.solve_batch("dadu-50dof", targets, workers=4, seed=7)

or at the layer below::

    from repro.parallel import ShardedBatchSolver
    from repro.solvers.registry import make_batch_solver

    engine = make_batch_solver("JT-Speculation", chain)
    sharded = ShardedBatchSolver(engine, workers=4, timeout=120.0)
    batch = sharded.solve_batch(targets, rng=np.random.default_rng(7))

See ``docs/parallel.md`` for the seeding/merge semantics and the failure
model.
"""

from repro.parallel.pool import (
    ParallelExecutionError,
    ShardedBatchSolver,
    ShardError,
    ShardOutcome,
    ShardTask,
    default_workers,
    solve_batch_sharded,
)
from repro.parallel.sharding import (
    resolve_batch_q0,
    shard_slices,
    spawn_problem_seeds,
)

__all__ = [
    "ParallelExecutionError",
    "ShardedBatchSolver",
    "ShardError",
    "ShardOutcome",
    "ShardTask",
    "default_workers",
    "solve_batch_sharded",
    "resolve_batch_q0",
    "shard_slices",
    "spawn_problem_seeds",
]
