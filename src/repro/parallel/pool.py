"""Process-pool execution layer: shard a target batch across workers.

The paper's evaluation solves 1K targets per manipulator; the lock-step
engines vectorise *within* one process but leave every other core idle.
This layer shards a batch across subprocesses — each shard runs the
existing scalar or lock-step engine untouched — and merges the per-shard
results back into one order-preserving :class:`~repro.core.result.BatchResult`.

Guarantees, in order of importance:

* **Determinism.**  ``workers=1`` and ``workers=8`` produce bit-identical
  trajectories, and both match the unsharded engine under the same seed:
  initial configurations are drawn in the parent in problem order and
  per-problem RNG streams are spawned from one
  ``np.random.SeedSequence.spawn`` (see :mod:`repro.parallel.sharding`).
* **No hung pools.**  A configurable ``timeout`` bounds the whole batch;
  worker failures come back as structured :class:`ShardError` records inside
  one :class:`ParallelExecutionError` instead of a deadlock or a bare
  traceback from a random process.
* **Telemetry merges.**  Each worker aggregates its shard into an in-memory
  summary; the parent folds them together
  (:func:`repro.telemetry.merge_summaries`), forwards counter/phase totals
  into the caller's tracer, and emits one ``solve_start``/``solve_end`` pair
  for the merged batch — so ``MetricsRegistry``/``--metrics-out`` see the
  sharded run exactly like a single batch solve.

Workers receive the solver *instance* (pickled; ``fork`` start method is
preferred where available) plus explicit ``q0`` rows and per-problem seed
sequences, so a shard is a pure function of its slice.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.result import BatchResult, IKResult
from repro.parallel.sharding import (
    resolve_batch_q0,
    shard_slices,
    spawn_problem_seeds,
)
from repro.solvers.batched import LockStepEngine
from repro.telemetry.sinks import SummaryTracer, merge_summaries
from repro.telemetry.tracer import Tracer, get_tracer

__all__ = [
    "ShardTask",
    "ShardOutcome",
    "ShardError",
    "ParallelExecutionError",
    "ShardedBatchSolver",
    "solve_batch_sharded",
    "default_workers",
]

#: Pool start method preference: ``fork`` (cheap, inherits the loaded numpy)
#: where the platform offers it, else the platform default.
_PREFERRED_START = "fork"


def default_workers() -> int:
    """Usable CPU count (honours the scheduler affinity mask when set)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass
class ShardTask:
    """Everything one worker needs to solve problems ``[start, stop)``."""

    index: int
    start: int
    stop: int
    solver: Any
    targets: np.ndarray
    q0: np.ndarray
    seeds: list[np.random.SeedSequence]
    trace: bool = False


@dataclass
class ShardOutcome:
    """A shard's results plus its telemetry aggregates."""

    index: int
    start: int
    stop: int
    results: list[IKResult]
    wall_time: float
    summary: dict[str, Any] | None = None
    counters: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class ShardError:
    """Structured record of one shard's failure (exception or timeout)."""

    index: int
    start: int
    stop: int
    kind: str  # "exception" | "timeout" | "pool"
    exc_type: str = ""
    message: str = ""
    traceback: str = ""

    def describe(self) -> str:
        span = f"problems [{self.start}:{self.stop})"
        if self.kind == "timeout":
            return f"shard {self.index} ({span}): timed out"
        return (
            f"shard {self.index} ({span}): {self.kind} "
            f"{self.exc_type}: {self.message}"
        )


class ParallelExecutionError(RuntimeError):
    """One or more shards failed; carries the per-shard error records."""

    def __init__(self, shard_errors: list[ShardError]) -> None:
        self.shard_errors = shard_errors
        lines = "\n  ".join(e.describe() for e in shard_errors)
        super().__init__(
            f"{len(shard_errors)} shard(s) failed:\n  {lines}"
        )


def _run_shard(task: ShardTask) -> ShardOutcome | ShardError:
    """Worker entry point: solve one shard, never raise.

    Failures come back as :class:`ShardError` values so the pool stays
    healthy and the parent can report every failing shard at once.
    """
    try:
        tracer = SummaryTracer() if task.trace else None
        start_time = time.perf_counter()
        solver = task.solver
        if isinstance(solver, LockStepEngine):
            batch = solver.solve_batch(task.targets, q0=task.q0, tracer=tracer)
            results = list(batch.results)
        else:
            results = []
            for i in range(task.targets.shape[0]):
                rng = np.random.default_rng(task.seeds[i]) if task.seeds else None
                results.append(
                    solver.solve(
                        task.targets[i], q0=task.q0[i], rng=rng, tracer=tracer
                    )
                )
        return ShardOutcome(
            index=task.index,
            start=task.start,
            stop=task.stop,
            results=results,
            wall_time=time.perf_counter() - start_time,
            summary=tracer.summary().to_dict() if tracer is not None else None,
            counters=dict(tracer.counters) if tracer is not None else {},
            phase_seconds=dict(tracer.phase_seconds) if tracer is not None else {},
        )
    except Exception as exc:  # pragma: no cover - exercised via pool tests
        return ShardError(
            index=task.index,
            start=task.start,
            stop=task.stop,
            kind="exception",
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )


def _pool_context():
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    if _PREFERRED_START in methods:
        return mp.get_context(_PREFERRED_START)
    return mp.get_context()


def _run_tasks(
    tasks: list[ShardTask], workers: int, timeout: float | None
) -> list[ShardOutcome | ShardError]:
    """Run shard tasks inline (single worker) or on a process pool."""
    n_procs = min(workers, len(tasks))
    if n_procs <= 1:
        return [_run_shard(task) for task in tasks]

    outcomes: dict[int, ShardOutcome | ShardError] = {}
    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=n_procs, mp_context=_pool_context()
    )
    try:
        futures = {pool.submit(_run_shard, task): task for task in tasks}
        done, pending = concurrent.futures.wait(futures, timeout=timeout)
        for future in done:
            task = futures[future]
            try:
                outcomes[task.index] = future.result()
            except Exception as exc:  # BrokenProcessPool, pickling, ...
                outcomes[task.index] = ShardError(
                    index=task.index,
                    start=task.start,
                    stop=task.stop,
                    kind="pool",
                    exc_type=type(exc).__name__,
                    message=str(exc),
                )
        for future in pending:
            task = futures[future]
            future.cancel()
            outcomes[task.index] = ShardError(
                index=task.index,
                start=task.start,
                stop=task.stop,
                kind="timeout",
            )
        if pending:
            # A running shard cannot be cancelled; hard-kill the workers so
            # neither this call nor interpreter exit blocks on a hung shard.
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    return [outcomes[task.index] for task in tasks]


class ShardedBatchSolver:
    """Wrap any batch-capable solver with process-pool sharding.

    Drop-in for the lock-step engines: exposes the same
    ``solve_batch(targets, q0=None, rng=None, tracer=None)`` signature and
    the same ``name``/``chain``/``config`` attributes, so the evaluation
    suite and the CLI treat a sharded solver like any other engine.

    Parameters
    ----------
    solver:
        A lock-step engine (sharded ``solve_batch`` per shard) or any scalar
        :class:`~repro.core.base.IterativeIKSolver` (per-problem loop per
        shard).  Must be picklable.
    workers:
        Subprocess count; ``1`` runs the identical shard code inline (no
        pool), which is also the fallback when a batch has a single shard.
    timeout:
        Seconds allowed for the whole batch once dispatched to a pool;
        ``None`` waits indefinitely.  On expiry every unfinished shard is
        reported in a :class:`ParallelExecutionError` (inline runs are not
        interruptible and ignore the timeout).
    """

    def __init__(
        self,
        solver: Any,
        workers: int,
        timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.solver = solver
        self.workers = int(workers)
        self.timeout = timeout

    @property
    def name(self) -> str:
        return self.solver.name

    @property
    def chain(self):
        return self.solver.chain

    @property
    def config(self):
        return self.solver.config

    def solve_batch(
        self,
        targets: np.ndarray,
        q0: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
    ) -> BatchResult:
        """Shard ``targets`` across the pool and merge, preserving order."""
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        if targets.shape[1] != 3:
            raise ValueError("targets must have shape (M, 3)")
        m = targets.shape[0]
        tr = tracer if tracer is not None else get_tracer()
        traced = tr.enabled
        start_time = time.perf_counter()

        qs = resolve_batch_q0(self.chain, m, q0, rng)
        seeds = spawn_problem_seeds(m, rng)
        slices = shard_slices(m, self.workers)
        tasks = [
            ShardTask(
                index=i,
                start=lo,
                stop=hi,
                solver=self.solver,
                targets=targets[lo:hi],
                q0=qs[lo:hi],
                seeds=seeds[lo:hi],
                trace=traced,
            )
            for i, (lo, hi) in enumerate(slices)
        ]
        if traced:
            tr.solve_start(
                self.name,
                self.chain.dof,
                batch=m,
                workers=self.workers,
                shards=len(tasks),
            )

        outcomes = _run_tasks(tasks, self.workers, self.timeout)
        errors = [o for o in outcomes if isinstance(o, ShardError)]
        if errors:
            raise ParallelExecutionError(errors)

        results: list[IKResult] = []
        for outcome in outcomes:
            results.extend(outcome.results)
        elapsed = time.perf_counter() - start_time
        batch = BatchResult(results=results, solver=self.name, wall_time=elapsed)
        if traced:
            for outcome in outcomes:
                for counter, value in outcome.counters.items():
                    tr.count(counter, value)
                for phase, seconds in outcome.phase_seconds.items():
                    tr.add_phase(phase, seconds)
            tr.solve_end(
                self.name,
                converged=batch.converged_count == m,
                batch=m,
                converged_count=batch.converged_count,
                iterations=batch.total_iterations,
                error=float(max((r.error for r in results), default=0.0)),
                wall_time=elapsed,
                workers=self.workers,
                shards=len(tasks),
            )
            shard_summaries = [
                o.summary for o in outcomes if o.summary is not None
            ]
            if shard_summaries:
                batch.telemetry = merge_summaries(shard_summaries).to_dict()
        return batch

    def __repr__(self) -> str:
        return (
            f"ShardedBatchSolver({self.solver!r}, workers={self.workers}, "
            f"timeout={self.timeout})"
        )


def solve_batch_sharded(
    solver: Any,
    targets: np.ndarray,
    *,
    workers: int,
    q0: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    tracer: Tracer | None = None,
    timeout: float | None = None,
) -> BatchResult:
    """Functional form: shard ``targets`` over ``workers`` and merge."""
    return ShardedBatchSolver(solver, workers=workers, timeout=timeout).solve_batch(
        targets, q0=q0, rng=rng, tracer=tracer
    )
